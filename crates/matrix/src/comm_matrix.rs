//! The communication matrix type.
//!
//! `A = (a_ij)` is a `p × p'` matrix of non-negative integers whose row sums
//! are the source block sizes `m_i` (equation (2) of the paper) and whose
//! column sums are the target block sizes `m'_j` (equation (3)).  Every such
//! matrix arises from some permutation; under a *uniform* permutation the
//! probability of a given matrix is proportional to the number of
//! permutations realising it,
//!
//! ```text
//! #perms(A) = (Π_i m_i!) · (Π_j m'_j!) / Π_{i,j} a_ij!
//! P(A)      = #perms(A) / n!
//! ```
//!
//! which this module evaluates in log-space for exact distribution tests.

use cgp_cgm::{BlockDistribution, CgmError};
use cgp_hypergeom::lnfact::ln_factorial;

/// A dense `rows × cols` communication matrix with `u64` entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CommMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl CommMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "a communication matrix needs at least one row and column"
        );
        CommMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<u64>>) -> Self {
        assert!(
            !rows.is_empty(),
            "a communication matrix needs at least one row"
        );
        let cols = rows[0].len();
        assert!(cols > 0, "a communication matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has {} entries, expected {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        CommMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows `p` (source blocks).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `p'` (target blocks).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `a_ij`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Sets entry `a_ij`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: u64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Sum of row `i` — must equal the source block size `m_i`.
    pub fn row_sum(&self, i: usize) -> u64 {
        self.row(i).iter().sum()
    }

    /// Sum of column `j` — must equal the target block size `m'_j`.
    pub fn col_sum(&self, j: usize) -> u64 {
        assert!(j < self.cols, "column {j} out of range");
        (0..self.rows).map(|i| self.get(i, j)).sum()
    }

    /// All row sums.
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.rows).map(|i| self.row_sum(i)).collect()
    }

    /// All column sums.
    pub fn col_sums(&self) -> Vec<u64> {
        let mut sums = vec![0u64; self.cols];
        for i in 0..self.rows {
            for (j, s) in sums.iter_mut().enumerate() {
                *s += self.get(i, j);
            }
        }
        sums
    }

    /// Total number of items `n = Σ a_ij`.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Checks equations (2) and (3): row sums equal `source`, column sums
    /// equal `target`.
    pub fn check_marginals(&self, source: &[u64], target: &[u64]) -> Result<(), CgmError> {
        let src_total: u64 = source.iter().sum();
        let tgt_total: u64 = target.iter().sum();
        if src_total != tgt_total {
            return Err(CgmError::BlockMismatch {
                source_total: src_total,
                target_total: tgt_total,
            });
        }
        assert_eq!(source.len(), self.rows, "source sizes have wrong length");
        assert_eq!(target.len(), self.cols, "target sizes have wrong length");
        if self.row_sums() != source || self.col_sums() != target {
            return Err(CgmError::BlockMismatch {
                source_total: src_total,
                target_total: self.total(),
            });
        }
        Ok(())
    }

    /// Extracts the communication matrix of a permutation a posteriori.
    ///
    /// `perm[g]` is the *global target position* of the item at global source
    /// position `g`.  Entry `a_ij` counts the source positions of block `i`
    /// whose image lies in target block `j`.  This is the reference against
    /// which the samplers' distribution is validated (Problem 2 defines the
    /// target law exactly this way).
    pub fn from_permutation(
        perm: &[u64],
        source: &BlockDistribution,
        target: &BlockDistribution,
    ) -> Self {
        assert_eq!(
            perm.len() as u64,
            source.total(),
            "permutation length mismatch"
        );
        assert_eq!(
            source.total(),
            target.total(),
            "source and target totals differ"
        );
        let mut m = CommMatrix::zeros(source.procs(), target.procs());
        for (g, &dest) in perm.iter().enumerate() {
            let (i, _) = source.locate(g as u64);
            let (j, _) = target.locate(dest);
            m.data[i * m.cols + j] += 1;
        }
        m
    }

    /// Natural logarithm of the number of permutations realising this matrix.
    pub fn ln_realizing_permutations(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.rows {
            acc += ln_factorial(self.row_sum(i));
        }
        for j in 0..self.cols {
            acc += ln_factorial(self.col_sum(j));
        }
        for &a in &self.data {
            acc -= ln_factorial(a);
        }
        acc
    }

    /// Natural logarithm of the probability of this matrix under a uniform
    /// random permutation of `n = total()` items.
    pub fn ln_probability(&self) -> f64 {
        self.ln_realizing_permutations() - ln_factorial(self.total())
    }

    /// Sums a rectangular block of entries — the self-similarity operation of
    /// Proposition 4 (joining consecutive source and target blocks).
    pub fn block_sum(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> u64 {
        assert!(
            row_range.end <= self.rows && col_range.end <= self.cols,
            "block out of range"
        );
        let mut acc = 0u64;
        for i in row_range {
            for j in col_range.clone() {
                acc += self.get(i, j);
            }
        }
        acc
    }

    /// Coarsens the matrix by joining consecutive rows and columns at the
    /// given cut points (Proposition 4).  `row_cuts` / `col_cuts` are the
    /// boundaries `0 = i_0 < i_1 < … < i_q = p`.
    pub fn coarsen(&self, row_cuts: &[usize], col_cuts: &[usize]) -> CommMatrix {
        assert!(row_cuts.first() == Some(&0) && row_cuts.last() == Some(&self.rows));
        assert!(col_cuts.first() == Some(&0) && col_cuts.last() == Some(&self.cols));
        let mut out = CommMatrix::zeros(row_cuts.len() - 1, col_cuts.len() - 1);
        for r in 0..row_cuts.len() - 1 {
            for c in 0..col_cuts.len() - 1 {
                out.set(
                    r,
                    c,
                    self.block_sum(row_cuts[r]..row_cuts[r + 1], col_cuts[c]..col_cuts[c + 1]),
                );
            }
        }
        out
    }

    /// Flat access to the underlying row-major data (benchmarks only).
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }
}

impl std::fmt::Display for CommMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>6}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = CommMatrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.row_sums(), vec![6, 15]);
        assert_eq!(m.col_sums(), vec![5, 7, 9]);
        assert_eq!(m.total(), 21);
    }

    #[test]
    fn set_and_get() {
        let mut m = CommMatrix::zeros(2, 2);
        m.set(0, 1, 7);
        assert_eq!(m.get(0, 1), 7);
        assert_eq!(m.get(1, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let m = CommMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn marginal_check_accepts_and_rejects() {
        let m = CommMatrix::from_rows(vec![vec![2, 1], vec![0, 3]]);
        assert!(m.check_marginals(&[3, 3], &[2, 4]).is_ok());
        assert!(m.check_marginals(&[3, 3], &[4, 2]).is_err());
        assert!(m.check_marginals(&[2, 4], &[2, 4]).is_err());
        assert!(m.check_marginals(&[3, 3], &[2, 5]).is_err());
    }

    #[test]
    fn from_permutation_counts_block_moves() {
        // 6 items, blocks of 3 and 3 on both sides.  Identity permutation:
        // everything stays in its own block.
        let src = BlockDistribution::from_sizes(vec![3, 3]);
        let tgt = BlockDistribution::from_sizes(vec![3, 3]);
        let identity: Vec<u64> = (0..6).collect();
        let m = CommMatrix::from_permutation(&identity, &src, &tgt);
        assert_eq!(m.row(0), &[3, 0]);
        assert_eq!(m.row(1), &[0, 3]);

        // A permutation that swaps the two halves.
        let swap: Vec<u64> = (0..6).map(|g| (g + 3) % 6).collect();
        let m = CommMatrix::from_permutation(&swap, &src, &tgt);
        assert_eq!(m.row(0), &[0, 3]);
        assert_eq!(m.row(1), &[3, 0]);
    }

    #[test]
    fn from_permutation_uneven_blocks() {
        let src = BlockDistribution::from_sizes(vec![1, 4]);
        let tgt = BlockDistribution::from_sizes(vec![3, 2]);
        // perm maps source position g to target position (g*2+1) mod 5 — a
        // fixed bijection.
        let perm: Vec<u64> = (0..5u64).map(|g| (g * 2 + 1) % 5).collect();
        let m = CommMatrix::from_permutation(&perm, &src, &tgt);
        m.check_marginals(&[1, 4], &[3, 2]).unwrap();
    }

    #[test]
    fn ln_probability_of_forced_matrix_is_zero_information() {
        // With a single source and single target block the only matrix is
        // [[n]] and its probability is 1.
        let m = CommMatrix::from_rows(vec![vec![5]]);
        assert!((m.ln_probability()).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_for_2x2() {
        // For m = (2,2) on both sides, a11 = k determines the matrix
        // (equation (8) of the paper).  Sum over k of P must be 1.
        let mut total = 0.0;
        for k in 0u64..=2 {
            let m = CommMatrix::from_rows(vec![vec![k, 2 - k], vec![2 - k, k]]);
            total += m.ln_probability().exp();
        }
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn ln_probability_matches_hypergeometric_marginal_2x2() {
        // Equation (8): for blocks (m1, m2) × (m'1, m'2), P(a11 = k) must be
        // the hypergeometric pmf h(m'1, m1, n − m1) at k.
        use cgp_hypergeom::Hypergeometric;
        let (m1, m2, mp1, mp2) = (4u64, 3u64, 2u64, 5u64);
        let n = m1 + m2;
        let h = Hypergeometric::new(mp1, m1, n - m1);
        for k in h.support_min()..=h.support_max() {
            let mat = CommMatrix::from_rows(vec![vec![k, m1 - k], vec![mp1 - k, m2 - (mp1 - k)]]);
            mat.check_marginals(&[m1, m2], &[mp1, mp2]).unwrap();
            let p = mat.ln_probability().exp();
            assert!((p - h.pmf(k)).abs() < 1e-10, "k={k}: {p} vs {}", h.pmf(k));
        }
    }

    #[test]
    fn block_sum_and_coarsen() {
        let m = CommMatrix::from_rows(vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
            vec![9, 10, 11, 12],
        ]);
        assert_eq!(m.block_sum(0..2, 0..2), 14);
        assert_eq!(m.block_sum(1..3, 2..4), 38);
        let c = m.coarsen(&[0, 2, 3], &[0, 2, 4]);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 14);
        assert_eq!(c.get(0, 1), 22);
        assert_eq!(c.get(1, 0), 19);
        assert_eq!(c.get(1, 1), 23);
        // Coarsening preserves the total.
        assert_eq!(c.total(), m.total());
    }

    #[test]
    fn display_renders_every_entry() {
        let m = CommMatrix::from_rows(vec![vec![1, 22], vec![333, 4]]);
        let s = format!("{m}");
        for needle in ["1", "22", "333", "4"] {
            assert!(s.contains(needle));
        }
    }
}
