//! Algorithm 5 — parallel sampling of the communication matrix with a
//! log-factor in the total work.
//!
//! The processor range `[r, s)` is halved in every round.  The head `P_r` of
//! a range holds the vector `β` of target demands still to be satisfied by
//! the rows of its range; when the range splits at `q`, the head draws a
//! multivariate hypergeometric split of `β` (how much of each demand is
//! satisfied by the upper half of rows, whose total size is
//! `t = Σ_{q ≤ i < s} m_i`), ships that share to the new head `P_q`, and
//! keeps the rest.  After `⌈log₂ p⌉` rounds every processor is the head of a
//! singleton range and its `β` is exactly its row of the matrix.
//!
//! Per-processor cost: `Θ(p log p)` time, random draws and communication
//! volume (Proposition 8) — a log factor off optimal, removed by
//! Algorithm 6 ([`crate::parallel_opt`]).

use std::sync::Arc;

use crate::check_sampler_inputs;
use crate::comm_matrix::CommMatrix;
use cgp_cgm::{CgmExecutor, MachineMetrics, MatrixCtx};
use cgp_hypergeom::multivariate_hypergeometric;

/// In-context core of Algorithm 5: runs **inside an already-running job**
/// on the machine's word plane and returns this processor's row of the
/// sampled matrix.
///
/// Every processor of the job must call this with the same `source` (one
/// block size per processor) and `target` (the column sums, any length).
/// Random draws come from [`MatrixCtx::sampling_rng`] — derived fresh from
/// the machine seed per call — so the sampled matrix is a pure function of
/// the seed regardless of substrate (one-shot machine, resident pool, or a
/// fused permutation job).
///
/// # Panics
/// Panics (on the worker running the job) if `source.len()` differs from
/// the processor count or the totals disagree.
pub fn sample_parallel_log_ctx(
    ctx: &mut MatrixCtx<'_>,
    source: &[u64],
    target: &[u64],
) -> Vec<u64> {
    let id = ctx.id();
    let p = ctx.procs();
    check_sampler_inputs(p, source, target);
    let mut rng = ctx.sampling_rng();
    // Only the head of the full range starts with the demand vector.
    let mut beta: Vec<u64> = if id == 0 { target.to_vec() } else { Vec::new() };

    let mut r = 0usize;
    let mut s = p;
    let mut round = 0u64;
    while s - r > 1 {
        ctx.superstep();
        let q = (r + s) / 2;
        if id == r {
            // Total number of items held by the upper half of the range.
            let t: u64 = source[q..s].iter().sum();
            let to_up = multivariate_hypergeometric(&mut rng, t, &beta);
            for (b, u) in beta.iter_mut().zip(&to_up) {
                *b -= u;
            }
            ctx.comm_mut().send(q, round, to_up);
        } else if id == q {
            beta = ctx.comm_mut().recv(r, round);
        }
        if id < q {
            s = q;
        } else {
            r = q;
        }
        round += 1;
    }
    beta
}

/// Runs Algorithm 5 as one job on the given executor — the one-shot
/// [`cgp_cgm::CgmMachine`] or a resident [`cgp_cgm::ResidentCgm`] pool
/// (thin wrapper around [`sample_parallel_log_ctx`]).
///
/// `source[i]` is the block size `m_i` of (and the row belonging to)
/// processor `i`; `target` holds the column sums `m'_j` (any length).
/// Returns the assembled matrix together with the metered word-plane
/// communication of the sampling job.
///
/// # Panics
/// Panics if `source.len()` differs from the executor's processor count or
/// the totals disagree.
pub fn sample_parallel_log(
    exec: &mut impl CgmExecutor<u64>,
    source: &[u64],
    target: &[u64],
) -> (CommMatrix, MachineMetrics) {
    check_sampler_inputs(exec.procs(), source, target);
    let source: Arc<[u64]> = source.into();
    let target: Arc<[u64]> = target.into();
    let outcome =
        exec.run_job(move |ctx| sample_parallel_log_ctx(&mut ctx.matrix_ctx(), &source, &target));
    let (rows, metrics) = outcome.into_parts();
    (CommMatrix::from_rows(rows), metrics.matrix_phase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::{CgmConfig, CgmMachine};
    use cgp_hypergeom::{hypergeometric_mean, hypergeometric_variance};

    #[test]
    fn marginals_hold_for_various_machine_sizes() {
        for p in [1usize, 2, 3, 5, 8, 16] {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(1));
            let source: Vec<u64> = (0..p as u64).map(|i| 10 + i).collect();
            let total: u64 = source.iter().sum();
            let target = vec![total / 4, total / 4, total / 4, total - 3 * (total / 4)];
            let (matrix, _) = sample_parallel_log(&mut machine, &source, &target);
            matrix.check_marginals(&source, &target).unwrap();
        }
    }

    #[test]
    fn symmetric_case_matches_hypergeometric_marginals() {
        // Proposition 3 must hold for the parallel sampler too.
        let p = 4usize;
        let m = 12u64;
        let source = vec![m; p];
        let target = vec![m; p];
        let n = m * p as u64;
        let reps = 4_000u64;
        let mut sums = vec![0u64; p * p];
        for rep in 0..reps {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(rep));
            let (matrix, _) = sample_parallel_log(&mut machine, &source, &target);
            for i in 0..p {
                for j in 0..p {
                    sums[i * p + j] += matrix.get(i, j);
                }
            }
        }
        for i in 0..p {
            for j in 0..p {
                let mean = sums[i * p + j] as f64 / reps as f64;
                let expect = hypergeometric_mean(m, m, n - m);
                let sd = hypergeometric_variance(m, m, n - m).sqrt();
                let tol = 6.0 * sd / (reps as f64).sqrt();
                assert!(
                    (mean - expect).abs() < tol,
                    "entry ({i},{j}): mean {mean} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = 8usize;
        let source = vec![20u64; p];
        let target = vec![20u64; p];
        let run = || {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(99));
            sample_parallel_log(&mut machine, &source, &target).0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn head_processor_volume_has_the_log_factor() {
        // Processor 0 is the head in every round, so it sends ~p' words per
        // round for log2(p) rounds.  Its sent volume must exceed p' (one
        // round) but stay near p' * log2(p).
        let p = 32usize;
        let m = 100u64;
        let source = vec![m; p];
        let target = vec![m; p];
        let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(5));
        let (_, metrics) = sample_parallel_log(&mut machine, &source, &target);
        let sent0 = metrics.per_proc[0].words_sent;
        let rounds = (p as f64).log2().ceil() as u64;
        assert!(sent0 >= p as u64, "head sent only {sent0} words");
        assert!(
            sent0 <= p as u64 * rounds,
            "head sent {sent0}, more than p * log2(p) = {}",
            p as u64 * rounds
        );
        // Every processor sends at most p' words per round it heads.
        for m in &metrics.per_proc {
            assert!(m.words_sent <= p as u64 * rounds);
        }
    }

    #[test]
    fn single_processor_degenerates_to_the_target_vector() {
        let mut machine = CgmMachine::new(CgmConfig::new(1).with_seed(3));
        let (matrix, metrics) = sample_parallel_log(&mut machine, &[10], &[4, 6]);
        assert_eq!(matrix.row(0), &[4, 6]);
        assert_eq!(metrics.total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "one source block per processor")]
    fn wrong_source_length_panics() {
        let mut machine = CgmMachine::with_procs(4);
        let _ = sample_parallel_log(&mut machine, &[1, 2], &[1, 2]);
    }
}
