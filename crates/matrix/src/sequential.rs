//! Algorithm 3 — sequential sampling of a communication matrix.
//!
//! The matrix is built row by row.  When row `i` is processed, the vector of
//! *remaining* target demands `(m'_j)` describes how many items each target
//! block still needs from the rows not yet fixed; distributing the `m_i`
//! items of source block `i` over those demands is exactly a multivariate
//! hypergeometric split (Proposition 6), so the row is one call to
//! Algorithm 2 and the demands are decreased by the sampled row.
//!
//! Cost: `O(p · p')` basic operations and `O(p · p')` univariate
//! hypergeometric draws (Proposition 7).

use crate::comm_matrix::CommMatrix;
use cgp_hypergeom::multivariate_hypergeometric_into;
use cgp_rng::RandomSource;

/// Samples a communication matrix with row sums `source` and column sums
/// `target`, distributed as induced by a uniform random permutation
/// (Problem 2).
///
/// # Panics
/// Panics if the two size vectors do not sum to the same total or either is
/// empty.
///
/// ```
/// use cgp_matrix::sample_sequential;
/// use cgp_rng::Pcg64;
/// let mut rng = Pcg64::seed_from_u64(1);
/// let a = sample_sequential(&mut rng, &[10, 10], &[12, 8]);
/// assert_eq!(a.row_sums(), vec![10, 10]);
/// assert_eq!(a.col_sums(), vec![12, 8]);
/// ```
pub fn sample_sequential<R: RandomSource + ?Sized>(
    rng: &mut R,
    source: &[u64],
    target: &[u64],
) -> CommMatrix {
    assert!(
        !source.is_empty() && !target.is_empty(),
        "block size vectors must be non-empty"
    );
    let src_total: u64 = source.iter().sum();
    let tgt_total: u64 = target.iter().sum();
    assert_eq!(
        src_total, tgt_total,
        "source blocks hold {src_total} items but target blocks hold {tgt_total}"
    );

    let p = source.len();
    let p_prime = target.len();
    let mut matrix = CommMatrix::zeros(p, p_prime);
    // Remaining demand of each target block, decreasing as rows are fixed.
    let mut remaining = target.to_vec();
    let mut row_buf = vec![0u64; p_prime];

    // The paper iterates i = p−1 … 0; the order is irrelevant for the
    // distribution (Proposition 6 applies to any split), we keep the paper's.
    for i in (0..p).rev() {
        multivariate_hypergeometric_into(rng, source[i], &remaining, &mut row_buf);
        for j in 0..p_prime {
            matrix.set(i, j, row_buf[j]);
            remaining[j] -= row_buf[j];
        }
    }
    debug_assert!(remaining.iter().all(|&r| r == 0));
    matrix
}

/// In-context form of Algorithm 3 for use **inside a running CGM job**:
/// processor 0 samples the full matrix from the machine's
/// `"communication-matrix"` named stream (exactly as the staged pipeline
/// sampled it on the front end) and scatters the rows over the word plane;
/// every processor returns its own row.
///
/// `source.len()` must equal the job's processor count; `target` must hold
/// one entry per processor too (the fused pipeline guarantees both).
pub fn sample_sequential_ctx(
    ctx: &mut cgp_cgm::MatrixCtx<'_>,
    source: &[u64],
    target: &[u64],
) -> Vec<u64> {
    crate::sample_on_head_and_scatter(ctx, source, target, sample_sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_hypergeom::{hypergeometric_mean, hypergeometric_variance};
    use cgp_rng::{CountingRng, Pcg64};

    #[test]
    fn marginals_always_hold() {
        let mut rng = Pcg64::seed_from_u64(1);
        let source = vec![7u64, 0, 13, 5];
        let target = vec![10u64, 10, 5];
        for _ in 0..200 {
            let a = sample_sequential(&mut rng, &source, &target);
            a.check_marginals(&source, &target).unwrap();
        }
    }

    #[test]
    fn single_block_cases() {
        let mut rng = Pcg64::seed_from_u64(2);
        let a = sample_sequential(&mut rng, &[9], &[4, 5]);
        assert_eq!(a.rows(), 1);
        assert_eq!(a.row(0), &[4, 5]);
        let b = sample_sequential(&mut rng, &[4, 5], &[9]);
        assert_eq!(b.cols(), 1);
        assert_eq!(b.col_sums(), vec![9]);
        assert_eq!(b.get(0, 0), 4);
        assert_eq!(b.get(1, 0), 5);
    }

    #[test]
    fn empty_blocks_give_empty_rows_and_columns() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = sample_sequential(&mut rng, &[0, 10, 0], &[5, 0, 5]);
        assert_eq!(a.row_sum(0), 0);
        assert_eq!(a.row_sum(2), 0);
        assert_eq!(a.col_sum(1), 0);
    }

    #[test]
    #[should_panic(expected = "source blocks hold")]
    fn mismatched_totals_panic() {
        let mut rng = Pcg64::seed_from_u64(4);
        let _ = sample_sequential(&mut rng, &[5, 5], &[5, 6]);
    }

    #[test]
    fn entries_follow_hypergeometric_marginals() {
        // Proposition 3: a_ij ~ h(m'_j, m_i, n − m_i).  Check empirical mean
        // and variance of a few entries.
        let source = vec![20u64, 30, 50];
        let target = vec![40u64, 35, 25];
        let n: u64 = source.iter().sum();
        let reps = 30_000;
        let mut rng = Pcg64::seed_from_u64(5);
        let mut sums = vec![vec![0u64; 3]; 3];
        let mut sq = vec![vec![0f64; 3]; 3];
        for _ in 0..reps {
            let a = sample_sequential(&mut rng, &source, &target);
            for i in 0..3 {
                for j in 0..3 {
                    let v = a.get(i, j);
                    sums[i][j] += v;
                    sq[i][j] += (v * v) as f64;
                }
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                let mean = sums[i][j] as f64 / reps as f64;
                let var = sq[i][j] / reps as f64 - mean * mean;
                let expect_mean = hypergeometric_mean(target[j], source[i], n - source[i]);
                let expect_var = hypergeometric_variance(target[j], source[i], n - source[i]);
                let tol = 5.0 * (expect_var / reps as f64).sqrt();
                assert!(
                    (mean - expect_mean).abs() < tol,
                    "entry ({i},{j}): mean {mean} vs {expect_mean}"
                );
                assert!(
                    (var - expect_var).abs() / expect_var < 0.1,
                    "entry ({i},{j}): var {var} vs {expect_var}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let source = vec![8u64, 8, 8];
        let target = vec![6u64, 9, 9];
        let a = sample_sequential(&mut Pcg64::seed_from_u64(77), &source, &target);
        let b = sample_sequential(&mut Pcg64::seed_from_u64(77), &source, &target);
        assert_eq!(a, b);
    }

    #[test]
    fn random_number_budget_scales_with_matrix_size() {
        // Proposition 7: O(p·p') hypergeometric calls; with the adaptive
        // sampler each costs a bounded number of uniforms.
        let p = 32usize;
        let source = vec![1000u64; p];
        let target = vec![1000u64; p];
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(6));
        let _ = sample_sequential(&mut rng, &source, &target);
        let draws = rng.count();
        assert!(
            draws < (p * p * 8) as u64,
            "used {draws} draws for a {p}x{p} matrix"
        );
    }

    #[test]
    fn degenerate_everything_to_one_target() {
        // All items go to a single target block: the matrix is forced.
        let mut rng = Pcg64::seed_from_u64(7);
        let a = sample_sequential(&mut rng, &[3, 4, 5], &[0, 12, 0]);
        assert_eq!(a.get(0, 1), 3);
        assert_eq!(a.get(1, 1), 4);
        assert_eq!(a.get(2, 1), 5);
    }
}
