//! Algorithm 4 (`RecMat`) — recursive sampling of a communication matrix.
//!
//! Instead of peeling off one row at a time (Algorithm 3), the rows are split
//! into two halves.  The total number of items held by the upper half is
//! `t = Σ_{q ≤ i < p} m_i`; a single multivariate hypergeometric draw with
//! parameters `t` and the current target demands decides how many items of
//! each target block come from the upper half (Proposition 6), and the two
//! halves are then sampled independently with the correspondingly split
//! demands.
//!
//! The distribution is identical to Algorithm 3 — the recursion is the basis
//! for the parallel algorithms, and evening out the splits keeps the
//! hypergeometric parameters balanced, which speeds up the samplers.

use crate::comm_matrix::CommMatrix;
use cgp_hypergeom::multivariate_hypergeometric;
use cgp_rng::RandomSource;

/// Samples a communication matrix with row sums `source` and column sums
/// `target` by recursive halving (Algorithm 4, `RecMat`).
///
/// # Panics
/// Panics if the two size vectors do not sum to the same total or either is
/// empty.
pub fn sample_recursive<R: RandomSource + ?Sized>(
    rng: &mut R,
    source: &[u64],
    target: &[u64],
) -> CommMatrix {
    assert!(
        !source.is_empty() && !target.is_empty(),
        "block size vectors must be non-empty"
    );
    let src_total: u64 = source.iter().sum();
    let tgt_total: u64 = target.iter().sum();
    assert_eq!(
        src_total, tgt_total,
        "source blocks hold {src_total} items but target blocks hold {tgt_total}"
    );

    let mut matrix = CommMatrix::zeros(source.len(), target.len());
    rec_mat(rng, source, &mut target.to_vec(), 0, &mut matrix);
    matrix
}

/// In-context form of Algorithm 4 for use **inside a running CGM job**:
/// processor 0 samples the full matrix from the machine's
/// `"communication-matrix"` named stream and scatters the rows over the
/// word plane; every processor returns its own row.  See
/// [`crate::sample_sequential_ctx`] for the contract.
pub fn sample_recursive_ctx(
    ctx: &mut cgp_cgm::MatrixCtx<'_>,
    source: &[u64],
    target: &[u64],
) -> Vec<u64> {
    crate::sample_on_head_and_scatter(ctx, source, target, sample_recursive)
}

/// Recursive worker: fills rows `row_offset..row_offset + source.len()` of
/// `matrix`, consuming `demands` (the column sums still to be satisfied by
/// these rows).
fn rec_mat<R: RandomSource + ?Sized>(
    rng: &mut R,
    source: &[u64],
    demands: &mut [u64],
    row_offset: usize,
    matrix: &mut CommMatrix,
) {
    if source.len() == 1 {
        // Base case of the paper ("if p < 2 then return (m'_j)"): a single
        // remaining row receives all remaining demands.
        debug_assert_eq!(source[0], demands.iter().sum::<u64>());
        for (j, &d) in demands.iter().enumerate() {
            matrix.set(row_offset, j, d);
        }
        return;
    }
    // Split the rows at the middle (the paper allows any split index q).
    let q = source.len() / 2;
    let upper_total: u64 = source[q..].iter().sum();

    // How many items of each target block come from the upper half of rows.
    let to_up = multivariate_hypergeometric(rng, upper_total, demands);
    let mut to_lo: Vec<u64> = demands.iter().zip(&to_up).map(|(&d, &u)| d - u).collect();
    let mut to_up = to_up;

    rec_mat(rng, &source[..q], &mut to_lo, row_offset, matrix);
    rec_mat(rng, &source[q..], &mut to_up, row_offset + q, matrix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sample_sequential;
    use cgp_hypergeom::{hypergeometric_mean, hypergeometric_variance};
    use cgp_rng::Pcg64;

    #[test]
    fn marginals_always_hold() {
        let mut rng = Pcg64::seed_from_u64(1);
        let source = vec![6u64, 11, 0, 3, 10];
        let target = vec![10u64, 10, 10];
        for _ in 0..200 {
            let a = sample_recursive(&mut rng, &source, &target);
            a.check_marginals(&source, &target).unwrap();
        }
    }

    #[test]
    fn single_row_is_forced_to_the_demands() {
        let mut rng = Pcg64::seed_from_u64(2);
        let a = sample_recursive(&mut rng, &[15], &[5, 5, 5]);
        assert_eq!(a.row(0), &[5, 5, 5]);
    }

    #[test]
    fn two_rows_match_equation_8() {
        // For a 2x2 instance the matrix is determined by a_00; check its
        // empirical distribution against the hypergeometric marginal.
        use cgp_hypergeom::Hypergeometric;
        use cgp_stats::chi_square_test;
        let (m1, m2, mp1, mp2) = (6u64, 4u64, 5u64, 5u64);
        let h = Hypergeometric::new(mp1, m1, m2);
        let reps = 40_000u64;
        let mut rng = Pcg64::seed_from_u64(3);
        let mut counts = vec![0u64; (h.support_max() + 1) as usize];
        for _ in 0..reps {
            let a = sample_recursive(&mut rng, &[m1, m2], &[mp1, mp2]);
            counts[a.get(0, 0) as usize] += 1;
        }
        let expected: Vec<f64> = (0..counts.len() as u64)
            .map(|k| h.pmf(k) * reps as f64)
            .collect();
        let outcome = chi_square_test(&counts, &expected, 0);
        assert!(
            outcome.is_consistent_at(0.001),
            "chi-square rejected: {outcome:?}"
        );
    }

    #[test]
    fn agrees_with_sequential_in_moments() {
        let source = vec![12u64, 20, 8, 40];
        let target = vec![20u64, 20, 20, 20];
        let n: u64 = source.iter().sum();
        let reps = 20_000;
        let run = |recursive: bool| -> Vec<f64> {
            let mut rng = Pcg64::seed_from_u64(1234);
            let mut sums = [0u64; 16];
            for _ in 0..reps {
                let a = if recursive {
                    sample_recursive(&mut rng, &source, &target)
                } else {
                    sample_sequential(&mut rng, &source, &target)
                };
                for i in 0..4 {
                    for j in 0..4 {
                        sums[i * 4 + j] += a.get(i, j);
                    }
                }
            }
            sums.iter().map(|&s| s as f64 / reps as f64).collect()
        };
        let rec = run(true);
        let seq = run(false);
        for i in 0..4 {
            for j in 0..4 {
                let expect = hypergeometric_mean(target[j], source[i], n - source[i]);
                let sd = hypergeometric_variance(target[j], source[i], n - source[i]).sqrt();
                let tol = 6.0 * sd / (reps as f64).sqrt();
                assert!(
                    (rec[i * 4 + j] - expect).abs() < tol,
                    "recursive mean off at ({i},{j})"
                );
                assert!(
                    (seq[i * 4 + j] - expect).abs() < tol,
                    "sequential mean off at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let source = vec![9u64, 9, 9, 9];
        let target = vec![12u64, 12, 12];
        let a = sample_recursive(&mut Pcg64::seed_from_u64(55), &source, &target);
        let b = sample_recursive(&mut Pcg64::seed_from_u64(55), &source, &target);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_power_of_two_and_odd_row_counts() {
        let mut rng = Pcg64::seed_from_u64(4);
        for p in [2usize, 3, 5, 8, 13] {
            let source = vec![5u64; p];
            // Construct a 5-block target holding the same total.
            let target: Vec<u64> = {
                let total = 5 * p as u64;
                let base = total / 5;
                let mut t = vec![base; 5];
                t[0] += total - base * 5;
                t
            };
            let a = sample_recursive(&mut rng, &source, &target);
            a.check_marginals(&source, &target).unwrap();
        }
    }
}
