//! # cgp-matrix — random communication matrices
//!
//! The key idea of Gustedt's paper is to split the generation of a uniform
//! random permutation of a block-distributed vector into
//!
//! 1. sampling the **communication matrix** `A = (a_ij)` — how many items
//!    travel from source block `B_i` to target block `B'_j` — with exactly
//!    the probability induced by a uniform permutation (Problem 2), and
//! 2. local shuffles plus one all-to-all exchange realising `A`
//!    (Algorithm 1, implemented in `cgp-core`).
//!
//! This crate implements part 1 in all four flavours given in the paper:
//!
//! | Paper | Here | Cost |
//! |---|---|---|
//! | Algorithm 3 | [`sample_sequential`] | `O(p·p')` time, `O(p·p')` hypergeometric draws |
//! | Algorithm 4 | [`sample_recursive`] | same, recursive halving formulation |
//! | Algorithm 5 | [`sample_parallel_log`] | `Θ(p log p)` per processor on the CGM |
//! | Algorithm 6 | [`sample_parallel_optimal`] | `Θ(p)` per processor (cost-optimal, Theorem 2) |
//!
//! plus the machinery needed to *verify* them: the [`CommMatrix`] type with
//! its marginal checks and exact log-probability (the number of permutations
//! realising a matrix), a-posteriori extraction of the matrix of a given
//! permutation, and exhaustive enumeration of all valid matrices for small
//! instances ([`exact`]).

pub mod comm_matrix;
pub mod exact;
pub mod parallel_log;
pub mod parallel_opt;
pub mod recursive;
pub mod sequential;

pub use comm_matrix::CommMatrix;
pub use exact::{enumerate_matrices, exact_matrix_probabilities};
pub use parallel_log::sample_parallel_log;
pub use parallel_opt::sample_parallel_optimal;
pub use recursive::sample_recursive;
pub use sequential::sample_sequential;

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::Pcg64;

    #[test]
    fn all_backends_produce_valid_matrices() {
        let source = vec![4u64, 6, 2, 8];
        let target = vec![5u64, 5, 5, 5];
        let mut rng = Pcg64::seed_from_u64(0);
        for _ in 0..50 {
            let a = sample_sequential(&mut rng, &source, &target);
            a.check_marginals(&source, &target).unwrap();
            let b = sample_recursive(&mut rng, &source, &target);
            b.check_marginals(&source, &target).unwrap();
        }
    }
}
