//! # cgp-matrix — random communication matrices
//!
//! The key idea of Gustedt's paper is to split the generation of a uniform
//! random permutation of a block-distributed vector into
//!
//! 1. sampling the **communication matrix** `A = (a_ij)` — how many items
//!    travel from source block `B_i` to target block `B'_j` — with exactly
//!    the probability induced by a uniform permutation (Problem 2), and
//! 2. local shuffles plus one all-to-all exchange realising `A`
//!    (Algorithm 1, implemented in `cgp-core`).
//!
//! This crate implements part 1 in all four flavours given in the paper:
//!
//! | Paper | Here | Cost |
//! |---|---|---|
//! | Algorithm 3 | [`sample_sequential`] | `O(p·p')` time, `O(p·p')` hypergeometric draws |
//! | Algorithm 4 | [`sample_recursive`] | same, recursive halving formulation |
//! | Algorithm 5 | [`sample_parallel_log`] | `Θ(p log p)` per processor on the CGM |
//! | Algorithm 6 | [`sample_parallel_optimal`] | `Θ(p)` per processor (cost-optimal, Theorem 2) |
//!
//! plus the machinery needed to *verify* them: the [`CommMatrix`] type with
//! its marginal checks and exact log-probability (the number of permutations
//! realising a matrix), a-posteriori extraction of the matrix of a given
//! permutation, and exhaustive enumeration of all valid matrices for small
//! instances ([`exact`]).
//!
//! ## In-context sampling and executor-generic wrappers
//!
//! Each backend exists in two forms:
//!
//! * an **in-context core** (`sample_*_ctx`), which runs *inside an
//!   already-running CGM job* on the machine's word plane
//!   ([`cgp_cgm::MatrixCtx`]) and returns the calling processor's **row**
//!   of the matrix.  This is how the fused Algorithm 1 pipeline in
//!   `cgp-core` samples the matrix on the same workers that shuffle and
//!   exchange the data — no second machine, no extra thread spawns.  The
//!   two front-end backends ([`sample_sequential_ctx`],
//!   [`sample_recursive_ctx`]) sample the whole matrix on processor 0 and
//!   scatter the rows, exactly as the paper runs Algorithm 3/4 "on the
//!   front end"; the parallel backends run Algorithms 5/6 across all
//!   processors.
//! * a **standalone wrapper** with the historical name
//!   ([`sample_sequential`] and [`sample_recursive`] take an `rng` and run
//!   on the calling thread; [`sample_parallel_log`] and
//!   [`sample_parallel_optimal`] take `&mut impl CgmExecutor<u64>` — the
//!   one-shot [`cgp_cgm::CgmMachine`] *or* a resident
//!   [`cgp_cgm::ResidentCgm`] pool — and run the core as one job,
//!   returning the assembled matrix plus the word-plane metrics).
//!
//! All in-context draws derive from the machine seed per call
//! ([`cgp_cgm::MatrixCtx::sampling_rng`] / the `"communication-matrix"`
//! named stream), so for a fixed seed every substrate — and the fused
//! pipeline — samples the **identical** matrix.

pub mod comm_matrix;
pub mod exact;
pub mod parallel_log;
pub mod parallel_opt;
pub mod recursive;
pub mod sequential;

pub use comm_matrix::CommMatrix;
pub use exact::{enumerate_matrices, exact_matrix_probabilities};
pub use parallel_log::{sample_parallel_log, sample_parallel_log_ctx};
pub use parallel_opt::{sample_parallel_optimal, sample_parallel_optimal_ctx};
pub use recursive::{sample_recursive, sample_recursive_ctx};
pub use sequential::{sample_sequential, sample_sequential_ctx};

use cgp_cgm::MatrixCtx;
use cgp_rng::Pcg64;

/// Word-plane tag of the head-and-scatter row distribution (the sequential
/// and recursive in-context backends).  Chosen away from the round-numbered
/// tags of Algorithms 5/6 so a mixed trace stays readable.
pub(crate) const SCATTER_TAG: u64 = u64::MAX - 1;

/// Shared misuse check of the samplers.  The standalone wrappers call it on
/// the calling thread (fail-fast before any job starts); the in-context
/// `sample_*_ctx` cores call it too, so that misuse inside a caller-written
/// job dies with a descriptive message instead of an index-out-of-bounds or
/// — worse — a silently mis-marginalled matrix in release builds.
pub(crate) fn check_sampler_inputs(p: usize, source: &[u64], target: &[u64]) {
    assert_eq!(
        source.len(),
        p,
        "one source block per processor is required"
    );
    assert_eq!(
        source.iter().sum::<u64>(),
        target.iter().sum::<u64>(),
        "source and target must hold the same total number of items"
    );
}

/// In-context core shared by the two front-end backends: processor 0
/// samples the full matrix with `sample` (seeded from the
/// `"communication-matrix"` named stream — the stream the staged pipeline
/// used on the front end, so fusing changes nothing about the sampled
/// matrix) and scatters row `i` to processor `i` over the word plane.
pub(crate) fn sample_on_head_and_scatter(
    ctx: &mut MatrixCtx<'_>,
    source: &[u64],
    target: &[u64],
    sample: impl FnOnce(&mut Pcg64, &[u64], &[u64]) -> CommMatrix,
) -> Vec<u64> {
    let p = ctx.procs();
    check_sampler_inputs(p, source, target);
    ctx.superstep();
    if ctx.id() == 0 {
        let mut rng = ctx.seeds().named_stream("communication-matrix");
        let matrix = sample(&mut rng, source, target);
        for i in 0..p {
            ctx.comm_mut().send(i, SCATTER_TAG, matrix.row(i).to_vec());
        }
    }
    ctx.comm_mut().recv(0, SCATTER_TAG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::Pcg64;

    #[test]
    fn all_backends_produce_valid_matrices() {
        let source = vec![4u64, 6, 2, 8];
        let target = vec![5u64, 5, 5, 5];
        let mut rng = Pcg64::seed_from_u64(0);
        for _ in 0..50 {
            let a = sample_sequential(&mut rng, &source, &target);
            a.check_marginals(&source, &target).unwrap();
            let b = sample_recursive(&mut rng, &source, &target);
            b.check_marginals(&source, &target).unwrap();
        }
    }
}
