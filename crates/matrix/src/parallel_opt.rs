//! Algorithm 6 — cost-optimal parallel sampling of the communication matrix.
//!
//! Algorithm 5 slices the matrix along the row dimension only, so the head of
//! the full range keeps handling vectors of length `p'` in every round and
//! pays a `log p` factor.  Algorithm 6 alternates the dimension that is
//! split (`∆`/`∇` in the paper): rounds alternately halve the row range and
//! the column range of the region a processor group is responsible for, so
//! the vectors a head handles shrink geometrically.  After `⌈log₂ p⌉` rounds
//! every processor owns a sub-matrix of roughly `√p × √p` cells, knows its
//! row sums and column sums, samples it sequentially (Algorithm 3), and a
//! final all-to-all redistributes the entries so that processor `i` ends up
//! with row `i` of the full matrix.
//!
//! Per-processor cost: `Θ(p)` time, hypergeometric draws and communication
//! volume; `Θ(p²)` total — the optimal grain of Theorem 2 (Proposition 9).

use std::sync::Arc;

use crate::check_sampler_inputs;
use crate::comm_matrix::CommMatrix;
use crate::sequential::sample_sequential;
use cgp_cgm::{CgmExecutor, MachineMetrics, MatrixCtx};
use cgp_hypergeom::multivariate_hypergeometric;

/// In-context core of Algorithm 6: runs **inside an already-running job**
/// on the machine's word plane and returns this processor's row of the
/// sampled matrix.
///
/// Every processor of the job must call this with the same `source` (one
/// block size per processor) and `target` (the column sums, any length).
/// Random draws come from [`MatrixCtx::sampling_rng`] — derived fresh from
/// the machine seed per call — so the sampled matrix is a pure function of
/// the seed regardless of substrate (one-shot machine, resident pool, or a
/// fused permutation job).
///
/// # Panics
/// Panics (on the worker running the job) if `source.len()` differs from
/// the processor count or the totals disagree.
pub fn sample_parallel_optimal_ctx(
    ctx: &mut MatrixCtx<'_>,
    source: &[u64],
    target: &[u64],
) -> Vec<u64> {
    let id = ctx.id();
    let p = ctx.procs();
    let p_prime = target.len();
    check_sampler_inputs(p, source, target);
    let mut rng = ctx.sampling_rng();

    // beta[0]: row sums of the region this processor group is
    // responsible for (restricted to the region's columns);
    // beta[1]: column sums of that region.  Only the initial head holds
    // data; the window bounds are tracked by every processor because
    // they depend only on the deterministic halving of its own range.
    let mut beta: [Vec<u64>; 2] = if id == 0 {
        [source.to_vec(), target.to_vec()]
    } else {
        [Vec::new(), Vec::new()]
    };
    // Dimension windows: rows are dimension 0, columns dimension 1.
    let mut lo = [0usize, 0usize];
    let mut hi = [p, p_prime];
    // ∆ is the dimension split in the current round, ∇ the other one.
    let mut delta = 0usize;
    let mut nabla = 1usize;

    let mut r = 0usize;
    let mut s = p;
    let mut round = 0u64;
    while s - r > 1 {
        ctx.superstep();
        let q = (r + s) / 2;
        let q_delta = (lo[delta] + hi[delta]) / 2;
        if id == r {
            // The upper group takes the upper half of the ∆ window.
            let split_at = q_delta - lo[delta];
            let upper_delta: Vec<u64> = beta[delta][split_at..].to_vec();
            let t: u64 = upper_delta.iter().sum();
            ctx.comm_mut().send(q, 2 * round, upper_delta);
            // Split the ∇ sums between the two halves of the ∆ window.
            let to_up = multivariate_hypergeometric(&mut rng, t, &beta[nabla]);
            for (b, u) in beta[nabla].iter_mut().zip(&to_up) {
                *b -= u;
            }
            ctx.comm_mut().send(q, 2 * round + 1, to_up);
            // Keep only the lower half of the ∆ window.
            beta[delta].truncate(split_at);
        } else if id == q {
            beta[delta] = ctx.comm_mut().recv(r, 2 * round);
            beta[nabla] = ctx.comm_mut().recv(r, 2 * round + 1);
        }
        if id < q {
            s = q;
            hi[delta] = q_delta;
        } else {
            r = q;
            lo[delta] = q_delta;
        }
        std::mem::swap(&mut delta, &mut nabla);
        round += 1;
    }

    // Step 3: sample the local sub-matrix sequentially from its marginals.
    debug_assert_eq!(beta[0].len(), hi[0] - lo[0]);
    debug_assert_eq!(beta[1].len(), hi[1] - lo[1]);
    debug_assert_eq!(beta[0].iter().sum::<u64>(), beta[1].iter().sum::<u64>());
    let local = if beta[0].is_empty() || beta[1].is_empty() {
        None
    } else {
        Some(sample_sequential(&mut rng, &beta[0], &beta[1]))
    };

    // Step 4: redistribute the sub-matrices so that processor i ends up
    // with the full row i.  Message format per destination: either empty
    // (this processor owns no part of that row) or
    // [column_offset, entry, entry, …].
    ctx.superstep();
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    if let Some(local) = &local {
        for (local_row, global_row) in (lo[0]..hi[0]).enumerate() {
            let mut payload = Vec::with_capacity(1 + local.cols());
            payload.push(lo[1] as u64);
            payload.extend_from_slice(local.row(local_row));
            outgoing[global_row] = payload;
        }
    }
    let incoming = ctx.comm_mut().all_to_all(outgoing, u64::MAX);

    // Assemble this processor's row of the full matrix.
    let mut row = vec![0u64; p_prime];
    for payload in incoming {
        if payload.is_empty() {
            continue;
        }
        let col_offset = payload[0] as usize;
        for (k, &value) in payload[1..].iter().enumerate() {
            row[col_offset + k] = value;
        }
    }
    row
}

/// Runs Algorithm 6 as one job on the given executor — the one-shot
/// [`cgp_cgm::CgmMachine`] or a resident [`cgp_cgm::ResidentCgm`] pool
/// (thin wrapper around [`sample_parallel_optimal_ctx`]).
///
/// `source[i]` is the block size `m_i` of (and the row belonging to)
/// processor `i`; `target` holds the column sums `m'_j` (any length).
/// Returns the assembled matrix together with the metered word-plane
/// communication of the sampling job.
///
/// # Panics
/// Panics if `source.len()` differs from the executor's processor count or
/// the totals disagree.
pub fn sample_parallel_optimal(
    exec: &mut impl CgmExecutor<u64>,
    source: &[u64],
    target: &[u64],
) -> (CommMatrix, MachineMetrics) {
    check_sampler_inputs(exec.procs(), source, target);
    let source: Arc<[u64]> = source.into();
    let target: Arc<[u64]> = target.into();
    let outcome = exec
        .run_job(move |ctx| sample_parallel_optimal_ctx(&mut ctx.matrix_ctx(), &source, &target));
    let (rows, metrics) = outcome.into_parts();
    (CommMatrix::from_rows(rows), metrics.matrix_phase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::{CgmConfig, CgmMachine};
    use cgp_hypergeom::{hypergeometric_mean, hypergeometric_variance};

    #[test]
    fn marginals_hold_for_various_machine_sizes() {
        for p in [1usize, 2, 3, 4, 6, 8, 16, 32] {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(p as u64));
            let source: Vec<u64> = (0..p as u64).map(|i| 7 + (i % 5)).collect();
            let total: u64 = source.iter().sum();
            // Uneven target with the same total.
            let mut target = vec![total / 3, total / 3];
            target.push(total - target.iter().sum::<u64>());
            let (matrix, _) = sample_parallel_optimal(&mut machine, &source, &target);
            matrix.check_marginals(&source, &target).unwrap();
        }
    }

    #[test]
    fn symmetric_case_matches_hypergeometric_marginals() {
        let p = 4usize;
        let m = 10u64;
        let source = vec![m; p];
        let target = vec![m; p];
        let n = m * p as u64;
        let reps = 4_000u64;
        let mut sums = vec![0u64; p * p];
        for rep in 0..reps {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(1_000 + rep));
            let (matrix, _) = sample_parallel_optimal(&mut machine, &source, &target);
            for i in 0..p {
                for j in 0..p {
                    sums[i * p + j] += matrix.get(i, j);
                }
            }
        }
        for i in 0..p {
            for j in 0..p {
                let mean = sums[i * p + j] as f64 / reps as f64;
                let expect = hypergeometric_mean(m, m, n - m);
                let sd = hypergeometric_variance(m, m, n - m).sqrt();
                let tol = 6.0 * sd / (reps as f64).sqrt();
                assert!(
                    (mean - expect).abs() < tol,
                    "entry ({i},{j}): mean {mean} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = 16usize;
        let source = vec![25u64; p];
        let target = vec![25u64; p];
        let run = || {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(123));
            sample_parallel_optimal(&mut machine, &source, &target).0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_processor_volume_is_linear_not_log_linear() {
        // Theorem 2 / Proposition 9: every processor of Algorithm 6 handles
        // O(p) words, while Algorithm 5's head handles Θ(p log p).  Check the
        // growth rates by doubling p twice: the cost-optimal variant must
        // scale (roughly) linearly, the log variant super-linearly.
        use crate::parallel_log::sample_parallel_log;
        let volumes = |p: usize| -> (u64, u64) {
            let m = 50u64;
            let source = vec![m; p];
            let target = vec![m; p];
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(7));
            let (_, opt_metrics) = sample_parallel_optimal(&mut machine, &source, &target);
            let (_, log_metrics) = sample_parallel_log(&mut machine, &source, &target);
            (opt_metrics.max_comm_volume(), log_metrics.max_comm_volume())
        };
        let (opt16, log16) = volumes(16);
        let (opt64, log64) = volumes(64);
        // Absolute bound: O(p) per processor with a small constant.
        assert!(
            opt16 <= 9 * 16,
            "Algorithm 6 max volume {opt16} not O(p) for p=16"
        );
        assert!(
            opt64 <= 9 * 64,
            "Algorithm 6 max volume {opt64} not O(p) for p=64"
        );
        // Algorithm 5's head indeed carries the log factor.
        assert!(
            log64 as f64 >= 0.5 * 64.0 * 64f64.log2(),
            "Algorithm 5 head volume {log64} unexpectedly small"
        );
        // Growth rate: quadrupling p must not grow Algorithm 6's per-processor
        // volume by much more than 4x, while Algorithm 5 grows by ~4 * log
        // ratio (= 6).
        let opt_ratio = opt64 as f64 / opt16 as f64;
        let log_ratio = log64 as f64 / log16 as f64;
        assert!(
            opt_ratio < 5.5,
            "Algorithm 6 volume grew by {opt_ratio}x for 4x processors"
        );
        assert!(log_ratio > opt_ratio, "log variant ({log_ratio}x) should grow faster than the cost-optimal one ({opt_ratio}x)");
    }

    #[test]
    fn single_processor_degenerates_to_the_target_vector() {
        let mut machine = CgmMachine::new(CgmConfig::new(1).with_seed(3));
        let (matrix, _) = sample_parallel_optimal(&mut machine, &[12], &[3, 4, 5]);
        assert_eq!(matrix.row(0), &[3, 4, 5]);
    }

    #[test]
    fn agrees_with_sequential_in_distribution_2x2() {
        // Exact chi-square on the 2-processor case where the matrix is
        // determined by a_00 (equation (8)).
        use cgp_hypergeom::Hypergeometric;
        use cgp_stats::chi_square_test;
        let (m1, m2) = (6u64, 6u64);
        let h = Hypergeometric::new(m1, m1, m2);
        let reps = 20_000u64;
        let mut counts = vec![0u64; (h.support_max() + 1) as usize];
        for rep in 0..reps {
            let mut machine = CgmMachine::new(CgmConfig::new(2).with_seed(50_000 + rep));
            let (matrix, _) = sample_parallel_optimal(&mut machine, &[m1, m2], &[m1, m2]);
            counts[matrix.get(0, 0) as usize] += 1;
        }
        let expected: Vec<f64> = (0..counts.len() as u64)
            .map(|k| h.pmf(k) * reps as f64)
            .collect();
        let outcome = chi_square_test(&counts, &expected, 0);
        assert!(
            outcome.is_consistent_at(0.001),
            "Algorithm 6 deviates from the exact law: {outcome:?}"
        );
    }

    #[test]
    #[should_panic(expected = "same total number of items")]
    fn mismatched_totals_panic() {
        let mut machine = CgmMachine::with_procs(2);
        let _ = sample_parallel_optimal(&mut machine, &[2, 2], &[3, 2]);
    }
}
