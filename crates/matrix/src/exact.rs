//! Exhaustive enumeration of communication matrices for small instances.
//!
//! For tiny block sizes the set of matrices satisfying the marginal equations
//! (2) and (3) can be enumerated completely and their exact probabilities
//! evaluated from [`CommMatrix::ln_probability`].  The samplers are then
//! validated by a chi-square goodness-of-fit test against this exact law
//! (experiments E5/E7 and the property tests of this crate).

use crate::comm_matrix::CommMatrix;

/// Enumerates every matrix with row sums `source` and column sums `target`.
///
/// The running time is exponential in the matrix size — intended for `p, p'
/// ≤ 4` and totals of a few dozen items, which is ample for statistical
/// validation.
pub fn enumerate_matrices(source: &[u64], target: &[u64]) -> Vec<CommMatrix> {
    assert!(!source.is_empty() && !target.is_empty());
    assert_eq!(
        source.iter().sum::<u64>(),
        target.iter().sum::<u64>(),
        "marginals must agree on the total"
    );
    let mut out = Vec::new();
    let mut matrix = CommMatrix::zeros(source.len(), target.len());
    let mut remaining = target.to_vec();
    fill_rows(source, &mut remaining, 0, &mut matrix, &mut out);
    out
}

/// Recursively fills row `i` with every vector that sums to `source[i]` and
/// respects the remaining column demands.
fn fill_rows(
    source: &[u64],
    remaining: &mut Vec<u64>,
    i: usize,
    matrix: &mut CommMatrix,
    out: &mut Vec<CommMatrix>,
) {
    if i == source.len() {
        if remaining.iter().all(|&r| r == 0) {
            out.push(matrix.clone());
        }
        return;
    }
    // Enumerate row i cell by cell.
    fn fill_cells(
        row_total_left: u64,
        j: usize,
        i: usize,
        source: &[u64],
        remaining: &mut Vec<u64>,
        matrix: &mut CommMatrix,
        out: &mut Vec<CommMatrix>,
    ) {
        if j == remaining.len() {
            if row_total_left == 0 {
                fill_rows(source, remaining, i + 1, matrix, out);
            }
            return;
        }
        let max_here = row_total_left.min(remaining[j]);
        for v in 0..=max_here {
            matrix.set(i, j, v);
            remaining[j] -= v;
            fill_cells(row_total_left - v, j + 1, i, source, remaining, matrix, out);
            remaining[j] += v;
        }
        matrix.set(i, j, 0);
    }
    fill_cells(source[i], 0, i, source, remaining, matrix, out);
}

/// Enumerates all valid matrices together with their exact probabilities
/// under a uniform random permutation.  The probabilities sum to 1.
pub fn exact_matrix_probabilities(source: &[u64], target: &[u64]) -> Vec<(CommMatrix, f64)> {
    enumerate_matrices(source, target)
        .into_iter()
        .map(|m| {
            let p = m.ln_probability().exp();
            (m, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sample_sequential;
    use cgp_rng::Pcg64;
    use cgp_stats::chi_square_test;
    use std::collections::HashMap;

    #[test]
    fn enumeration_counts_known_cases() {
        // 2x2 with marginals (2,2)/(2,2): a00 in {0,1,2} -> 3 matrices.
        assert_eq!(enumerate_matrices(&[2, 2], &[2, 2]).len(), 3);
        // 1x1: single matrix.
        assert_eq!(enumerate_matrices(&[7], &[7]).len(), 1);
        // 2x2 with marginals (1,1)/(1,1): 2 matrices (identity-ish and swap).
        assert_eq!(enumerate_matrices(&[1, 1], &[1, 1]).len(), 2);
    }

    #[test]
    fn every_enumerated_matrix_satisfies_marginals() {
        let source = [3u64, 2, 1];
        let target = [2u64, 2, 2];
        let all = enumerate_matrices(&source, &target);
        assert!(!all.is_empty());
        for m in &all {
            m.check_marginals(&source, &target).unwrap();
        }
        // No duplicates.
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn exact_probabilities_sum_to_one() {
        for (source, target) in [
            (vec![2u64, 2], vec![2u64, 2]),
            (vec![3, 2, 1], vec![2, 2, 2]),
            (vec![4, 4], vec![1, 3, 4]),
        ] {
            let probs = exact_matrix_probabilities(&source, &target);
            let total: f64 = probs.iter().map(|(_, p)| p).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{source:?} x {target:?}: {total}"
            );
        }
    }

    #[test]
    fn sequential_sampler_matches_exact_distribution() {
        // Full goodness-of-fit of Algorithm 3 against the exact law on a
        // non-trivial 3x2 instance.
        let source = vec![3u64, 2, 3];
        let target = vec![4u64, 4];
        let exact = exact_matrix_probabilities(&source, &target);
        let index: HashMap<CommMatrix, usize> = exact
            .iter()
            .enumerate()
            .map(|(i, (m, _))| (m.clone(), i))
            .collect();
        let reps = 60_000u64;
        let mut counts = vec![0u64; exact.len()];
        let mut rng = Pcg64::seed_from_u64(2024);
        for _ in 0..reps {
            let m = sample_sequential(&mut rng, &source, &target);
            let idx = *index.get(&m).expect("sampled matrix must be a valid one");
            counts[idx] += 1;
        }
        let expected: Vec<f64> = exact.iter().map(|(_, p)| p * reps as f64).collect();
        let outcome = chi_square_test(&counts, &expected, 0);
        assert!(
            outcome.is_consistent_at(0.001),
            "Algorithm 3 deviates from the exact matrix law: {outcome:?}"
        );
    }

    #[test]
    #[should_panic(expected = "must agree on the total")]
    fn mismatched_totals_rejected() {
        enumerate_matrices(&[1, 2], &[1, 1]);
    }
}
