//! Property-based tests for the communication-matrix samplers.

use proptest::prelude::*;

use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_matrix::{
    enumerate_matrices, sample_parallel_log, sample_parallel_optimal, sample_recursive,
    sample_sequential, CommMatrix,
};
use cgp_rng::Pcg64;

fn sizes(max_blocks: usize, max_size: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..=max_size, 1..=max_blocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both sequential samplers produce matrices with the exact marginals for
    /// arbitrary (possibly zero) block sizes.
    #[test]
    fn sequential_and_recursive_marginals(
        source in sizes(7, 25),
        cuts in prop::collection::vec(0.0f64..1.0, 1..6),
        seed in any::<u64>(),
    ) {
        // Build a target distribution over `cuts.len()+1` blocks with the
        // same total by splitting at random fractions.
        let total: u64 = source.iter().sum();
        let mut target = vec![0u64; cuts.len() + 1];
        for i in 0..total {
            // Deterministic pseudo-assignment from the cut fractions.
            let x = (i as f64 + 0.5) / total.max(1) as f64;
            let idx = cuts.iter().filter(|&&c| c < x).count();
            target[idx] += 1;
        }
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = sample_sequential(&mut rng, &source, &target);
        prop_assert!(a.check_marginals(&source, &target).is_ok());
        let b = sample_recursive(&mut rng, &source, &target);
        prop_assert!(b.check_marginals(&source, &target).is_ok());
    }

    /// The parallel samplers agree with the marginal constraints for any
    /// small machine and seed.
    #[test]
    fn parallel_samplers_marginals(
        p in 1usize..=6,
        m in 1u64..=30,
        seed in any::<u64>(),
    ) {
        let source = vec![m; p];
        let target = vec![m; p];
        let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let (a, _) = sample_parallel_log(&mut machine, &source, &target);
        prop_assert!(a.check_marginals(&source, &target).is_ok());
        let (b, _) = sample_parallel_optimal(&mut machine, &source, &target);
        prop_assert!(b.check_marginals(&source, &target).is_ok());
    }

    /// Every sampled matrix is one of the exhaustively enumerated valid
    /// matrices (for tiny instances where enumeration is feasible).
    #[test]
    fn sampled_matrices_are_valid_members(
        source in sizes(3, 4),
        seed in any::<u64>(),
    ) {
        let total: u64 = source.iter().sum();
        let target = vec![total]; // single target block: one valid matrix only
        let all = enumerate_matrices(&source, &target);
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = sample_sequential(&mut rng, &source, &target);
        prop_assert!(all.contains(&a));
    }

    /// The probability formula is scale-consistent: the log-probability of
    /// every enumerated matrix is finite and they normalise to 1.
    #[test]
    fn enumerated_probabilities_normalise(
        source in sizes(3, 3),
        split in 0.0f64..1.0,
    ) {
        let total: u64 = source.iter().sum();
        let left = (total as f64 * split).floor() as u64;
        let target = vec![left, total - left];
        let matrices = enumerate_matrices(&source, &target);
        let sum: f64 = matrices.iter().map(|m| m.ln_probability().exp()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "probabilities sum to {sum}");
    }

    /// The a-posteriori matrix of a permutation composed with a block-local
    /// reshuffle is unchanged (local order never affects the matrix).
    #[test]
    fn matrix_is_invariant_under_local_reordering(
        block_size in 1u64..=8,
        blocks in 1usize..=4,
        seed in any::<u64>(),
    ) {
        use cgp_cgm::BlockDistribution;
        use cgp_rng::RandomExt;
        let sizes = vec![block_size; blocks];
        let dist = BlockDistribution::from_sizes(sizes.clone());
        let n = dist.total();
        let mut rng = Pcg64::seed_from_u64(seed);
        let perm: Vec<u64> = rng.random_permutation(n as usize).iter().map(|&x| x as u64).collect();
        let original = CommMatrix::from_permutation(&perm, &dist, &dist);

        // Reorder the *source positions within each block*: composing with a
        // block-local permutation of the sources keeps each item's source
        // block, so the matrix must be identical.
        let mut reordered = perm.clone();
        for b in 0..blocks {
            let range = dist.range(b);
            let lo = range.start as usize;
            let hi = range.end as usize;
            let mut chunk: Vec<u64> = reordered[lo..hi].to_vec();
            rng.shuffle(&mut chunk);
            reordered[lo..hi].copy_from_slice(&chunk);
        }
        let after = CommMatrix::from_permutation(&reordered, &dist, &dist);
        prop_assert_eq!(original, after);
    }
}

#[test]
fn parallel_and_sequential_have_the_same_first_moment_small_case() {
    // Cheap deterministic cross-check: averaged over seeds, the (0,0) entry
    // of Algorithm 6 matches the hypergeometric mean (Proposition 3).
    use cgp_hypergeom::hypergeometric_mean;
    let p = 3usize;
    let m = 9u64;
    let reps = 600u64;
    let mut total = 0u64;
    for seed in 0..reps {
        let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let (a, _) = sample_parallel_optimal(&mut machine, &vec![m; p], &vec![m; p]);
        total += a.get(0, 0);
    }
    let mean = total as f64 / reps as f64;
    let expect = hypergeometric_mean(m, m, m * (p as u64 - 1));
    assert!(
        (mean - expect).abs() < 0.4,
        "mean {mean} vs expected {expect}"
    );
}
