//! Property-based tests for the RNG substrate.

use proptest::prelude::*;

use cgp_rng::{
    default_rng, proc_rng, CountingRng, Pcg64, RandomExt, RandomSource, SeedSequence, SplitMix64,
};

proptest! {
    /// Bounded sampling never reaches the bound, for any bound and seed.
    #[test]
    fn bounded_sampling_respects_the_bound(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut rng = default_rng(seed);
        for _ in 0..32 {
            prop_assert!(rng.gen_range_u64(bound) < bound);
        }
    }

    /// `gen_f64` is always in the half-open unit interval.
    #[test]
    fn unit_floats_stay_in_range(seed in any::<u64>()) {
        let mut rng = default_rng(seed);
        for _ in 0..64 {
            let x = rng.gen_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..64 {
            let x = rng.gen_open_f64();
            prop_assert!(x > 0.0 && x < 1.0);
        }
    }

    /// Shuffling preserves the multiset for arbitrary content.
    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut data in prop::collection::vec(any::<u32>(), 0..200)) {
        let mut rng = default_rng(seed);
        let mut expected = data.clone();
        rng.shuffle(&mut data);
        data.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(data, expected);
    }

    /// The same seed always reproduces the same stream; the counting wrapper
    /// never perturbs it.
    #[test]
    fn determinism_and_transparency(seed in any::<u64>()) {
        let mut a = Pcg64::seed_from_u64(seed);
        let mut b = CountingRng::new(Pcg64::seed_from_u64(seed));
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        prop_assert_eq!(b.count(), 64);
    }

    /// Advancing by k is the same as stepping k times.
    #[test]
    fn jump_ahead_consistency(seed in any::<u64>(), k in 0u64..5_000) {
        let mut stepped = Pcg64::seed_from_u64(seed);
        let mut jumped = stepped.clone();
        for _ in 0..k {
            stepped.next_u64();
        }
        jumped.advance(k as u128);
        prop_assert_eq!(stepped.next_u64(), jumped.next_u64());
    }

    /// Different processors always get streams that differ immediately.
    #[test]
    fn processor_streams_differ(master in any::<u64>(), a in 0usize..512, b in 0usize..512) {
        prop_assume!(a != b);
        let mut ra = proc_rng(master, a);
        let mut rb = proc_rng(master, b);
        let identical = (0..16).all(|_| ra.next_u64() == rb.next_u64());
        prop_assert!(!identical);
    }

    /// Child seeds of a seed sequence are deterministic functions of
    /// (master, index).
    #[test]
    fn seed_sequence_is_pure(master in any::<u64>(), index in any::<u64>()) {
        let a = SeedSequence::new(master).child_seed(index);
        let b = SeedSequence::new(master).child_seed(index);
        prop_assert_eq!(a, b);
    }

    /// SplitMix64's mixer is injective on any small window we probe.
    #[test]
    fn splitmix_mix_has_no_local_collisions(start in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            prop_assert!(seen.insert(SplitMix64::mix(start.wrapping_add(i))));
        }
    }
}

#[test]
fn random_permutation_is_complete() {
    let mut rng = default_rng(17);
    for n in [0usize, 1, 2, 10, 1000] {
        let p = rng.random_permutation(n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }
}
