//! Unbiased bounded integers and uniform floats.
//!
//! Bounded integers use Lemire's multiply–shift method (*Fast Random Integer
//! Generation in an Interval*, ACM TOMACS 2019): multiply a 64-bit draw by
//! the bound, keep the high half as the candidate, and reject only the small
//! set of low products that would introduce bias.  On average this consumes
//! barely more than one 64-bit draw per bounded integer, which matters for
//! the random-number accounting of Theorem 1.

use crate::traits::RandomSource;

/// Uniform integer in `[0, bound)` without modulo bias.
///
/// # Panics
/// Panics if `bound == 0`.
#[inline]
pub fn bounded_u64<R: RandomSource + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "bounded_u64 called with bound = 0");
    // Lemire's algorithm.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        // threshold = 2^64 mod bound, computed without 128-bit division.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Maps a 64-bit word to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    // 2^-53; the mantissa of an f64 holds 53 significant bits.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (word >> 11) as f64 * SCALE
}

/// Uniform integer in the inclusive range `[lo, hi]`.
///
/// # Panics
/// Panics if `lo > hi`.
#[inline]
pub fn range_inclusive_u64<R: RandomSource + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "range_inclusive_u64: lo > hi");
    let span = hi - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    lo + bounded_u64(rng, span + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;
    use crate::splitmix::SplitMix64;

    #[test]
    fn bounded_is_below_bound() {
        let mut rng = Pcg64::seed_from_u64(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33, u64::MAX] {
            for _ in 0..200 {
                assert!(bounded_u64(&mut rng, bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_one_is_always_zero() {
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..32 {
            assert_eq!(bounded_u64(&mut rng, 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound = 0")]
    fn bounded_zero_panics() {
        let mut rng = Pcg64::seed_from_u64(2);
        bounded_u64(&mut rng, 0);
    }

    #[test]
    fn bounded_covers_all_residues_for_small_bounds() {
        let mut rng = SplitMix64::new(3);
        let bound = 5u64;
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[bounded_u64(&mut rng, bound) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        // Chi-square-ish smoke test on 8 buckets.
        let mut rng = Pcg64::seed_from_u64(7);
        let bound = 8u64;
        let n = 80_000u64;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[bounded_u64(&mut rng, bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < 5.0 * expected.sqrt());
        }
    }

    #[test]
    fn unit_f64_bounds_and_resolution() {
        assert_eq!(unit_f64(0), 0.0);
        let max = unit_f64(u64::MAX);
        assert!(max < 1.0);
        assert!(max > 0.9999999999);
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = range_inclusive_u64(&mut rng, 10, 13);
            assert!((10..=13).contains(&v));
            saw_lo |= v == 10;
            saw_hi |= v == 13;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_degenerate() {
        let mut rng = Pcg64::seed_from_u64(9);
        assert_eq!(range_inclusive_u64(&mut rng, 5, 5), 5);
        // Full range must not overflow.
        let _ = range_inclusive_u64(&mut rng, 0, u64::MAX);
    }
}
