//! Derivation of independent per-processor random streams.
//!
//! In a coarse-grained machine each of the `p` virtual processors draws its
//! own random numbers concurrently.  For reproducibility the whole run must
//! be a pure function of a single master seed, independent of thread
//! scheduling; for correctness the per-processor sequences must not overlap.
//! [`SeedSequence`] provides both: it expands a master seed into arbitrarily
//! many child seeds/streams with SplitMix64 mixing, and hands out
//! [`crate::Pcg64`] generators on distinct PCG streams.

use crate::pcg::Pcg64;
use crate::splitmix::SplitMix64;

/// Expands a master seed into independent child seeds and generators.
///
/// ```
/// use cgp_rng::{SeedSequence, RandomSource};
/// let seq = SeedSequence::new(0xDEADBEEF);
/// let mut r0 = seq.proc_stream(0);
/// let mut r1 = seq.proc_stream(1);
/// assert_ne!(r0.next_u64(), r1.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed this sequence was created from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the `index`-th child seed.  Children are pairwise distinct
    /// with overwhelming probability (SplitMix64 mixing of a 64-bit counter).
    pub fn child_seed(&self, index: u64) -> u64 {
        // Two rounds of mixing with domain separation so that child_seed and
        // stream ids are unrelated.
        SplitMix64::mix(SplitMix64::mix(self.master ^ 0x6A09_E667_F3BC_C909).wrapping_add(index))
    }

    /// Derives a generator for virtual processor `proc_id`.
    ///
    /// The generator gets both a processor-specific state seed and a
    /// processor-specific PCG stream, so even identical state seeds could not
    /// produce overlapping sequences.
    pub fn proc_stream(&self, proc_id: usize) -> Pcg64 {
        let seed = self.child_seed(proc_id as u64);
        Pcg64::seed_stream(seed, (proc_id as u64) ^ self.master.rotate_left(17))
    }

    /// Derives a generator for a named role (e.g. the "matrix sampling"
    /// generator versus the "local shuffle" generator), useful to keep
    /// different algorithmic phases statistically decoupled while staying
    /// reproducible.
    pub fn named_stream(&self, role: &str) -> Pcg64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for &b in role.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3); // FNV prime
        }
        Pcg64::seed_stream(self.child_seed(h), h)
    }

    /// Derives a child [`SeedSequence`] — handy for nested structures such as
    /// "per processor, per superstep" seeding.
    pub fn child_sequence(&self, index: u64) -> SeedSequence {
        SeedSequence::new(self.child_seed(index ^ 0x5DEE_CE66_D153_2DB1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RandomSource;
    use std::collections::HashSet;

    #[test]
    fn child_seeds_are_distinct() {
        let seq = SeedSequence::new(42);
        let seeds: HashSet<u64> = (0..4096).map(|i| seq.child_seed(i)).collect();
        assert_eq!(seeds.len(), 4096);
    }

    #[test]
    fn proc_streams_reproducible() {
        let a = SeedSequence::new(1).proc_stream(3);
        let b = SeedSequence::new(1).proc_stream(3);
        let mut a = a;
        let mut b = b;
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_masters_give_different_children() {
        let a = SeedSequence::new(1).child_seed(0);
        let b = SeedSequence::new(2).child_seed(0);
        assert_ne!(a, b);
    }

    #[test]
    fn named_streams_are_decoupled() {
        let seq = SeedSequence::new(5);
        let mut m = seq.named_stream("matrix");
        let mut s = seq.named_stream("shuffle");
        let eq = (0..256).filter(|_| m.next_u64() == s.next_u64()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn child_sequence_differs_from_parent() {
        let parent = SeedSequence::new(7);
        let child = parent.child_sequence(0);
        assert_ne!(parent.child_seed(0), child.child_seed(0));
    }

    #[test]
    fn many_processors_no_prefix_collisions() {
        // First outputs of 512 processor streams must be pairwise distinct.
        let seq = SeedSequence::new(0xABCD);
        let firsts: HashSet<u64> = (0..512).map(|p| seq.proc_stream(p).next_u64()).collect();
        assert_eq!(firsts.len(), 512);
    }
}
