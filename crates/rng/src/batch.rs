//! Batched draws: a block-refilled view over any [`RandomSource`].
//!
//! The bucketed shuffle of `cgp-core` consumes one bounded draw per item in
//! two separate passes.  Drawing those words one `next_u64` at a time
//! interleaves the generator's serial state updates with the shuffle's
//! random memory accesses; refilling a small block of words up front keeps
//! the generator loop tight (nothing but state + a sequential store) and
//! lets the consumer's loop run against an in-cache buffer.  [`BlockRng`]
//! packages that pattern behind the ordinary [`RandomSource`] interface, so
//! every derived helper ([`crate::RandomExt`]'s bounded integers, shuffles,
//! …) works on it unchanged.
//!
//! Determinism: a `BlockRng` serves the underlying generator's words **in
//! order**, so any algorithm run against it produces exactly the output it
//! would produce against the bare generator (verified by test below).  The
//! only observable difference is that the wrapper may leave the underlying
//! generator advanced by up to `block - 1` unconsumed words when dropped —
//! a deterministic amount, so seeded replay is unaffected.
//!
//! Measured against its two candidate hot paths so far, the wrapper has
//! **lost both times** on the reference box: the bucketed scatter shuffle
//! (PR 6) and the dart engine's round draws (`cgp-core`'s `darts` module,
//! which wires [`BlockRng::gen_bounded`] behind a `fill_round_draws` seam
//! and measured direct `gen_range_u64` ~1.3× faster at `n = 4 × 10⁶`).
//! `Pcg64` words are simply cheap; the batching only pays where drawing a
//! word is expensive relative to a buffer store.  Both call sites keep the
//! batched path compiled and testable for re-measurement on such hosts.

use crate::traits::{RandomExt, RandomSource};

/// Default refill block, in 64-bit words (4 KiB — comfortably L1-resident).
pub const DEFAULT_BLOCK_WORDS: usize = 512;

/// A [`RandomSource`] adapter that pre-draws words from an inner generator
/// in fixed-size blocks.
///
/// ```
/// use cgp_rng::{BlockRng, Pcg64, RandomExt, RandomSource};
///
/// let mut direct = Pcg64::seed_from_u64(7);
/// let mut inner = Pcg64::seed_from_u64(7);
/// let mut buffered = BlockRng::new(&mut inner);
/// // Word-for-word identical to the bare generator.
/// for _ in 0..2000 {
///     assert_eq!(buffered.next_u64(), direct.next_u64());
/// }
/// ```
#[derive(Debug)]
pub struct BlockRng<'a, R: RandomSource + ?Sized> {
    inner: &'a mut R,
    buf: Vec<u64>,
    pos: usize,
    /// Unconsumed upper 32-bit half of the last word split by
    /// [`BlockRng::gen_bounded`].
    half: Option<u32>,
}

impl<'a, R: RandomSource + ?Sized> BlockRng<'a, R> {
    /// Wraps `inner` with the default block size.
    pub fn new(inner: &'a mut R) -> Self {
        BlockRng::with_block(inner, DEFAULT_BLOCK_WORDS)
    }

    /// Wraps `inner`, refilling `block` words at a time (clamped to ≥ 1).
    pub fn with_block(inner: &'a mut R, block: usize) -> Self {
        BlockRng {
            inner,
            buf: vec![0; block.max(1)],
            // Start exhausted: the first draw triggers the first refill, so
            // constructing a BlockRng that is never used draws nothing.
            pos: block.max(1),
            half: None,
        }
    }

    /// The next 32 random bits: the low half of a fresh word first, then the
    /// stashed high half — so two halfword draws cost one `next_u64`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.half.take() {
            Some(hi) => hi,
            None => {
                let word = self.next_u64();
                self.half = Some((word >> 32) as u32);
                word as u32
            }
        }
    }

    /// A uniform integer in `[0, bound)`, unbiased, consuming **half a word
    /// per draw** (amortized) whenever `bound` fits 32 bits.
    ///
    /// This is the batched bounded draw the bucketed shuffle engine of
    /// `cgp-core` runs on: its dealing and per-bucket passes only ever need
    /// ranges bounded by a cache-sized bucket, so Lemire rejection on 32-bit
    /// halves of the buffered word stream halves the generator work per item
    /// relative to [`RandomExt::gen_range_u64`].  Bounds above `u32::MAX`
    /// fall back to the full-word path; `bound == 0` is answered with 0.
    ///
    /// Draw accounting stays exact: a counting generator underneath sees
    /// every *word* the halves came from, and the split is deterministic, so
    /// seeded replay is unaffected.
    #[inline]
    pub fn gen_bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        if bound > u32::MAX as u64 {
            return self.gen_range_u64(bound);
        }
        let bound32 = bound as u32;
        // Lemire's multiply-shift with rejection, 32-bit domain.
        let mut m = (self.next_u32() as u64) * bound;
        if (m as u32) < bound32 {
            let threshold = bound32.wrapping_neg() % bound32;
            while (m as u32) < threshold {
                m = (self.next_u32() as u64) * bound;
            }
        }
        m >> 32
    }
}

impl<R: RandomSource + ?Sized> RandomSource for BlockRng<'_, R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == self.buf.len() {
            self.inner.fill_u64(&mut self.buf);
            self.pos = 0;
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingRng;
    use crate::pcg::Pcg64;

    #[test]
    fn serves_the_inner_stream_in_order() {
        let mut direct = Pcg64::seed_from_u64(11);
        let mut inner = Pcg64::seed_from_u64(11);
        let mut buffered = BlockRng::with_block(&mut inner, 64);
        for _ in 0..1000 {
            assert_eq!(buffered.next_u64(), direct.next_u64());
        }
    }

    #[test]
    fn shuffle_through_the_buffer_is_byte_identical() {
        // The load-bearing property for the bucketed engine: any consumer
        // of bounded draws sees the same stream, so a shuffle through the
        // buffer equals a shuffle against the bare generator.
        let mut direct = Pcg64::seed_from_u64(23);
        let mut via: Vec<u32> = (0..10_000).collect();
        let mut plain = via.clone();
        direct.shuffle(&mut plain);

        let mut inner = Pcg64::seed_from_u64(23);
        let mut buffered = BlockRng::with_block(&mut inner, 128);
        buffered.shuffle(&mut via);
        assert_eq!(via, plain);
    }

    #[test]
    fn construction_draws_nothing_and_overdraw_is_bounded() {
        let mut counted = CountingRng::new(Pcg64::seed_from_u64(3));
        {
            let _unused = BlockRng::with_block(&mut counted, 256);
        }
        assert_eq!(counted.count(), 0);

        let mut buffered = BlockRng::with_block(&mut counted, 256);
        let _ = buffered.next_u64();
        drop(buffered);
        // One refill: exactly one block drawn from the inner generator.
        assert_eq!(counted.count(), 256);
    }

    #[test]
    fn gen_bounded_halves_the_word_cost() {
        let mut counted = CountingRng::new(Pcg64::seed_from_u64(17));
        let mut buffered = BlockRng::with_block(&mut counted, 64);
        let draws = 10_000usize;
        for i in 0..draws {
            let bound = (i % 1000 + 1) as u64;
            assert!(buffered.gen_bounded(bound) < bound);
        }
        drop(buffered);
        // ~half a word per draw plus one partially consumed refill block and
        // the (rare) Lemire rejections.
        assert!(
            counted.count() <= draws as u64 / 2 + 64 + 16,
            "{} words for {draws} bounded draws",
            counted.count()
        );
    }

    #[test]
    fn gen_bounded_is_uniform_across_the_range() {
        let mut inner = Pcg64::seed_from_u64(29);
        let mut buffered = BlockRng::new(&mut inner);
        let bound = 7u64;
        let mut counts = [0u64; 7];
        let samples = 70_000;
        for _ in 0..samples {
            counts[buffered.gen_bounded(bound) as usize] += 1;
        }
        let expected = samples as f64 / bound as f64;
        for (value, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "value {value} drawn {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn gen_bounded_edge_bounds() {
        let mut inner = Pcg64::seed_from_u64(31);
        let mut buffered = BlockRng::new(&mut inner);
        assert_eq!(buffered.gen_bounded(0), 0);
        assert_eq!(buffered.gen_bounded(1), 0);
        // Above the halfword domain it falls back to the full-word path.
        let wide = (u32::MAX as u64) + 5;
        for _ in 0..100 {
            assert!(buffered.gen_bounded(wide) < wide);
        }
    }

    #[test]
    fn gen_bounded_is_deterministic() {
        let draw_all = || {
            let mut inner = Pcg64::seed_from_u64(37);
            let mut buffered = BlockRng::with_block(&mut inner, 32);
            (0..500)
                .map(|i| buffered.gen_bounded(i + 1))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_all(), draw_all());
    }

    #[test]
    fn degenerate_block_size_clamps_to_one() {
        let mut inner = Pcg64::seed_from_u64(5);
        let mut direct = Pcg64::seed_from_u64(5);
        let mut buffered = BlockRng::with_block(&mut inner, 0);
        for _ in 0..10 {
            assert_eq!(buffered.next_u64(), direct.next_u64());
        }
    }
}
