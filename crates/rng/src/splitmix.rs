//! SplitMix64 — a tiny 64-bit generator used for seeding.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast splittable pseudorandom number
//! generators*, OOPSLA 2014) walks a 64-bit counter by the golden-ratio
//! increment and scrambles it with two xor-shift-multiply rounds.  It is
//! equidistributed over the full 64-bit range and passes BigCrush, which
//! makes it a good *seeder*: we use it to expand a single user-supplied
//! `u64` into the 128-bit state and stream words of [`crate::Pcg64`] and into
//! per-processor seeds in [`crate::SeedSequence`].

use crate::traits::RandomSource;

/// Golden-ratio increment, `floor(2^64 / phi)`, which is odd and therefore a
/// full-period additive constant modulo `2^64`.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator.
///
/// ```
/// use cgp_rng::{SplitMix64, RandomSource};
/// let mut sm = SplitMix64::new(0);
/// // Reference value from the public-domain C implementation by Vigna.
/// assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose first output is `mix(seed + GAMMA)`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The finalization function: a strong 64-bit mixer (same constants as
    /// MurmurHash3's `fmix64` variant used by SplitMix64).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Produces the next 64-bit output.
    ///
    /// Named after the generator literature's convention; this is not an
    /// `Iterator` (a generator never ends, so there is no `None`).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        Self::mix(self.state)
    }

    /// Current internal counter (useful for tests and diagnostics).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl rand::RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(dest, || self.next());
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        rand::RngCore::fill_bytes(self, dest);
        Ok(())
    }
}

/// Shared helper: fills `dest` from successive `u64` words in little-endian
/// order.  Used by the `rand::RngCore` impls in this crate.
pub(crate) fn fill_bytes_from_u64(dest: &mut [u8], mut word: impl FnMut() -> u64) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&word().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = word().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567 from Vigna's splitmix64.c.
    #[test]
    fn matches_reference_vector_seed_zero() {
        let mut sm = SplitMix64::new(0);
        let expected = [
            0xE220A8397B1DCDAFu64,
            0x6E789E6AA1B965F4,
            0x06C45D188009454F,
            0xF88BB8A8724C81EC,
            0x1B39896A51A8749B,
        ];
        for &e in &expected {
            assert_eq!(sm.next(), e);
        }
    }

    #[test]
    fn mix_is_a_bijection_probe() {
        // mix() must not collapse nearby inputs; probe a window of inputs for
        // collisions (a bijection has none).
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..4096 {
            assert!(seen.insert(SplitMix64::mix(i)), "collision at {i}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use rand::RngCore;
        let mut sm = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        sm.fill_bytes(&mut buf);
        // The last 5 bytes must have been written (probability of all-zero
        // by chance is 2^-40; with a fixed seed this is deterministic).
        assert_ne!(&buf[8..], &[0u8; 5]);
    }

    #[test]
    fn state_advances_by_gamma() {
        let mut sm = SplitMix64::new(10);
        let s0 = sm.state();
        sm.next();
        assert_eq!(sm.state(), s0.wrapping_add(GOLDEN_GAMMA));
    }
}
