//! # cgp-rng — deterministic random number substrate
//!
//! The permutation algorithms of Gustedt's *"Randomized Permutations in a
//! Coarse Grained Parallel Environment"* (INRIA RR-4639) make quantitative
//! claims about the **number of random numbers** consumed per processor
//! (Theorem 1: `O(m)` random numbers per processor; Section 3: fewer than
//! `1.5` uniform draws per hypergeometric sample on average).  To be able to
//! verify these claims the project needs random number generators that are
//!
//! * **deterministic and reproducible** — every experiment can be replayed
//!   from a single `u64` seed;
//! * **splittable** — each of the `p` virtual processors needs its own
//!   statistically independent stream derived from the master seed;
//! * **countable** — the exact number of uniform draws must be observable.
//!
//! This crate provides those three properties from scratch:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and stream
//!   derivation,
//! * [`Pcg64`] — the main generator (PCG XSL RR 128/64), with
//!   constant-time multi-stream support,
//! * [`CountingRng`] — a transparent wrapper that counts every `u64` draw,
//! * [`BlockRng`] — a block-refilled view that batches draws without
//!   changing the served word stream (the bucketed shuffle's amortizer),
//! * [`SeedSequence`] — derivation of per-processor seeds/streams,
//! * [`RandomSource`] / [`RandomExt`] — the minimal trait the rest of the
//!   workspace programs against, including unbiased bounded integers
//!   (Lemire's method) and uniform floats.
//!
//! The crate also implements [`rand::RngCore`] for the concrete generators so
//! that they can be plugged into third-party code when convenient.

pub mod batch;
pub mod counting;
pub mod pcg;
pub mod range;
pub mod splitmix;
pub mod stream;
pub mod traits;

pub use batch::BlockRng;
pub use counting::CountingRng;
pub use pcg::Pcg64;
pub use splitmix::SplitMix64;
pub use stream::SeedSequence;
pub use traits::{RandomExt, RandomSource};

/// Convenience constructor: the generator used throughout the workspace,
/// seeded from a single `u64`.
///
/// ```
/// use cgp_rng::{default_rng, RandomExt};
/// let mut rng = default_rng(42);
/// let x = rng.gen_index(10);
/// assert!(x < 10);
/// ```
pub fn default_rng(seed: u64) -> Pcg64 {
    Pcg64::seed_from_u64(seed)
}

/// Convenience constructor for processor-local generators: derives an
/// independent stream for virtual processor `proc_id` from `master_seed`.
///
/// Every processor obtains both a distinct state seed *and* a distinct PCG
/// stream (odd increment), so the sequences never overlap even for adjacent
/// seeds.
pub fn proc_rng(master_seed: u64, proc_id: usize) -> Pcg64 {
    SeedSequence::new(master_seed).proc_stream(proc_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rng_is_reproducible() {
        let mut a = default_rng(7);
        let mut b = default_rng(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = default_rng(1);
        let mut b = default_rng(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "two seeds should give (almost) disjoint outputs");
    }

    #[test]
    fn proc_streams_are_distinct() {
        let mut r0 = proc_rng(99, 0);
        let mut r1 = proc_rng(99, 1);
        let collisions = (0..256).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert_eq!(collisions, 0);
    }
}
