//! The minimal random-source abstraction the workspace programs against.
//!
//! Only one method is required ([`RandomSource::next_u64`]); everything else
//! ([`RandomExt`]) is derived from it.  Keeping the required surface this
//! small makes it trivial to interpose wrappers such as
//! [`crate::CountingRng`] that meter the exact number of draws — which is how
//! the random-number budget of Theorem 1 and the "< 1.5 uniforms per
//! hypergeometric sample" claim of Section 3 are verified experimentally.

use crate::range::{bounded_u64, unit_f64};

/// A source of uniformly distributed 64-bit words.
pub trait RandomSource {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Derived sampling helpers available on every [`RandomSource`].
pub trait RandomExt: RandomSource {
    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).  `bound` must be non-zero.
    #[inline]
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        bounded_u64(self, bound)
    }

    /// Uniform index in `[0, n)`.  Panics if `n == 0`.
    #[inline]
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index called with n = 0");
        bounded_u64(self, n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Uniform `f64` in the open interval `(0, 1)` — never returns exactly
    /// `0.0`, which ratio-of-uniforms rejection samplers need to be able to
    /// take logarithms of the draw.
    #[inline]
    fn gen_open_f64(&mut self) -> f64 {
        loop {
            let x = unit_f64(self.next_u64());
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Fills `out` with uniformly random 64-bit words.
    ///
    /// The words are drawn in order with `next_u64`, so filling a block and
    /// consuming it word by word replays exactly the stream a caller would
    /// have seen drawing one at a time (this is what [`crate::BlockRng`]
    /// builds on).  The point of the bulk form is performance: the refill
    /// loop touches nothing but the generator state and a sequential output
    /// buffer, so draws amortize instead of interleaving with the consumer's
    /// memory traffic.
    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// In-place Fisher–Yates shuffle of a slice.
    ///
    /// This is the reference sequential algorithm against which the
    /// coarse-grained algorithm's work-optimality is defined (the PRO model
    /// measures speed-up relative to a fixed sequential algorithm).
    fn shuffle<T>(&mut self, data: &mut [T]) {
        // Durstenfeld variant: for i from n-1 down to 1, swap a[i] with
        // a[j], j uniform in [0, i].
        for i in (1..data.len()).rev() {
            let j = self.gen_range_u64((i + 1) as u64) as usize;
            data.swap(i, j);
        }
    }

    /// Draws a uniformly random permutation of `0..n` as a vector.
    fn random_permutation(&mut self, n: usize) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut perm);
        perm
    }
}

impl<R: RandomSource + ?Sized> RandomExt for R {}

/// Allow `&mut R` to be used wherever a `RandomSource` is expected.
impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl RandomSource for Box<dyn RandomSource + '_> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn random_permutation_has_every_element() {
        let mut rng = Pcg64::seed_from_u64(3);
        let p = rng.random_permutation(257);
        let mut seen = vec![false; 257];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Pcg64::seed_from_u64(4);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn gen_index_within_bounds() {
        let mut rng = Pcg64::seed_from_u64(5);
        for n in [1usize, 2, 3, 17, 1000] {
            for _ in 0..100 {
                assert!(rng.gen_index(n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "gen_index called with n = 0")]
    fn gen_index_zero_panics() {
        let mut rng = Pcg64::seed_from_u64(5);
        rng.gen_index(0);
    }

    #[test]
    fn mut_ref_is_a_source() {
        fn draw(r: &mut impl RandomSource) -> u64 {
            r.next_u64()
        }
        let mut rng = Pcg64::seed_from_u64(6);
        let _ = draw(&mut &mut rng);
    }
}
