//! PCG XSL RR 128/64 — the workhorse generator of the workspace.
//!
//! PCG (O'Neill, *PCG: A Family of Simple Fast Space-Efficient Statistically
//! Good Algorithms for Random Number Generation*, 2014) combines a 128-bit
//! linear congruential generator with a xor-shift-low + random-rotation
//! output permutation.  The variant implemented here (`XSL RR 128/64`) emits
//! 64 bits per step, has period `2^128` per stream, and supports `2^127`
//! statistically independent streams selected by the (odd) increment.
//!
//! Multi-stream support is exactly what a coarse-grained machine needs: each
//! of the `p` virtual processors draws from its own stream derived from the
//! master seed (see [`crate::SeedSequence`]), so runs are reproducible
//! regardless of thread scheduling.

use crate::splitmix::{fill_bytes_from_u64, SplitMix64};
use crate::traits::RandomSource;

/// Default multiplier of the 128-bit LCG (from the PCG reference
/// implementation).
const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// Default increment (stream) of the PCG reference implementation; any odd
/// value works, each odd value selects a distinct stream.
const PCG_DEFAULT_INCREMENT: u128 = 0x5851_F42D_4C95_7F2D_1405_7B7E_F767_814F;

/// The PCG XSL RR 128/64 generator.
///
/// ```
/// use cgp_rng::{Pcg64, RandomSource, RandomExt};
/// let mut rng = Pcg64::seed_from_u64(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert!(rng.gen_f64() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Odd increment selecting the stream.
    increment: u128,
}

impl Pcg64 {
    /// Creates a generator from full 128-bit state and stream values.
    ///
    /// `stream` may be any value; it is mapped to an odd increment
    /// internally (`2*stream + 1`), so distinct `stream` values in
    /// `0..2^127` give distinct sequences.
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 {
            state: 0,
            increment,
        };
        // Standard PCG seeding: advance once, add the seed, advance again so
        // that the first output already depends on every seed bit.
        pcg.step();
        pcg.state = pcg.state.wrapping_add(state);
        pcg.step();
        pcg
    }

    /// Seeds state and stream from a single `u64` via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let lo = sm.next() as u128;
        let hi = sm.next() as u128;
        let state = (hi << 64) | lo;
        Pcg64 {
            state: Self::seeded_state(state, PCG_DEFAULT_INCREMENT),
            increment: PCG_DEFAULT_INCREMENT,
        }
    }

    /// Seeds a generator on an explicit stream id, expanding the `u64` seed
    /// with SplitMix64.  Used for per-processor generators.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let lo = sm.next() as u128;
        let hi = sm.next() as u128;
        // Scramble the stream id as well so that nearby processor ids do not
        // produce arithmetically related increments.
        let s_lo = SplitMix64::mix(stream) as u128;
        let s_hi = SplitMix64::mix(stream ^ 0xA5A5_A5A5_A5A5_A5A5) as u128;
        Pcg64::new((hi << 64) | lo, (s_hi << 64) | s_lo)
    }

    #[inline]
    fn seeded_state(seed_state: u128, increment: u128) -> u128 {
        // Equivalent to the two-step seeding in `new`, specialised for the
        // default increment path.
        let mut state: u128 = 0;
        state = state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(increment);
        state = state.wrapping_add(seed_state);
        state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(increment)
    }

    /// Advances the LCG by one step.
    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
    }

    /// The XSL-RR output permutation: xor the high and low halves and rotate
    /// by the top 6 bits of the state.
    #[inline]
    fn output(state: u128) -> u64 {
        let xored = ((state >> 64) as u64) ^ (state as u64);
        let rot = (state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// Produces the next 64 random bits.
    ///
    /// Named after the generator literature's convention; this is not an
    /// `Iterator` (a generator never ends, so there is no `None`).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.step();
        Self::output(self.state)
    }

    /// Jump the generator ahead by `delta` steps in `O(log delta)` time
    /// (Brown's LCG jump-ahead algorithm).  Useful for carving one long
    /// sequence into provably non-overlapping sub-sequences.
    pub fn advance(&mut self, mut delta: u128) {
        let mut acc_mult: u128 = 1;
        let mut acc_plus: u128 = 0;
        let mut cur_mult = PCG_MULTIPLIER;
        let mut cur_plus = self.increment;
        while delta > 0 {
            if delta & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_plus = acc_plus.wrapping_mul(cur_mult).wrapping_add(cur_plus);
            }
            cur_plus = cur_mult.wrapping_add(1).wrapping_mul(cur_plus);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            delta >>= 1;
        }
        self.state = acc_mult.wrapping_mul(self.state).wrapping_add(acc_plus);
    }

    /// Returns the raw 128-bit state (diagnostics / tests only).
    pub fn state(&self) -> u128 {
        self.state
    }

    /// Returns the stream increment (always odd).
    pub fn increment(&self) -> u128 {
        self.increment
    }
}

impl RandomSource for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl rand::RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(dest, || self.next());
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        rand::RngCore::fill_bytes(self, dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RandomExt;

    #[test]
    fn increment_is_always_odd() {
        for stream in [0u128, 1, 2, 12345, u128::MAX >> 1] {
            let pcg = Pcg64::new(7, stream);
            assert_eq!(pcg.increment() & 1, 1);
        }
    }

    #[test]
    fn streams_do_not_collide() {
        let mut a = Pcg64::seed_stream(11, 0);
        let mut b = Pcg64::seed_stream(11, 1);
        let eq = (0..1024).filter(|_| a.next() == b.next()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn advance_matches_stepping() {
        let mut a = Pcg64::seed_from_u64(5);
        let mut b = a.clone();
        for _ in 0..1000 {
            a.next();
        }
        b.advance(1000);
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn advance_zero_is_identity() {
        let mut a = Pcg64::seed_from_u64(5);
        let before = a.state();
        a.advance(0);
        assert_eq!(a.state(), before);
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Count bits over a few thousand outputs; each bit position should be
        // set close to half of the time.  This is a smoke test, not a
        // statistical suite.
        let mut rng = Pcg64::seed_from_u64(2024);
        let n = 4096u64;
        let mut ones = [0u64; 64];
        for _ in 0..n {
            let x = rng.next();
            for (i, o) in ones.iter_mut().enumerate() {
                *o += (x >> i) & 1;
            }
        }
        for (i, &o) in ones.iter().enumerate() {
            let frac = o as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {i} biased: {frac}");
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rand_rngcore_interop() {
        use rand::Rng;
        let mut rng = Pcg64::seed_from_u64(77);
        let v: u32 = rng.gen_range(0..100);
        assert!(v < 100);
    }
}
