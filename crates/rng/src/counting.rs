//! A transparent wrapper that counts every 64-bit draw.
//!
//! The paper's Theorem 1 bounds the number of random numbers per processor by
//! `O(m)`, and Section 3 reports that sampling one hypergeometric variate
//! costs fewer than `1.5` uniform draws on average and at most `10` in the
//! worst case.  [`CountingRng`] lets the experiment harness observe those
//! numbers directly: wrap any [`RandomSource`], run the algorithm, read
//! [`CountingRng::count`].

use crate::traits::RandomSource;

/// Wraps a [`RandomSource`] and counts how many `u64` words were drawn.
///
/// ```
/// use cgp_rng::{CountingRng, Pcg64, RandomExt};
/// let mut rng = CountingRng::new(Pcg64::seed_from_u64(1));
/// let _ = rng.gen_f64();
/// let _ = rng.gen_index(10);
/// assert!(rng.count() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    count: u64,
}

impl<R: RandomSource> CountingRng<R> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, count: 0 }
    }

    /// Number of `u64` draws made through this wrapper so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&mut self) -> u64 {
        std::mem::take(&mut self.count)
    }

    /// Consumes the wrapper, returning the inner generator and the final
    /// count.
    pub fn into_parts(self) -> (R, u64) {
        (self.inner, self.count)
    }

    /// Shared access to the wrapped generator.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped generator **without counting** — only
    /// for tests that need to perturb the inner state.
    pub fn inner_mut_uncounted(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: RandomSource> RandomSource for CountingRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.count += 1;
        self.inner.next_u64()
    }
}

/// Helper that measures the number of draws consumed by a closure.
///
/// Returns `(closure_result, draws)`.
pub fn count_draws<R, T>(rng: R, f: impl FnOnce(&mut CountingRng<R>) -> T) -> (T, u64)
where
    R: RandomSource,
{
    let mut counting = CountingRng::new(rng);
    let out = f(&mut counting);
    let draws = counting.count();
    (out, draws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;
    use crate::traits::RandomExt;

    #[test]
    fn counts_every_draw() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(1));
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        assert_eq!(rng.count(), 17);
    }

    #[test]
    fn reset_returns_previous_value() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(1));
        let _ = rng.next_u64();
        let _ = rng.next_u64();
        assert_eq!(rng.reset(), 2);
        assert_eq!(rng.count(), 0);
    }

    #[test]
    fn wrapper_is_transparent() {
        // The wrapped generator must produce exactly the same sequence as an
        // unwrapped one.
        let mut plain = Pcg64::seed_from_u64(99);
        let mut counted = CountingRng::new(Pcg64::seed_from_u64(99));
        for _ in 0..64 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
    }

    #[test]
    fn shuffle_uses_at_most_one_extra_draw_per_item() {
        // Fisher-Yates with Lemire sampling uses ~1 draw per item (plus rare
        // rejections); this pins the O(n) random-number budget of the
        // sequential reference algorithm.
        let n = 10_000usize;
        let (_, draws) = count_draws(Pcg64::seed_from_u64(5), |rng| {
            let mut v: Vec<u32> = (0..n as u32).collect();
            rng.shuffle(&mut v);
            v
        });
        assert!(draws >= (n - 1) as u64);
        assert!(
            draws < (n as u64) + (n as u64) / 10,
            "unexpectedly many rejections: {draws} draws for {n} items"
        );
    }

    #[test]
    fn into_parts_preserves_state() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(123));
        let a = rng.next_u64();
        let (mut inner, count) = rng.into_parts();
        assert_eq!(count, 1);
        // inner continues the sequence after `a`.
        let b = inner.next_u64();
        let mut reference = Pcg64::seed_from_u64(123);
        assert_eq!(reference.next_u64(), a);
        assert_eq!(reference.next_u64(), b);
    }
}
