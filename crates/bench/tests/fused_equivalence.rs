//! Equivalence of the fused single-job pipeline with the staged two-job
//! seed pipeline it replaced.
//!
//! Fusing Algorithm 1 into one machine run must be a pure *pipeline-shape*
//! change: for the same machine seed, shape and backend, the permutation
//! must be **byte-for-byte identical** to what the staged engine produced
//! — on the one-shot machine *and* through a resident session.  The staged
//! engine is kept verbatim in [`cgp_bench::staged`] precisely so this can
//! be asserted against the real thing rather than a re-derivation.

use proptest::prelude::*;

use cgp_bench::staged::{staged_permute_vec, StagedSession};
use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_core::{permute_vec, MatrixBackend, PermuteOptions, Permuter};

/// Splits `total` into `parts` non-negative sizes, deterministically from
/// `mix` — a cheap composition generator for rectangular-free prescribed
/// target sizes.
fn compose(total: u64, parts: usize, mut mix: u64) -> Vec<u64> {
    let mut sizes = vec![0u64; parts];
    let mut remaining = total;
    for size in sizes.iter_mut().take(parts - 1) {
        // xorshift-ish scramble; only determinism matters here.
        mix ^= mix << 13;
        mix ^= mix >> 7;
        mix ^= mix << 17;
        let take = if remaining == 0 {
            0
        } else {
            mix % (remaining + 1)
        };
        *size = take;
        remaining -= take;
    }
    sizes[parts - 1] = remaining;
    sizes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused path produces the identical permutation to the staged
    /// seed path for arbitrary shapes — including `p = 1`, empty inputs
    /// and `n < p` (empty blocks) — over every matrix backend, both
    /// one-shot and through a session.
    #[test]
    fn fused_matches_staged_one_shot_and_session(
        procs in 1usize..=6,
        n in 0usize..300,
        seed in any::<u64>(),
        backend_index in 0usize..4,
    ) {
        let backend = MatrixBackend::ALL[backend_index];
        let config = CgmConfig::new(procs).with_seed(seed);
        let options = PermuteOptions::with_backend(backend);
        let machine = CgmMachine::new(config);

        let staged = staged_permute_vec(&machine, (0..n as u64).collect(), &options);
        let (fused, _) = permute_vec(&machine, (0..n as u64).collect(), &options);
        prop_assert_eq!(
            &fused, &staged,
            "one-shot fused diverged from staged: p = {}, n = {}, {:?}", procs, n, backend
        );

        // Session substrates, staged and fused, two rounds each (the
        // second exercising warm buffers).
        let mut staged_session: StagedSession<u64> = StagedSession::new(config, options.clone());
        let permuter = Permuter::new(procs).seed(seed).backend(backend);
        let mut fused_session = permuter.session::<u64>();
        for round in 0..2 {
            let mut via_staged: Vec<u64> = (0..n as u64).collect();
            staged_session.permute_into(&mut via_staged);
            prop_assert_eq!(
                &via_staged, &staged,
                "staged session diverged in round {}", round
            );
            let (via_fused, _) = fused_session.permute((0..n as u64).collect());
            prop_assert_eq!(
                &via_fused, &staged,
                "fused session diverged from staged: p = {}, n = {}, {:?}, round {}",
                procs, n, backend, round
            );
        }
    }

    /// Equivalence also holds for uneven prescribed target sizes (the
    /// redistribution form of Algorithm 1).
    #[test]
    fn fused_matches_staged_with_prescribed_target_sizes(
        procs in 1usize..=5,
        n in 0u64..200,
        seed in any::<u64>(),
        backend_index in 0usize..4,
        mix in any::<u64>(),
    ) {
        let backend = MatrixBackend::ALL[backend_index];
        let machine = CgmMachine::new(CgmConfig::new(procs).with_seed(seed));
        let options = PermuteOptions::with_backend(backend)
            .target_sizes(compose(n, procs, mix | 1));
        let staged = staged_permute_vec(&machine, (0..n).collect(), &options);
        let (fused, report) = permute_vec(&machine, (0..n).collect(), &options);
        prop_assert_eq!(&fused, &staged);
        // The per-phase meters exist for every backend now (possibly zero).
        prop_assert_eq!(report.matrix_metrics.procs(), procs);
        prop_assert_eq!(report.exchange_metrics.procs(), procs);
    }

    /// Rectangular prescriptions (count ≠ p) must still fail fast on the
    /// calling thread, with the caller's data untouched — fusing the
    /// pipeline must not demote the fail-fast contract to a cross-thread
    /// worker panic.
    #[test]
    fn rectangular_target_sizes_still_fail_fast(
        procs in 1usize..=4,
        extra in 1usize..=3,
        backend_index in 0usize..4,
    ) {
        let backend = MatrixBackend::ALL[backend_index];
        let machine = CgmMachine::new(CgmConfig::new(procs).with_seed(7));
        let n = 24u64;
        let options = PermuteOptions::with_backend(backend)
            .target_sizes(compose(n, procs + extra, 3));
        let mut data: Vec<u64> = (0..n).collect();
        let mut scratch = cgp_core::PermuteScratch::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cgp_core::permute_vec_into(&machine, &mut data, &options, &mut scratch);
        }));
        prop_assert!(outcome.is_err(), "rectangular prescription must be rejected");
        prop_assert_eq!(&data, &(0..n).collect::<Vec<u64>>());
    }
}
