//! The one place the `BENCH_*.json` snapshot schema lives.
//!
//! Every `exp_*` binary that tracks a performance trajectory across PRs
//! writes its measurements through [`Snapshot::to_json`] and re-reads
//! committed snapshots through [`Snapshot::parse`]:
//!
//! ```json
//! {
//!   "bench": "<experiment name>",
//!   "schema": 1,
//!   ...optional experiment-wide metadata ("backend": ...),
//!   "rows": [ {"n": 10000, "procs": 4, "speedup": 1.52, ...}, ... ]
//! }
//! ```
//!
//! Rows are flat objects of numbers and strings.  `schema` versions the
//! layout in one place; snapshots written before the field existed parse
//! as version 1.
//!
//! The module also implements the **CI perf-regression gate**: every
//! snapshot binary accepts `--check <committed.json>`, re-runs its
//! experiment at the committed grid and fails (exit 1) only when a *paired
//! ratio* — a dimensionless speedup measured back-to-back within one run,
//! so it transfers between hosts — regressed by more than
//! [`CHECK_TOLERANCE`]× against the committed value.  The tolerance is
//! deliberately generous: shared CI runners are noisy, and the gate exists
//! to catch a PR that quietly *destroys* a won speedup, not to police
//! percent-level drift.

use std::fmt::Write as _;

/// Current snapshot schema version (bump when the layout changes).
///
/// Version history: **1** — the original flat layout; **2** — service
/// rows gained a string `"scenario"` id column (`"uniform"` / `"skewed"` /
/// `"tiny"`).  The parser is tolerant in both directions: unknown columns
/// ride along as row values, and version-1 snapshots (or pre-`schema`
/// snapshots) still parse — `--check` matches rows on explicit id keys,
/// never on the version.
pub const SCHEMA_VERSION: u64 = 2;

/// How many times a committed paired ratio may shrink before the `--check`
/// gate fails the run.
pub const CHECK_TOLERANCE: f64 = 2.0;

/// A flat row/metadata value: everything the snapshots need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A number (integers survive exactly up to 2⁵³).
    Num(f64),
    /// A string (payload names, backend names).
    Str(String),
}

impl Value {
    /// Numeric view, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Str(_) => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:.4}");
                }
            }
            Value::Str(s) => {
                debug_assert!(
                    !s.contains(['"', '\\']),
                    "snapshot strings are plain names; got {s:?}"
                );
                let _ = write!(out, "\"{s}\"");
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Num(x as f64)
    }
}

impl From<u128> for Value {
    fn from(x: u128) -> Self {
        Value::Num(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// One measurement row: ordered `(key, value)` pairs (order is preserved in
/// the emitted JSON, so diffs stay readable).
pub type Row = Vec<(String, Value)>;

/// Builds a [`Row`] from `(key, value)` pairs.
pub fn row<const N: usize>(pairs: [(&str, Value); N]) -> Row {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// Looks a key up in a row.
pub fn get<'a>(row: &'a Row, key: &str) -> Option<&'a Value> {
    row.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A machine-readable benchmark snapshot (see the module docs for the
/// layout).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Experiment name (`"exchange"`, `"resident"`, `"fused"`,
    /// `"service"`).
    pub bench: String,
    /// Schema version the snapshot was written with.
    pub schema: u64,
    /// Experiment-wide metadata (e.g. the backend used).
    pub meta: Vec<(String, Value)>,
    /// The measurement rows.
    pub rows: Vec<Row>,
}

impl Snapshot {
    /// A fresh snapshot at the current [`SCHEMA_VERSION`].
    pub fn new(bench: &str) -> Self {
        Snapshot {
            bench: bench.to_string(),
            schema: SCHEMA_VERSION,
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds an experiment-wide metadata field.
    pub fn meta(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Serializes in the committed `BENCH_*.json` layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"bench\": \"{}\",\n  \"schema\": {},\n",
            self.bench, self.schema
        );
        for (key, value) in &self.meta {
            let _ = write!(out, "  \"{key}\": ");
            value.write_json(&mut out);
            out.push_str(",\n");
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (j, (key, value)) in row.iter().enumerate() {
                let _ = write!(out, "\"{key}\": ");
                value.write_json(&mut out);
                if j + 1 < row.len() {
                    out.push_str(", ");
                }
            }
            out.push('}');
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the snapshot to `path` (and says so on stdout).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json())
            .unwrap_or_else(|e| panic!("cannot write snapshot {path}: {e}"));
        println!("snapshot written to {path}");
    }

    /// Parses a snapshot (tolerantly: unknown top-level fields become
    /// [`Snapshot::meta`], a missing `schema` reads as version 1 — the
    /// layout used before the field existed).
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let json = Json::parse(text)?;
        let Json::Obj(fields) = json else {
            return Err("snapshot root is not an object".to_string());
        };
        let mut snapshot = Snapshot {
            bench: String::new(),
            schema: 1,
            meta: Vec::new(),
            rows: Vec::new(),
        };
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("bench", Json::Str(s)) => snapshot.bench = s,
                ("schema", Json::Num(x)) => snapshot.schema = x as u64,
                ("rows", Json::Arr(items)) => {
                    for item in items {
                        let Json::Obj(fields) = item else {
                            return Err("snapshot row is not an object".to_string());
                        };
                        let mut row = Row::new();
                        for (k, v) in fields {
                            row.push((k, v.into_value()?));
                        }
                        snapshot.rows.push(row);
                    }
                }
                (_, v) => snapshot.meta.push((key, v.into_value()?)),
            }
        }
        if snapshot.bench.is_empty() {
            return Err("snapshot has no \"bench\" field".to_string());
        }
        Ok(snapshot)
    }

    /// Reads and parses a committed snapshot from disk.
    pub fn read(path: &str) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Snapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Distinct numeric values of `key` across the rows, in first-seen
    /// order — how `--check` re-derives the committed measurement grid.
    pub fn distinct(&self, key: &str) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for row in &self.rows {
            if let Some(x) = get(row, key).and_then(Value::as_num) {
                let x = x as usize;
                if !out.contains(&x) {
                    out.push(x);
                }
            }
        }
        out
    }
}

/// The verdict of one `--check` comparison.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Human-readable failure lines (empty means the gate passes).
    pub failures: Vec<String>,
    /// How many `(row, ratio key)` pairs were compared.
    pub compared: usize,
}

impl CheckOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints the verdict and returns the process exit code (0 or 1).
    pub fn report(&self, bench: &str) -> i32 {
        if self.passed() {
            println!(
                "--check PASS: {} paired ratio(s) of '{bench}' within {CHECK_TOLERANCE}x \
                 of the committed snapshot",
                self.compared
            );
            0
        } else {
            for line in &self.failures {
                println!("--check FAIL: {line}");
            }
            println!(
                "--check FAIL: {}/{} comparison(s) regressed more than {CHECK_TOLERANCE}x \
                 vs the committed '{bench}' snapshot",
                self.failures.len(),
                self.compared
            );
            1
        }
    }
}

/// Compares the paired-ratio columns of a fresh re-run against the
/// committed snapshot.
///
/// Rows are matched on `id_keys` (all must be equal); for each matched row
/// every `ratio_keys` column must satisfy `fresh >= committed /`
/// [`CHECK_TOLERANCE`].  A committed row with no matching fresh row is a
/// failure (the re-run must cover the committed grid); extra fresh rows are
/// ignored.
pub fn check_ratios(
    committed: &Snapshot,
    fresh: &Snapshot,
    id_keys: &[&str],
    ratio_keys: &[&str],
) -> CheckOutcome {
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for crow in &committed.rows {
        let ident = |row: &Row| {
            id_keys
                .iter()
                .map(|k| {
                    get(row, k)
                        .map(|v| match v {
                            Value::Num(x) => format!("{k}={x}"),
                            Value::Str(s) => format!("{k}={s}"),
                        })
                        .unwrap_or_else(|| format!("{k}=?"))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let Some(frow) = fresh
            .rows
            .iter()
            .find(|f| id_keys.iter().all(|k| get(f, k) == get(crow, k)))
        else {
            failures.push(format!("no fresh row matching [{}]", ident(crow)));
            continue;
        };
        for key in ratio_keys {
            let (Some(was), Some(now)) = (
                get(crow, key).and_then(Value::as_num),
                get(frow, key).and_then(Value::as_num),
            ) else {
                // A ratio column absent from the committed snapshot (older
                // schema) is not comparable — skip, don't fail.
                continue;
            };
            compared += 1;
            if now < was / CHECK_TOLERANCE {
                failures.push(format!(
                    "[{}] {key} regressed {was:.3} -> {now:.3} (more than \
                     {CHECK_TOLERANCE}x)",
                    ident(crow)
                ));
            }
        }
    }
    CheckOutcome { failures, compared }
}

/// Pulls a `--check <path>` pair out of a raw argument list, returning the
/// path and the remaining positional arguments.
pub fn split_check_arg(args: Vec<String>) -> (Option<String>, Vec<String>) {
    let mut check = None;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--check" {
            check = Some(
                iter.next()
                    .unwrap_or_else(|| panic!("--check needs a path to a committed snapshot")),
            );
        } else {
            rest.push(arg);
        }
    }
    (check, rest)
}

// ---------------------------------------------------------------------------
// A minimal JSON reader (the snapshots only use objects, arrays, strings
// and numbers; no registry crates are available in this environment).
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn into_value(self) -> Result<Value, String> {
        match self {
            Json::Num(x) => Ok(Value::Num(x)),
            Json::Str(s) => Ok(Value::Str(s)),
            other => Err(format!("expected a flat value, found {other:?}")),
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = Json::parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = Json::parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        other => return Err(format!("expected ',' or '}}', found {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(Json::parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => return Err(format!("expected ',' or ']', found {other:?}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(_) => {
                let start = *pos;
                while bytes.get(*pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    *pos += 1;
                }
                let lit = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
                lit.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("not a number at byte {start}: {lit:?}"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            want as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b == b'\\' {
            return Err("escape sequences are not used in snapshots".to_string());
        }
        if b == b'"' {
            let s = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid utf-8 in string".to_string())?
                .to_string();
            *pos += 1;
            return Ok(s);
        }
        *pos += 1;
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new("demo").meta("backend", "alg6");
        s.rows.push(row([
            ("payload", "String".into()),
            ("n", 1000usize.into()),
            ("speedup", 1.5f64.into()),
        ]));
        s.rows.push(row([
            ("payload", "u64".into()),
            ("n", 1000usize.into()),
            ("speedup", 0.98f64.into()),
        ]));
        s
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let parsed = Snapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parses_the_pre_schema_layout() {
        // The layout committed before the schema field existed.
        let text = "{\n  \"bench\": \"exchange\",\n  \"rows\": [\n    \
                    {\"payload\": \"String\", \"n\": 1000000, \"speedup\": 1.0825}\n  ]\n}\n";
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.bench, "exchange");
        assert_eq!(s.schema, 1, "missing schema reads as version 1");
        assert_eq!(
            get(&s.rows[0], "speedup").and_then(Value::as_num),
            Some(1.0825)
        );
        assert_eq!(s.distinct("n"), vec![1_000_000]);
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let committed = sample();
        let mut fresh = sample();
        // Halving exactly meets the 2x tolerance (>= committed / 2 passes).
        fresh.rows[0][2].1 = Value::Num(0.75);
        let outcome = check_ratios(&committed, &fresh, &["payload", "n"], &["speedup"]);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.compared, 2);
        // Beyond 2x fails and names the row.
        fresh.rows[0][2].1 = Value::Num(0.74);
        let outcome = check_ratios(&committed, &fresh, &["payload", "n"], &["speedup"]);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("payload=String"));
    }

    #[test]
    fn check_requires_the_committed_grid_to_be_covered() {
        let committed = sample();
        let mut fresh = sample();
        fresh.rows.remove(1);
        let outcome = check_ratios(&committed, &fresh, &["payload", "n"], &["speedup"]);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("no fresh row"));
    }

    #[test]
    fn missing_ratio_columns_are_skipped_not_failed() {
        let mut committed = sample();
        for r in &mut committed.rows {
            r.retain(|(k, _)| k != "speedup");
        }
        let fresh = sample();
        let outcome = check_ratios(&committed, &fresh, &["payload", "n"], &["speedup"]);
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 0);
    }

    #[test]
    fn split_check_arg_extracts_the_flag_anywhere() {
        let (check, rest) = split_check_arg(vec![
            "1000".to_string(),
            "--check".to_string(),
            "BENCH_x.json".to_string(),
            "8".to_string(),
        ]);
        assert_eq!(check.as_deref(), Some("BENCH_x.json"));
        assert_eq!(rest, vec!["1000".to_string(), "8".to_string()]);
    }

    #[test]
    fn committed_snapshots_in_the_repo_parse() {
        // Guard the real files: if a hand edit breaks them, fail here, not
        // in CI's --check step.
        for name in [
            "exchange", "resident", "fused", "service", "shuffle", "darts",
        ] {
            let path = format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                let snap = Snapshot::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(snap.bench, name);
                assert!(!snap.rows.is_empty());
            }
        }
    }
}
