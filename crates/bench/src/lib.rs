//! # cgp-bench — experiment harness
//!
//! One module per experiment of EXPERIMENTS.md / DESIGN.md, each returning
//! structured rows that the `exp_*` binaries print as tables and the
//! Criterion benches re-measure with statistical rigour.  The experiments
//! reproduce every quantitative claim of the paper:
//!
//! * **E1** (§1): cost per item of the sequential permutation and the share
//!   attributable to memory traffic.
//! * **E2** (§3): uniform random numbers consumed per hypergeometric sample
//!   (average and worst case).
//! * **E3** (§6): the scaling table — wall-clock time of the parallel
//!   permutation versus the sequential reference for the paper's processor
//!   counts, including the parallel overhead factor.
//! * **E4** (Theorem 2): cost of the four matrix-sampling algorithms as a
//!   function of `p`.
//! * **E5** (Theorem 1): exhaustive uniformity check of the full pipeline.
//! * **E6** (§6, outlook): the crossover between matrix-sampling cost and
//!   data-exchange cost as `n` varies for fixed `p`.
//! * **E7** (§1): the three-criteria comparison against the baselines.
//! * **E8** (Theorem 1, memory): the clone-based exchange of the original
//!   port versus the current move-based engine, for heap-heavy and `Copy`
//!   payloads — snapshotted to `BENCH_exchange.json` by `exp_exchange`.
//! * **E9**: per-call machine spawn versus the resident worker pool —
//!   snapshotted to `BENCH_resident.json` by `exp_resident`.
//! * **E10**: the staged two-job pipeline (matrix on its own machine, then
//!   the exchange) versus the fused single-job pipeline, one-shot and
//!   session — snapshotted to `BENCH_fused.json` by `exp_fused`; the
//!   [`staged`] module keeps the pre-fusion engine verbatim as the
//!   baseline and equivalence witness.
//! * **E11**: aggregate throughput of the multi-tenant
//!   `PermutationService` — concurrent clients × fleet sizes, contrasted
//!   against the same clients serializing on a single session —
//!   snapshotted to `BENCH_service.json` by `exp_service`.
//! * **E12**: the local-shuffle engine crossover — Fisher–Yates versus the
//!   bucketed scatter shuffle versus `Auto`, raw single-thread shuffles
//!   across a size grid straddling `AUTO_CROSSOVER_BYTES` plus full
//!   resident-session permutations — snapshotted to `BENCH_shuffle.json`
//!   by `exp_shuffle`.
//! * **E13**: the transport substrate overhead — the full session pipeline
//!   on the in-process channel fabric versus child-process mailboxes over
//!   Unix domain sockets, across an `(n, p)` grid; both substrates compute
//!   the byte-identical permutation, so the pairs time pure transport
//!   cost — snapshotted to `BENCH_transport.json` by `exp_transport`.
//!
//! The `BENCH_*.json` layout (and the `--check` perf-regression gate every
//! snapshot binary exposes to CI) lives in [`snapshot`].

pub mod experiments;
pub mod snapshot;
pub mod staged;
pub mod table;
pub mod workload;

pub use table::Table;
