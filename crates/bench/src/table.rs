//! Minimal fixed-width table printer for the experiment binaries.

/// A simple right-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; its length must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has wrong number of cells"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["p", "time"]);
        t.row(vec!["1", "137.0"]).row(vec!["48", "53.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('p') && lines[0].contains("time"));
        assert!(lines[2].contains("137.0"));
        assert!(lines[3].contains("53.2"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong number of cells")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["1"]);
    }
}
