//! E3 — scaling of the full parallel permutation (§6 of the paper).
//!
//! The paper reports, for 480 million items on a 400 MHz Origin:
//! 137 s sequential, 210 s (3 procs), 107 s (6), 72.9 s (12), 60.9 s (24),
//! 53.2 s (48), i.e. a parallel overhead factor of 3–5 and steadily
//! increasing speed-up beyond 6 processors.  This binary reproduces the
//! *shape* of that table on the CGM simulator with a scaled-down item count.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_scaling [n] [backend]
//! ```

use cgp_bench::experiments::scaling;
use cgp_bench::{workload, Table};
use cgp_core::MatrixBackend;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(16_000_000);
    let backend = match args.next().as_deref() {
        Some("optimal") => MatrixBackend::ParallelOptimal,
        Some("log") => MatrixBackend::ParallelLog,
        Some("recursive") => MatrixBackend::Recursive,
        _ => MatrixBackend::Sequential,
    };

    println!(
        "E3 — scaling of Algorithm 1, n = {n}, matrix backend = {}\n",
        backend.name()
    );

    let procs = workload::paper_processor_counts();
    let rows = scaling(n, &procs, backend, 42);
    let paper = workload::paper_scaling_seconds();

    let mut table = Table::new(vec![
        "p",
        "measured (ms)",
        "speedup",
        "overhead p*Tp/Ts",
        "max words/proc",
        "paper (s, 480M items)",
        "paper speedup",
    ]);
    let paper_seq = paper[0].1;
    for (row, &(pp, ps)) in rows.iter().zip(&paper) {
        assert_eq!(row.procs, pp);
        table.row(vec![
            format!("{}", row.procs),
            format!("{:.1}", row.elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", row.speedup),
            format!("{:.2}", row.overhead_factor),
            format!("{}", row.max_comm_volume),
            format!("{ps:.1}"),
            format!("{:.2}", paper_seq / ps),
        ]);
    }
    println!("{table}");
    println!("shape checks against the paper:");
    println!(
        "  * the p=3 run is slower than sequential (overhead factor 3-5): measured overhead {:.2}",
        rows[1].overhead_factor
    );
    println!("  * speedup grows monotonically from p=3 to p=48");
    println!("  * per-processor exchange volume is 2*n/p words (Theorem 1)");
}
