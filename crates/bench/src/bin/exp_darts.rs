//! E14 — the darts-vs-Gustedt engine crossover.
//!
//! Races the compare-exchange dart engine ([`cgp_core::Algorithm::Darts`])
//! against the Gustedt exchange pipeline on resident sessions over an
//! `n × p × target_factor` grid, in two scopes — index sampling
//! (`sample_permutation_into`, the dart engine's native mode) and 32-byte
//! payload permutation (`permute_into`) — and writes a machine-readable
//! snapshot to `BENCH_darts.json` so the engine crossover can be tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_darts [n_csv] [p_csv] [factor_csv] [out.json]
//! cargo run --release -p cgp-bench --bin exp_darts -- --check BENCH_darts.json
//! ```
//!
//! Defaults: `n ∈ {65536, 1e6, 4e6}`, `p ∈ {1, 4}`,
//! `target_factor ∈ {2, 4}`.  With `--check <committed.json>` the
//! experiment re-runs at the committed grid and exits 1 if any paired
//! `gustedt / darts` ratio dropped by more than the shared tolerance —
//! i.e. the dart engine regressed relative to the pipeline at some grid
//! point (see `cgp_bench::snapshot`).
//!
//! The ratios are honest about the host: on a box with one hardware
//! thread, `p > 1` buys neither engine real parallelism — the darts
//! barriers and CAS traffic are pure overhead there, and the grid records
//! exactly where that leaves each engine.  Re-measure on a multi-core
//! host before generalising the crossover.

use cgp_bench::experiments::{darts_crossover, DartsRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;
use cgp_core::DEFAULT_TARGET_FACTOR;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_snapshot(rows: &[DartsRow]) -> Snapshot {
    let mut snap = Snapshot::new("darts")
        .meta("payload_index", "u64")
        .meta("payload_items", "[u64; 4]")
        .meta("default_target_factor", DEFAULT_TARGET_FACTOR as usize);
    for r in rows {
        snap.rows.push(snapshot::row([
            ("scope", r.scope.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("target_factor", (r.target_factor as usize).into()),
            ("gustedt_ns", r.gustedt.as_nanos().into()),
            ("darts_ns", r.darts.as_nanos().into()),
            ("darts_vs_gustedt", r.darts_speedup().into()),
        ]));
    }
    snap
}

/// Distinct `n` values across all rows (both scopes run the same grid).
fn committed_ns(snap: &Snapshot) -> Vec<usize> {
    snap.distinct("n")
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // Parse the committed snapshot once: grid source here, comparison
    // baseline below (never re-read after the fresh write), and the
    // default output moves aside so the committed file survives.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (ns, ps, factors, out_path);
    if let Some(committed) = &committed {
        ns = committed_ns(committed);
        ps = committed.distinct("procs");
        factors = committed
            .distinct("target_factor")
            .into_iter()
            .map(|f| f as u32)
            .collect::<Vec<u32>>();
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_darts.json".into());
    } else {
        ns = parse_csv(args.first(), &[65_536, 1_000_000, 4_000_000]);
        ps = parse_csv(args.get(1), &[1, 4]);
        factors = parse_csv(args.get(2), &[2, 4])
            .into_iter()
            .map(|f| f as u32)
            .collect();
        out_path = args
            .get(3)
            .cloned()
            .unwrap_or_else(|| "BENCH_darts.json".into());
    }

    println!(
        "E14 — darts vs Gustedt crossover, n ∈ {ns:?}, p ∈ {ps:?}, \
         target_factor ∈ {factors:?}\n"
    );
    let rows = darts_crossover(&ns, &ps, &factors, 42);

    let mut table = Table::new(vec![
        "scope",
        "p",
        "n",
        "factor",
        "gustedt (ms)",
        "darts (ms)",
        "darts vs gustedt",
    ]);
    for r in &rows {
        table.row(vec![
            r.scope.to_string(),
            r.procs.to_string(),
            r.n.to_string(),
            r.target_factor.to_string(),
            format!("{:.3}", r.gustedt.as_secs_f64() * 1e3),
            format!("{:.3}", r.darts.as_secs_f64() * 1e3),
            format!("{:.2}x", r.darts_speedup()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    // Make the crossover (or single-engine dominance) explicit in the CI
    // log: which engine won each grid point, and by how much.
    for r in &rows {
        let winner = if r.darts_speedup() >= 1.0 {
            "darts"
        } else {
            "gustedt"
        };
        println!(
            "{} p = {}, n = {}, factor {}: {winner} wins ({:.2}x darts vs gustedt)",
            r.scope,
            r.procs,
            r.n,
            r.target_factor,
            r.darts_speedup(),
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["scope", "n", "procs", "target_factor"],
            &["darts_vs_gustedt"],
        );
        std::process::exit(outcome.report("darts"));
    }
}
