//! E4 — cost of sampling the communication matrix (Theorem 2).
//!
//! Sequential sampling costs `O(p²)` total; Algorithm 5 costs `Θ(p log p)`
//! per processor; Algorithm 6 costs `Θ(p)` per processor and `Θ(p²)` total.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_matrix [max_p] [m]
//! ```

use cgp_bench::experiments::matrix_cost;
use cgp_bench::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let m: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let mut procs = vec![4usize, 8, 16, 32, 64, 128, 256];
    procs.retain(|&p| p <= max_p);

    println!("E4 — cost of matrix sampling (equal blocks of m = {m})\n");
    let rows = matrix_cost(&procs, m, 11);

    let mut table = Table::new(vec![
        "backend",
        "p",
        "time (us)",
        "uniform draws",
        "draws / p^2",
        "max words/proc",
        "words/proc / p",
        "total words",
    ]);
    for r in &rows {
        let p2 = (r.procs * r.procs) as f64;
        table.row(vec![
            r.backend.name().to_string(),
            format!("{}", r.procs),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e6),
            r.draws.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            r.draws
                .map(|d| format!("{:.2}", d as f64 / p2))
                .unwrap_or_else(|| "-".into()),
            r.max_comm_volume
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            r.max_comm_volume
                .map(|v| format!("{:.2}", v as f64 / r.procs as f64))
                .unwrap_or_else(|| "-".into()),
            r.total_words
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{table}");
    println!("expected shapes (Theorem 2 / Propositions 7-9):");
    println!("  * sequential / recursive: draws scale with p^2 (constant 'draws / p^2' column)");
    println!(
        "  * Algorithm 5: max words/proc grows like p*log2(p) ('words/proc / p' grows with log p)"
    );
    println!(
        "  * Algorithm 6: max words/proc grows linearly in p ('words/proc / p' stays bounded)"
    );
}
