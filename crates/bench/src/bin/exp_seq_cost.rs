//! E1 — cost per item of the sequential random permutation (§1 of the paper).
//!
//! The paper reports 60–100 clock cycles per `long int` on a 300 MHz Sparc /
//! 800 MHz Pentium III and attributes 33 %–80 % of the wall-clock time to the
//! memory bottleneck.  This binary reports the same quantities for the host
//! machine.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_seq_cost [max_n]
//! ```

use cgp_bench::experiments::seq_cost;
use cgp_bench::Table;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16_000_000);

    let mut sizes = vec![
        1_000_000usize,
        4_000_000,
        8_000_000,
        16_000_000,
        32_000_000,
        64_000_000,
    ];
    sizes.retain(|&n| n <= max_n);
    if sizes.is_empty() {
        sizes.push(max_n.max(1));
    }

    println!("E1 — sequential Fisher-Yates cost per item (paper §1: 60-100 cycles/item,");
    println!("     33%-80% of the time attributable to memory traffic)\n");

    let rows = seq_cost(&sizes, 42);
    let mut table = Table::new(vec![
        "n",
        "shuffle ns/item",
        "cycles/item @1GHz",
        "cycles/item @3GHz",
        "seq pass ns/item",
        "gather ns/item",
        "memory share",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{}", r.n),
            format!("{:.2}", r.shuffle_ns_per_item),
            format!("{:.0}", r.cycles_per_item(1.0)),
            format!("{:.0}", r.cycles_per_item(3.0)),
            format!("{:.2}", r.sequential_pass_ns_per_item),
            format!("{:.2}", r.random_gather_ns_per_item),
            format!("{:.0}%", r.memory_share() * 100.0),
        ]);
    }
    println!("{table}");
    println!("(the paper's machines were 0.3-0.8 GHz; on a modern core the same");
    println!(" operation takes fewer wall-clock ns but a comparable cycle count,");
    println!(" and the memory-bound share of the random-access pattern remains.)");
}
