//! E8 — clone-based vs move-based data exchange.
//!
//! Measures the wall-clock time of the full parallel permutation with the
//! seed's clone-based exchange (`block[a..b].to_vec()` + `extend`) against
//! the current move-based engine (tail drains + `append`, `T: Send` only),
//! and writes a machine-readable snapshot to `BENCH_exchange.json` so the
//! clone-vs-move trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_exchange [n] [p] [out.json]
//! cargo run --release -p cgp-bench --bin exp_exchange -- --check BENCH_exchange.json
//! ```
//!
//! With `--check <committed.json>` the experiment re-runs at the committed
//! grid and exits 1 if any paired `speedup` ratio regressed by more than
//! the shared tolerance (see `cgp_bench::snapshot`).

use cgp_bench::experiments::{exchange, ExchangeRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;

fn to_snapshot(rows: &[ExchangeRow]) -> Snapshot {
    let mut snap = Snapshot::new("exchange");
    for r in rows {
        snap.rows.push(snapshot::row([
            ("payload", r.payload.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("clone_ns", r.clone_elapsed.as_nanos().into()),
            ("move_ns", r.move_elapsed.as_nanos().into()),
            ("speedup", r.speedup().into()),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // Parse the committed snapshot once: grid source here, comparison
    // baseline below (never re-read after the fresh write), and the
    // default output moves aside so the committed file survives.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (n, p, out_path);
    if let Some(committed) = &committed {
        n = committed
            .distinct("n")
            .first()
            .copied()
            .unwrap_or(1_000_000);
        p = committed.distinct("procs").first().copied().unwrap_or(8);
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_exchange.json".into());
    } else {
        n = args
            .first()
            .and_then(|a| a.parse().ok())
            .unwrap_or(1_000_000);
        p = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
        out_path = args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "BENCH_exchange.json".into());
    }

    println!("E8 — clone-based vs move-based exchange, n = {n}, p = {p}\n");
    let rows = exchange(n, p, 42);

    let mut table = Table::new(vec![
        "payload",
        "clone-based (ms)",
        "move-based (ms)",
        "speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.payload.to_string(),
            format!("{:.1}", r.clone_elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", r.move_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    let string_row = &rows[0];
    if string_row.speedup() > 1.0 {
        println!(
            "move-based exchange is {:.2}x faster than the clone-based seed \
             path for String payloads",
            string_row.speedup()
        );
    } else {
        println!(
            "WARNING: move-based path not faster ({:.2}x) — investigate before \
             relying on this snapshot",
            string_row.speedup()
        );
    }

    if let Some(committed) = &committed {
        let outcome =
            snapshot::check_ratios(committed, &fresh, &["payload", "n", "procs"], &["speedup"]);
        std::process::exit(outcome.report("exchange"));
    }
}
