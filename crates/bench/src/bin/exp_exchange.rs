//! E8 — clone-based vs move-based data exchange.
//!
//! Measures the wall-clock time of the full parallel permutation with the
//! seed's clone-based exchange (`block[a..b].to_vec()` + `extend`) against
//! the current move-based engine (tail drains + `append`, `T: Send` only),
//! and writes a machine-readable snapshot to `BENCH_exchange.json` so the
//! clone-vs-move trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_exchange [n] [p] [out.json]
//! ```

use std::time::Duration;

use cgp_bench::experiments::{exchange, ExchangeRow};
use cgp_bench::Table;

fn json_escape_free(s: &str) -> &str {
    // Payload names and numbers only — nothing that needs escaping.
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn to_json(rows: &[ExchangeRow]) -> String {
    let ns = |d: Duration| d.as_nanos();
    let mut out = String::from("{\n  \"bench\": \"exchange\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload\": \"{}\", \"n\": {}, \"procs\": {}, \
             \"clone_ns\": {}, \"move_ns\": {}, \"speedup\": {:.4}}}{}\n",
            json_escape_free(r.payload),
            r.n,
            r.procs,
            ns(r.clone_elapsed),
            ns(r.move_elapsed),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let out_path = args.next().unwrap_or_else(|| "BENCH_exchange.json".into());

    println!("E8 — clone-based vs move-based exchange, n = {n}, p = {p}\n");
    let rows = exchange(n, p, 42);

    let mut table = Table::new(vec![
        "payload",
        "clone-based (ms)",
        "move-based (ms)",
        "speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.payload.to_string(),
            format!("{:.1}", r.clone_elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", r.move_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{table}");

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("snapshot written to {out_path}");

    let string_row = &rows[0];
    if string_row.speedup() > 1.0 {
        println!(
            "move-based exchange is {:.2}x faster than the clone-based seed \
             path for String payloads",
            string_row.speedup()
        );
    } else {
        println!(
            "WARNING: move-based path not faster ({:.2}x) — investigate before \
             relying on this snapshot",
            string_row.speedup()
        );
    }
}
