//! E2 — uniform random numbers per hypergeometric sample (§3 of the paper).
//!
//! The paper, citing Zechner's sampler, reports fewer than 1.5 uniforms per
//! sample on average and at most 10 in the worst case over its experiments.
//! This binary measures the same statistic for the three samplers in
//! `cgp-hypergeom` over a representative parameter grid.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_rng_draws [samples_per_point]
//! ```

use cgp_bench::experiments::{rng_draws, rng_draws_aggregate};
use cgp_bench::Table;
use cgp_hypergeom::SamplerKind;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);

    println!("E2 — uniform draws per hypergeometric sample (paper §3: avg < 1.5, worst <= 10)\n");
    let rows = rng_draws(samples, 7);

    let mut table = Table::new(vec!["sampler", "t", "w", "b", "avg draws", "max draws"]);
    for r in &rows {
        table.row(vec![
            format!("{:?}", r.sampler),
            format!("{}", r.params.0),
            format!("{}", r.params.1),
            format!("{}", r.params.2),
            format!("{:.3}", r.avg_draws),
            format!("{}", r.max_draws),
        ]);
    }
    println!("{table}");

    println!("aggregates over the grid:");
    let mut agg = Table::new(vec!["sampler", "avg draws", "worst case"]);
    for kind in [
        SamplerKind::Adaptive,
        SamplerKind::Inverse,
        SamplerKind::Hrua,
    ] {
        let (avg, max) = rng_draws_aggregate(&rows, kind);
        agg.row(vec![
            format!("{kind:?}"),
            format!("{avg:.3}"),
            format!("{max}"),
        ]);
    }
    println!("{agg}");
    println!("notes: the inversion sampler uses exactly 1 uniform per draw; the HRUA");
    println!("rejection sampler uses 2 per attempt, so the adaptive average sits between");
    println!("1 and ~2.5 depending on how many grid points are wide enough to need HRUA.");
}
