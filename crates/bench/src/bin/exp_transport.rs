//! E13 — transport substrate overhead (threads vs process).
//!
//! Runs the full Algorithm 1 session pipeline at each `(n, p)` grid point
//! twice — once on the in-process channel fabric
//! ([`cgp_core::TransportKind::Threads`]) and once with every virtual
//! processor's mailbox in a child process over Unix domain sockets
//! ([`cgp_core::TransportKind::Process`]) — and writes a machine-readable
//! snapshot to `BENCH_transport.json` so the inter-process overhead curve
//! can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_transport [n_csv] [p_csv] [out.json]
//! cargo run --release -p cgp-bench --bin exp_transport -- --check BENCH_transport.json
//! ```
//!
//! Defaults: `n ∈ {100_000, 1_000_000}` `u64` items, `p ∈ {2, 4, 8}`.
//! With `--check <committed.json>` the experiment re-runs at the committed
//! grid and exits 1 if any paired `process_vs_threads` ratio regressed by
//! more than the shared tolerance (see `cgp_bench::snapshot`).
//!
//! The overhead is honest by construction: both sessions compute the
//! byte-identical permutation for the seed (the substrate never touches
//! the engine's random streams), so the ratio prices exactly what the
//! process transport adds — wire-coding every envelope and crossing two
//! sockets per hop.  Child spawns happen at session creation, outside the
//! timed region, mirroring how a resident service would run.

use cgp_bench::experiments::{transport_overhead, TransportRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_snapshot(rows: &[TransportRow]) -> Snapshot {
    let mut snap = Snapshot::new("transport").meta("payload", "u64");
    for r in rows {
        snap.rows.push(snapshot::row([
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("threads_ns", r.threads.as_nanos().into()),
            ("process_ns", r.process.as_nanos().into()),
            ("wire_bytes", r.wire_bytes.into()),
            ("process_vs_threads", r.process_vs_threads_paired.into()),
        ]));
    }
    snap
}

fn main() {
    // Must run before anything else: the process transport spawns its
    // mailbox children by re-executing this binary.
    cgp_cgm::transport::process::init();

    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (ns, ps, out_path);
    if let Some(committed) = &committed {
        ns = committed.distinct("n");
        ps = committed.distinct("procs");
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_transport.json".into());
    } else {
        ns = parse_csv(args.first(), &[100_000, 1_000_000]);
        ps = parse_csv(args.get(1), &[2, 4, 8]);
        out_path = args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "BENCH_transport.json".into());
    }

    println!("E13 — transport substrate overhead, n ∈ {ns:?}, p ∈ {ps:?}\n");
    let rows = transport_overhead(&ns, &ps, 42);

    let mut table = Table::new(vec![
        "p",
        "n",
        "threads (ms)",
        "process (ms)",
        "wire (MB/call)",
        "process overhead",
    ]);
    for r in &rows {
        table.row(vec![
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.threads.as_secs_f64() * 1e3),
            format!("{:.3}", r.process.as_secs_f64() * 1e3),
            format!("{:.2}", r.wire_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}x", r.process_overhead()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    for r in &rows {
        println!(
            "p = {}, n = {}: process transport {:.2}x the thread-fabric time \
             ({:.2} MB framed per call)",
            r.procs,
            r.n,
            r.process_overhead(),
            r.wire_bytes as f64 / (1 << 20) as f64,
        );
    }

    if let Some(committed) = &committed {
        let outcome =
            snapshot::check_ratios(committed, &fresh, &["n", "procs"], &["process_vs_threads"]);
        std::process::exit(outcome.report("transport"));
    }
}
