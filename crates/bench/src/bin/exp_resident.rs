//! E9 — per-call machine spawn vs the resident worker pool.
//!
//! Measures the steady-state cost of one permutation when every call spawns
//! a fresh machine (`p` OS threads + the `p²` channel fabric) against a
//! resident [`cgp_core::PermutationSession`] (spawned once, workers parked
//! between calls), and writes a machine-readable snapshot to
//! `BENCH_resident.json` so the amortization trajectory can be tracked
//! across PRs.  Two per-call baselines bracket the comparison: the
//! idiomatic `permute_in_place` (spawns *and* allocates per call — the path
//! a session replaces end to end) and the scratch-warm `permute_into`
//! (isolating the startup share alone).
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_resident [n_csv] [p_csv] [out.json]
//! ```
//!
//! Defaults: `n ∈ {1e4, 1e5, 1e6}`, `p ∈ {2, 4, 8}`.

use std::time::Duration;

use cgp_bench::experiments::{resident, ResidentRow};
use cgp_bench::Table;

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_json(rows: &[ResidentRow]) -> String {
    let ns = |d: Duration| d.as_nanos();
    let mut out = String::from("{\n  \"bench\": \"resident\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"procs\": {}, \"one_shot_ns\": {}, \"spawn_warm_ns\": {}, \
             \"resident_ns\": {}, \"speedup\": {:.4}, \"warm_speedup\": {:.4}}}{}\n",
            r.n,
            r.procs,
            ns(r.one_shot_elapsed),
            ns(r.spawn_warm_elapsed),
            ns(r.resident_elapsed),
            r.speedup(),
            r.warm_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ns = parse_csv(args.next(), &[10_000, 100_000, 1_000_000]);
    let ps = parse_csv(args.next(), &[2, 4, 8]);
    let out_path = args.next().unwrap_or_else(|| "BENCH_resident.json".into());

    println!("E9 — per-call spawn vs resident session, n ∈ {ns:?}, p ∈ {ps:?}\n");
    let rows = resident(&ns, &ps, 42);

    let mut table = Table::new(vec![
        "p",
        "n",
        "one-shot (ms)",
        "spawn+scratch (ms)",
        "resident (ms)",
        "speedup",
        "warm speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.one_shot_elapsed.as_secs_f64() * 1e3),
            format!("{:.3}", r.spawn_warm_elapsed.as_secs_f64() * 1e3),
            format!("{:.3}", r.resident_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}x", r.speedup()),
            format!("{:.2}x", r.warm_speedup()),
        ]);
    }
    println!("{table}");

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("snapshot written to {out_path}");

    // The headline cell of the acceptance criterion: p = 8, n = 1e5 (or the
    // closest measured configuration when run with custom grids).
    let headline = rows
        .iter()
        .filter(|r| r.procs == 8 && r.n == 100_000)
        .chain(rows.iter())
        .next()
        .expect("at least one row");
    if headline.speedup() > 1.0 {
        println!(
            "resident session is {:.2}x faster than the per-call path it replaces \
             at p = {}, n = {} ({:.2}x of that from startup amortization alone)",
            headline.speedup(),
            headline.procs,
            headline.n,
            headline.warm_speedup()
        );
    } else {
        println!(
            "WARNING: resident session not faster ({:.2}x at p = {}, n = {}) — \
             investigate before relying on this snapshot",
            headline.speedup(),
            headline.procs,
            headline.n
        );
    }
}
