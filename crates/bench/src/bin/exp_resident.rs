//! E9 — per-call machine spawn vs the resident worker pool.
//!
//! Measures the steady-state cost of one permutation when every call spawns
//! a fresh machine (`p` OS threads + the `p²` channel fabric) against a
//! resident [`cgp_core::PermutationSession`] (spawned once, workers parked
//! between calls), and writes a machine-readable snapshot to
//! `BENCH_resident.json` so the amortization trajectory can be tracked
//! across PRs.  Two per-call baselines bracket the comparison: the
//! idiomatic `permute_in_place` (spawns *and* allocates per call — the path
//! a session replaces end to end) and the scratch-warm `permute_into`
//! (isolating the startup share alone).
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_resident [n_csv] [p_csv] [out.json]
//! cargo run --release -p cgp-bench --bin exp_resident -- --check BENCH_resident.json
//! ```
//!
//! Defaults: `n ∈ {1e4, 1e5, 1e6}`, `p ∈ {2, 4, 8}`.  With `--check
//! <committed.json>` the experiment re-runs at the committed grid and
//! exits 1 if any paired `speedup`/`warm_speedup` ratio regressed by more
//! than the shared tolerance (see `cgp_bench::snapshot`).

use cgp_bench::experiments::{resident, ResidentRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_snapshot(rows: &[ResidentRow]) -> Snapshot {
    let mut snap = Snapshot::new("resident");
    for r in rows {
        snap.rows.push(snapshot::row([
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("one_shot_ns", r.one_shot_elapsed.as_nanos().into()),
            ("spawn_warm_ns", r.spawn_warm_elapsed.as_nanos().into()),
            ("resident_ns", r.resident_elapsed.as_nanos().into()),
            ("speedup", r.speedup().into()),
            ("warm_speedup", r.warm_speedup().into()),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // Parse the committed snapshot once: grid source here, comparison
    // baseline below (never re-read after the fresh write), and the
    // default output moves aside so the committed file survives.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (ns, ps, out_path);
    if let Some(committed) = &committed {
        ns = committed.distinct("n");
        ps = committed.distinct("procs");
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_resident.json".into());
    } else {
        ns = parse_csv(args.first(), &[10_000, 100_000, 1_000_000]);
        ps = parse_csv(args.get(1), &[2, 4, 8]);
        out_path = args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "BENCH_resident.json".into());
    }

    println!("E9 — per-call spawn vs resident session, n ∈ {ns:?}, p ∈ {ps:?}\n");
    let rows = resident(&ns, &ps, 42);

    let mut table = Table::new(vec![
        "p",
        "n",
        "one-shot (ms)",
        "spawn+scratch (ms)",
        "resident (ms)",
        "speedup",
        "warm speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.one_shot_elapsed.as_secs_f64() * 1e3),
            format!("{:.3}", r.spawn_warm_elapsed.as_secs_f64() * 1e3),
            format!("{:.3}", r.resident_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}x", r.speedup()),
            format!("{:.2}x", r.warm_speedup()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    // The headline cell of the acceptance criterion: p = 8, n = 1e5 (or the
    // closest measured configuration when run with custom grids).
    let headline = rows
        .iter()
        .filter(|r| r.procs == 8 && r.n == 100_000)
        .chain(rows.iter())
        .next()
        .expect("at least one row");
    if headline.speedup() > 1.0 {
        println!(
            "resident session is {:.2}x faster than the per-call path it replaces \
             at p = {}, n = {} ({:.2}x of that from startup amortization alone)",
            headline.speedup(),
            headline.procs,
            headline.n,
            headline.warm_speedup()
        );
    } else {
        println!(
            "WARNING: resident session not faster ({:.2}x at p = {}, n = {}) — \
             investigate before relying on this snapshot",
            headline.speedup(),
            headline.procs,
            headline.n
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["n", "procs"],
            &["speedup", "warm_speedup"],
        );
        std::process::exit(outcome.report("resident"));
    }
}
