//! E11 — aggregate throughput of the multi-tenant permutation service.
//!
//! Measures a population of concurrent clients served by a
//! `PermutationService` fleet (per-machine deques with work stealing and
//! small-job coalescing behind fair-share admission) against the same
//! population **serializing on a single shared session** — the do-nothing
//! alternative a service replaces — and writes a machine-readable snapshot
//! to `BENCH_service.json` so the multi-tenant trajectory can be tracked
//! across PRs.
//!
//! Three scenarios share the snapshot (the `"scenario"` id column):
//! `uniform` sweeps the full `(clients, machines)` grid with an even job
//! split; at the highest concurrency, `skewed` (one tenant submits half of
//! all jobs — the fair-admission stress) and `tiny` (64-item jobs — the
//! coalescing showcase) sweep the fleet sizes.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_service \
//!     [n] [procs] [clients_csv] [machines_csv] [jobs_total] [out.json]
//! cargo run --release -p cgp-bench --bin exp_service -- --check BENCH_service.json
//! ```
//!
//! Defaults: `n = 1024`, `procs = 4`, clients ∈ {1, 4, 16, 64}, machines ∈
//! {1, 2, 4}, 192 jobs per cell.  With `--check <committed.json>` the
//! experiment re-runs at the committed grid and exits 1 if any paired
//! `speedup_vs_serialized` ratio regressed by more than the shared
//! tolerance (see `cgp_bench::snapshot`).

use cgp_bench::experiments::{service, service_scenarios, ServiceRow};
use cgp_bench::snapshot::{self, Snapshot, Value};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn parse_num(arg: Option<&String>, default: usize) -> usize {
    arg.and_then(|a| a.parse().ok()).unwrap_or(default)
}

/// Distinct values of `key` among the committed **uniform** rows — the
/// scenario whose grid parameterizes a re-run (the skewed and tiny grids
/// are derived from it in code).  Pre-scenario snapshots (schema 1, no
/// `"scenario"` column) count as uniform.
fn distinct_uniform(committed: &Snapshot, key: &str) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for row in &committed.rows {
        let uniform = match snapshot::get(row, "scenario") {
            Some(Value::Str(s)) => s == "uniform",
            _ => true,
        };
        if !uniform {
            continue;
        }
        if let Some(x) = snapshot::get(row, key).and_then(Value::as_num) {
            let x = x as usize;
            if !out.contains(&x) {
                out.push(x);
            }
        }
    }
    out
}

fn to_snapshot(rows: &[ServiceRow], jobs_total: usize) -> Snapshot {
    let mut snap = Snapshot::new("service").meta("jobs_total", jobs_total);
    for r in rows {
        snap.rows.push(snapshot::row([
            ("scenario", r.scenario.into()),
            ("clients", r.clients.into()),
            ("machines", r.machines.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("jobs", r.jobs.into()),
            ("service_ns", r.service_elapsed.as_nanos().into()),
            ("serialized_ns", r.serialized_elapsed.as_nanos().into()),
            (
                "throughput_jobs_per_s",
                Value::Num((r.throughput() * 10.0).round() / 10.0),
            ),
            (
                "speedup_vs_serialized",
                Value::Num(r.speedup_vs_serialized()),
            ),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // In --check mode the committed snapshot is parsed once: it supplies
    // the measurement grid here and the comparison baseline below (never
    // re-read, so the fresh write cannot contaminate the comparison), and
    // the default output moves aside so the committed file is not
    // overwritten.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (n, procs, clients_grid, machines_grid, jobs_total, out_path);
    if let Some(committed) = &committed {
        n = distinct_uniform(committed, "n")
            .first()
            .copied()
            .unwrap_or(1024);
        procs = distinct_uniform(committed, "procs")
            .first()
            .copied()
            .unwrap_or(4);
        clients_grid = distinct_uniform(committed, "clients");
        machines_grid = distinct_uniform(committed, "machines");
        jobs_total = committed
            .meta
            .iter()
            .find(|(k, _)| k == "jobs_total")
            .and_then(|(_, v)| v.as_num())
            .unwrap_or(192.0) as usize;
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_service.json".into());
    } else {
        n = parse_num(args.first(), 1024);
        procs = parse_num(args.get(1), 4);
        clients_grid = parse_csv(args.get(2), &[1, 4, 16, 64]);
        machines_grid = parse_csv(args.get(3), &[1, 2, 4]);
        jobs_total = parse_num(args.get(4), 192);
        out_path = args
            .get(5)
            .cloned()
            .unwrap_or_else(|| "BENCH_service.json".into());
    }

    println!(
        "E11 — multi-tenant service vs serialized session, n = {n}, p = {procs}, \
         clients ∈ {clients_grid:?}, machines ∈ {machines_grid:?}, {jobs_total} jobs/cell\n"
    );
    let mut rows = service(n, procs, &clients_grid, &machines_grid, jobs_total, 42);
    // The scheduler-stress scenarios run at the highest concurrency of the
    // grid (where admission fairness and coalescing actually bind).
    let top_clients = clients_grid.iter().copied().max().unwrap_or(1);
    rows.extend(service_scenarios(
        n,
        procs,
        top_clients,
        &machines_grid,
        jobs_total,
        42,
    ));

    let mut table = Table::new(vec![
        "scenario",
        "clients",
        "machines",
        "n",
        "jobs",
        "service (ms)",
        "serialized (ms)",
        "service jobs/s",
        "vs serialized",
    ]);
    for r in &rows {
        table.row(vec![
            r.scenario.to_string(),
            r.clients.to_string(),
            r.machines.to_string(),
            r.n.to_string(),
            r.jobs.to_string(),
            format!("{:.2}", r.service_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", r.serialized_elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", r.throughput()),
            format!("{:.2}x", r.speedup_vs_serialized()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows, jobs_total);
    fresh.write(&out_path);

    // The acceptance cell: at the highest concurrency, aggregate throughput
    // must scale with the fleet size.
    let at = |machines: usize| {
        rows.iter()
            .find(|r| r.scenario == "uniform" && r.clients == top_clients && r.machines == machines)
    };
    let lo = machines_grid.iter().copied().min().unwrap_or(1);
    let hi = machines_grid.iter().copied().max().unwrap_or(1);
    if let (Some(small), Some(large)) = (at(lo), at(hi)) {
        let scaling = large.throughput() / small.throughput().max(1e-12);
        println!(
            "at {top_clients} clients: machines={hi} serves {:.0} jobs/s vs machines={lo} \
             at {:.0} jobs/s ({scaling:.2}x){}",
            large.throughput(),
            small.throughput(),
            if scaling > 1.0 {
                ""
            } else {
                "  <-- fleet scaling NOT observed, investigate"
            }
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["scenario", "clients", "machines", "n", "procs"],
            &["speedup_vs_serialized"],
        );
        std::process::exit(outcome.report("service"));
    }
}
