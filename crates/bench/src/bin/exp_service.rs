//! E11 — aggregate throughput of the multi-tenant permutation service.
//!
//! Measures a population of concurrent clients served by a
//! `PermutationService` fleet (machines × resident pools behind one
//! bounded FIFO queue) against the same population **serializing on a
//! single shared session** — the do-nothing alternative a service
//! replaces — and writes a machine-readable snapshot to
//! `BENCH_service.json` so the multi-tenant trajectory can be tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_service \
//!     [n] [procs] [clients_csv] [machines_csv] [jobs_total] [out.json]
//! cargo run --release -p cgp-bench --bin exp_service -- --check BENCH_service.json
//! ```
//!
//! Defaults: `n = 1024`, `procs = 4`, clients ∈ {1, 4, 16, 64}, machines ∈
//! {1, 2, 4}, 192 jobs per cell.  With `--check <committed.json>` the
//! experiment re-runs at the committed grid and exits 1 if any paired
//! `speedup_vs_serialized` ratio regressed by more than the shared
//! tolerance (see `cgp_bench::snapshot`).

use cgp_bench::experiments::{service, ServiceRow};
use cgp_bench::snapshot::{self, Snapshot, Value};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn parse_num(arg: Option<&String>, default: usize) -> usize {
    arg.and_then(|a| a.parse().ok()).unwrap_or(default)
}

fn to_snapshot(rows: &[ServiceRow], jobs_total: usize) -> Snapshot {
    let mut snap = Snapshot::new("service").meta("jobs_total", jobs_total);
    for r in rows {
        snap.rows.push(snapshot::row([
            ("clients", r.clients.into()),
            ("machines", r.machines.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("jobs", r.jobs.into()),
            ("service_ns", r.service_elapsed.as_nanos().into()),
            ("serialized_ns", r.serialized_elapsed.as_nanos().into()),
            (
                "throughput_jobs_per_s",
                Value::Num((r.throughput() * 10.0).round() / 10.0),
            ),
            (
                "speedup_vs_serialized",
                Value::Num(r.speedup_vs_serialized()),
            ),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // In --check mode the committed snapshot is parsed once: it supplies
    // the measurement grid here and the comparison baseline below (never
    // re-read, so the fresh write cannot contaminate the comparison), and
    // the default output moves aside so the committed file is not
    // overwritten.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (n, procs, clients_grid, machines_grid, jobs_total, out_path);
    if let Some(committed) = &committed {
        n = committed.distinct("n").first().copied().unwrap_or(1024);
        procs = committed.distinct("procs").first().copied().unwrap_or(4);
        clients_grid = committed.distinct("clients");
        machines_grid = committed.distinct("machines");
        jobs_total = committed
            .meta
            .iter()
            .find(|(k, _)| k == "jobs_total")
            .and_then(|(_, v)| v.as_num())
            .unwrap_or(192.0) as usize;
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_service.json".into());
    } else {
        n = parse_num(args.first(), 1024);
        procs = parse_num(args.get(1), 4);
        clients_grid = parse_csv(args.get(2), &[1, 4, 16, 64]);
        machines_grid = parse_csv(args.get(3), &[1, 2, 4]);
        jobs_total = parse_num(args.get(4), 192);
        out_path = args
            .get(5)
            .cloned()
            .unwrap_or_else(|| "BENCH_service.json".into());
    }

    println!(
        "E11 — multi-tenant service vs serialized session, n = {n}, p = {procs}, \
         clients ∈ {clients_grid:?}, machines ∈ {machines_grid:?}, {jobs_total} jobs/cell\n"
    );
    let rows = service(n, procs, &clients_grid, &machines_grid, jobs_total, 42);

    let mut table = Table::new(vec![
        "clients",
        "machines",
        "jobs",
        "service (ms)",
        "serialized (ms)",
        "service jobs/s",
        "vs serialized",
    ]);
    for r in &rows {
        table.row(vec![
            r.clients.to_string(),
            r.machines.to_string(),
            r.jobs.to_string(),
            format!("{:.2}", r.service_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", r.serialized_elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", r.throughput()),
            format!("{:.2}x", r.speedup_vs_serialized()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows, jobs_total);
    fresh.write(&out_path);

    // The acceptance cell: at the highest concurrency, aggregate throughput
    // must scale with the fleet size.
    let top_clients = clients_grid.iter().copied().max().unwrap_or(0);
    let at = |machines: usize| {
        rows.iter()
            .find(|r| r.clients == top_clients && r.machines == machines)
    };
    let lo = machines_grid.iter().copied().min().unwrap_or(1);
    let hi = machines_grid.iter().copied().max().unwrap_or(1);
    if let (Some(small), Some(large)) = (at(lo), at(hi)) {
        let scaling = large.throughput() / small.throughput().max(1e-12);
        println!(
            "at {top_clients} clients: machines={hi} serves {:.0} jobs/s vs machines={lo} \
             at {:.0} jobs/s ({scaling:.2}x){}",
            large.throughput(),
            small.throughput(),
            if scaling > 1.0 {
                ""
            } else {
                "  <-- fleet scaling NOT observed, investigate"
            }
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["clients", "machines", "n", "procs"],
            &["speedup_vs_serialized"],
        );
        std::process::exit(outcome.report("service"));
    }
}
