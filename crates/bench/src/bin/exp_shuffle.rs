//! E12 — the local-shuffle engine crossover (Fisher–Yates vs bucketed
//! scatter vs `Auto`).
//!
//! Measures the three [`cgp_core::LocalShuffle`] engines on the same `u64`
//! payload — raw single-thread shuffles across a size grid and full
//! resident-session permutations at `p = 8` — and writes a
//! machine-readable snapshot to `BENCH_shuffle.json` so the engine
//! crossover can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_shuffle [raw_n_csv] [session_n_csv] [p] [out.json]
//! cargo run --release -p cgp-bench --bin exp_shuffle -- --check BENCH_shuffle.json
//! ```
//!
//! Defaults: raw `n ∈ {1e6, 4e6, 16e6, 64e6}` (8 MB – 512 MB of `u64`,
//! straddling the [`cgp_core::AUTO_CROSSOVER_BYTES`] crossover), session
//! `n ∈ {1e6, 16e6}` at `p = 8`.  With `--check <committed.json>` the
//! experiment re-runs at the committed grid and exits 1 if any paired
//! speedup ratio regressed by more than the shared tolerance (see
//! `cgp_bench::snapshot`).
//!
//! The ratios are honest about cache geometry: on a machine whose
//! last-level cache holds the whole payload, the bucketed engine's extra
//! scatter pass is pure overhead (`bucketed_vs_fy < 1`) and `Auto`
//! resolves to Fisher–Yates (`auto_vs_fy ≈ 1`).  The wins live past the
//! crossover, where the scatter turns random DRAM accesses into streaming
//! ones.

use cgp_bench::experiments::{shuffle_crossover, ShuffleRow};
use cgp_bench::snapshot::{self, Snapshot, Value};
use cgp_bench::Table;
use cgp_core::{AUTO_CROSSOVER_BYTES, AUTO_MAX_ITEM_BYTES};

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

/// Distinct `n` values of the rows with the given scope, in first-seen
/// order — the committed grid is re-derived per scope because the raw and
/// session grids differ.
fn scoped_ns(snap: &Snapshot, scope: &str) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for row in &snap.rows {
        if snapshot::get(row, "scope") != Some(&Value::Str(scope.to_string())) {
            continue;
        }
        if let Some(n) = snapshot::get(row, "n").and_then(Value::as_num) {
            let n = n as usize;
            if !out.contains(&n) {
                out.push(n);
            }
        }
    }
    out
}

fn to_snapshot(rows: &[ShuffleRow]) -> Snapshot {
    let mut snap = Snapshot::new("shuffle")
        .meta("payload", "u64")
        .meta("auto_crossover_bytes", AUTO_CROSSOVER_BYTES)
        .meta("auto_max_item_bytes", AUTO_MAX_ITEM_BYTES);
    for r in rows {
        snap.rows.push(snapshot::row([
            ("scope", r.scope.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("fisher_yates_ns", r.fisher_yates.as_nanos().into()),
            ("bucketed_ns", r.bucketed.as_nanos().into()),
            ("auto_ns", r.auto.as_nanos().into()),
            ("bucketed_vs_fy", r.bucketed_speedup().into()),
            ("auto_vs_fy", r.auto_speedup().into()),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // Parse the committed snapshot once: grid source here, comparison
    // baseline below (never re-read after the fresh write), and the
    // default output moves aside so the committed file survives.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (raw_ns, session_ns, p, out_path);
    if let Some(committed) = &committed {
        raw_ns = scoped_ns(committed, "raw");
        session_ns = scoped_ns(committed, "session");
        p = committed
            .distinct("procs")
            .into_iter()
            .find(|&p| p > 1)
            .unwrap_or(8);
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_shuffle.json".into());
    } else {
        raw_ns = parse_csv(
            args.first(),
            &[1_000_000, 4_000_000, 16_000_000, 64_000_000],
        );
        session_ns = parse_csv(args.get(1), &[1_000_000, 16_000_000]);
        p = args
            .get(2)
            .map(|s| s.parse().expect("p must be a number"))
            .unwrap_or(8);
        out_path = args
            .get(3)
            .cloned()
            .unwrap_or_else(|| "BENCH_shuffle.json".into());
    }

    println!(
        "E12 — local-shuffle engine crossover, raw n ∈ {raw_ns:?}, \
         session n ∈ {session_ns:?} at p = {p}\n"
    );
    let rows = shuffle_crossover(&raw_ns, &session_ns, p, 42);

    let mut table = Table::new(vec![
        "scope",
        "p",
        "n",
        "fisher-yates (ms)",
        "bucketed (ms)",
        "auto (ms)",
        "bucketed vs fy",
        "auto vs fy",
    ]);
    for r in &rows {
        table.row(vec![
            r.scope.to_string(),
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.fisher_yates.as_secs_f64() * 1e3),
            format!("{:.3}", r.bucketed.as_secs_f64() * 1e3),
            format!("{:.3}", r.auto.as_secs_f64() * 1e3),
            format!("{:.2}x", r.bucketed_speedup()),
            format!("{:.2}x", r.auto_speedup()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    // `Auto` must never lose noticeably to Fisher–Yates (below the
    // crossover it *is* Fisher–Yates), and past the crossover the bucketed
    // engine should be winning.  Both statements are printed per row so
    // the crossover is visible in the CI log.
    for r in &rows {
        let bytes = r.n * std::mem::size_of::<u64>();
        let side = if bytes > AUTO_CROSSOVER_BYTES {
            "past crossover"
        } else {
            "below crossover"
        };
        println!(
            "{} p = {}, n = {} ({:>4} MB, {side}): bucketed {:.2}x, auto {:.2}x vs fisher-yates",
            r.scope,
            r.procs,
            r.n,
            bytes / (1 << 20),
            r.bucketed_speedup(),
            r.auto_speedup(),
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["scope", "n", "procs"],
            &["bucketed_vs_fy", "auto_vs_fy"],
        );
        std::process::exit(outcome.report("shuffle"));
    }
}
