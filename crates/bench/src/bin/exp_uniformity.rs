//! E5 — uniformity of the full pipeline (Theorem 1).
//!
//! Exhaustive chi-square test over all n! permutations for the sequential
//! reference, Algorithm 1 with every matrix backend, and the non-uniform
//! fixed-matrix baseline as a contrast.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_uniformity [n] [per_bucket] [p]
//! ```

use cgp_bench::experiments::uniformity;
use cgp_bench::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_bucket: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    println!("E5 — exhaustive uniformity over all {n}! permutations ({per_bucket} expected samples per outcome, p = {p})\n");
    let rows = uniformity(n, per_bucket, p);

    let mut table = Table::new(vec![
        "generator",
        "samples",
        "chi^2",
        "dof",
        "p-value",
        "all n! seen",
        "verdict at 1%",
    ]);
    for r in &rows {
        table.row(vec![
            r.generator.clone(),
            format!("{}", r.samples),
            format!("{:.1}", r.chi_square),
            format!("{}", r.dof),
            format!("{:.4}", r.p_value),
            format!("{}", r.covers_all),
            if r.p_value >= 0.01 {
                "consistent with uniform".into()
            } else {
                "NOT uniform".to_string()
            },
        ]);
    }
    println!("{table}");
    println!("Theorem 1 predicts every Algorithm 1 row to be consistent with uniformity;");
    println!("the fixed-matrix baseline row (if present) must fail decisively.");
}
