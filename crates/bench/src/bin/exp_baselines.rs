//! E7 — the three-criteria comparison against prior approaches (§1).
//!
//! uniformity / work-optimality / balance: each baseline gives up exactly one
//! of them, Algorithm 1 keeps all three.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_baselines [n] [p]
//! ```

use cgp_bench::experiments::baselines;
use cgp_bench::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("E7 — criteria comparison at n = {n}, p = {p}\n");
    let rows = baselines(n, p, 5);

    let mut table = Table::new(vec![
        "method",
        "time (ms)",
        "words sent / item",
        "comm balance",
        "uniformity p-value (n=4)",
        "criterion given up",
    ]);
    for r in &rows {
        table.row(vec![
            r.method.clone(),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", r.words_per_item),
            format!("{:.3}", r.balance),
            r.uniformity_p_value
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
            r.note.to_string(),
        ]);
    }
    println!("{table}");
    println!("reading guide: a p-value >= 0.01 means 'consistent with uniform';");
    println!("words/item ~ 1 means work-optimal communication; balance ~ 1 means no");
    println!("processor is overloaded.  Only Algorithm 1 scores on all three.");
}
