//! E6 — matrix sampling versus data exchange (§6, outlook).
//!
//! "The main limitation for Algorithm 1 when run on large data sets is the
//! communication phase [...] for smaller data sets, the computation of the
//! matrix can be a bottleneck."  This binary sweeps n for a fixed p and
//! reports how the total time splits between the two phases, for the
//! sequential matrix backend and the cost-optimal parallel one.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_crossover [p] [max_n]
//! ```

use cgp_bench::experiments::crossover;
use cgp_bench::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let max_n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(16_000_000);

    let mut sizes = vec![
        10_000usize,
        100_000,
        1_000_000,
        4_000_000,
        16_000_000,
        64_000_000,
    ];
    sizes.retain(|&n| n <= max_n);

    println!("E6 — phase split of Algorithm 1 at p = {p} virtual processors\n");
    let rows = crossover(p, &sizes, 21);

    let mut table = Table::new(vec![
        "n",
        "matrix backend",
        "matrix (ms)",
        "exchange (ms)",
        "matrix share",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{}", r.n),
            r.backend.name().to_string(),
            format!("{:.2}", r.matrix_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", r.exchange_elapsed.as_secs_f64() * 1e3),
            format!("{:.1}%", r.matrix_share() * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected shape: the matrix share shrinks as n grows (exchange dominates for");
    println!("large data, matching the paper's observation), and is what the parallel");
    println!("matrix sampling of Algorithm 6 is designed to reduce for medium sizes.");
}
