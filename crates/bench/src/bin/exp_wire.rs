//! E15 — wire front-end overhead (socket round-trip vs in-process handle).
//!
//! Submits the same blocking `u64` permutation job two ways against the
//! same [`cgp_core::service::ServiceConfig`] — through an in-process
//! [`cgp_core::ServiceHandle`] and through a [`cgp_server::Client`] over a
//! Unix-domain and a TCP socket — and writes a machine-readable snapshot
//! to `BENCH_wire.json` so the protocol's overhead curve can be tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_wire [n_csv] [p] [out.json]
//! cargo run --release -p cgp-bench --bin exp_wire -- --check BENCH_wire.json
//! ```
//!
//! Defaults: `n ∈ {10_000, 100_000, 1_000_000}` `u64` items, `p = 2`.
//! With `--check <committed.json>` the experiment re-runs at the committed
//! grid and exits 1 if any paired `wire_vs_in_process` ratio regressed by
//! more than the shared tolerance (see `cgp_bench::snapshot`).
//!
//! The overhead is honest by construction: the wire job and the
//! in-process job compute the byte-identical permutation for the seed
//! (each row asserts it), so the ratio prices exactly what the socket
//! front-end adds — frame-encoding the payload twice and crossing the
//! socket twice per job.

use cgp_bench::experiments::{wire_overhead, WireRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_snapshot(rows: &[WireRow]) -> Snapshot {
    let mut snap = Snapshot::new("wire").meta("payload", "u64");
    for r in rows {
        snap.rows.push(snapshot::row([
            ("transport", r.transport.into()),
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("in_process_ns", r.in_process.as_nanos().into()),
            ("wire_ns", r.wire.as_nanos().into()),
            ("wire_vs_in_process", r.wire_vs_in_process_paired.into()),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (ns, procs, out_path);
    if let Some(committed) = &committed {
        ns = committed.distinct("n");
        procs = *committed
            .distinct("procs")
            .first()
            .expect("committed snapshot has a procs column");
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_wire.json".into());
    } else {
        ns = parse_csv(args.first(), &[10_000, 100_000, 1_000_000]);
        procs = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2);
        out_path = args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "BENCH_wire.json".into());
    }

    println!("E15 — wire front-end overhead, n ∈ {ns:?}, p = {procs}\n");
    let rows = wire_overhead(&ns, procs, 42);

    let mut table = Table::new(vec![
        "transport",
        "n",
        "in-process (ms)",
        "wire (ms)",
        "wire overhead",
    ]);
    for r in &rows {
        table.row(vec![
            r.transport.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.in_process.as_secs_f64() * 1e3),
            format!("{:.3}", r.wire.as_secs_f64() * 1e3),
            format!("{:.2}x", r.wire_overhead()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    for r in &rows {
        println!(
            "{} n = {}: wire round-trip {:.2}x the in-process handle time",
            r.transport,
            r.n,
            r.wire_overhead(),
        );
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["transport", "n", "procs"],
            &["wire_vs_in_process"],
        );
        std::process::exit(outcome.report("wire"));
    }
}
