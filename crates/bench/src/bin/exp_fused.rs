//! E10 — the staged two-job pipeline vs the fused single-job pipeline.
//!
//! Measures one `ParallelOptimal` permutation through the staged seed
//! pipeline (matrix sampled as its own machine job, then the exchange as a
//! second job — [`cgp_bench::staged`]) against today's fused single-job
//! pipeline, one-shot and on resident sessions, and writes a
//! machine-readable snapshot to `BENCH_fused.json` so the fusion
//! trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_fused [n_csv] [p_csv] [out.json]
//! cargo run --release -p cgp-bench --bin exp_fused -- --check BENCH_fused.json
//! ```
//!
//! Defaults: `n ∈ {1e4, 1e5}`, `p ∈ {4, 8}` — the acceptance grid.  With
//! `--check <committed.json>` the experiment re-runs at the committed grid
//! and exits 1 if any paired speedup ratio regressed by more than the
//! shared tolerance (see `cgp_bench::snapshot`).

use cgp_bench::experiments::{fused, FusedRow};
use cgp_bench::snapshot::{self, Snapshot};
use cgp_bench::Table;

fn parse_csv(arg: Option<&String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_snapshot(rows: &[FusedRow]) -> Snapshot {
    let mut snap = Snapshot::new("fused").meta("backend", "alg6-parallel-optimal");
    for r in rows {
        snap.rows.push(snapshot::row([
            ("n", r.n.into()),
            ("procs", r.procs.into()),
            ("staged_one_shot_ns", r.staged_one_shot.as_nanos().into()),
            ("fused_one_shot_ns", r.fused_one_shot.as_nanos().into()),
            ("staged_session_ns", r.staged_session.as_nanos().into()),
            ("fused_session_ns", r.fused_session.as_nanos().into()),
            ("one_shot_speedup", r.one_shot_speedup().into()),
            ("session_speedup", r.session_speedup().into()),
        ]));
    }
    snap
}

fn main() {
    let (check, args) = snapshot::split_check_arg(std::env::args().skip(1).collect());

    // Parse the committed snapshot once: grid source here, comparison
    // baseline below (never re-read after the fresh write), and the
    // default output moves aside so the committed file survives.
    let committed = check
        .as_deref()
        .map(|path| Snapshot::read(path).expect("committed snapshot"));
    let (ns, ps, out_path);
    if let Some(committed) = &committed {
        ns = committed.distinct("n");
        ps = committed.distinct("procs");
        out_path = args
            .first()
            .cloned()
            .unwrap_or_else(|| "fresh_fused.json".into());
    } else {
        ns = parse_csv(args.first(), &[10_000, 100_000]);
        ps = parse_csv(args.get(1), &[4, 8]);
        out_path = args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "BENCH_fused.json".into());
    }

    println!("E10 — staged two-job vs fused single-job pipeline, n ∈ {ns:?}, p ∈ {ps:?}\n");
    let rows = fused(&ns, &ps, 42);

    let mut table = Table::new(vec![
        "p",
        "n",
        "staged 1-shot (ms)",
        "fused 1-shot (ms)",
        "staged session (ms)",
        "fused session (ms)",
        "1-shot speedup",
        "session speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.staged_one_shot.as_secs_f64() * 1e3),
            format!("{:.3}", r.fused_one_shot.as_secs_f64() * 1e3),
            format!("{:.3}", r.staged_session.as_secs_f64() * 1e3),
            format!("{:.3}", r.fused_session.as_secs_f64() * 1e3),
            format!("{:.2}x", r.one_shot_speedup()),
            format!("{:.2}x", r.session_speedup()),
        ]);
    }
    println!("{table}");

    let fresh = to_snapshot(&rows);
    fresh.write(&out_path);

    // The acceptance criterion reads p = 8, n ∈ {1e4, 1e5}: fused must be
    // at least as fast as staged there.
    let mut all_good = true;
    for r in rows.iter().filter(|r| r.procs == 8) {
        let ok = r.one_shot_speedup() >= 1.0 && r.session_speedup() >= 1.0;
        all_good &= ok;
        println!(
            "p = {}, n = {}: fused is {:.2}x (one-shot) / {:.2}x (session) vs staged{}",
            r.procs,
            r.n,
            r.one_shot_speedup(),
            r.session_speedup(),
            if ok {
                ""
            } else {
                "  <-- NOT faster, investigate"
            }
        );
    }
    if !all_good {
        println!("WARNING: fused not uniformly >= staged at p = 8 in this snapshot");
    }

    if let Some(committed) = &committed {
        let outcome = snapshot::check_ratios(
            committed,
            &fresh,
            &["n", "procs"],
            &["one_shot_speedup", "session_speedup"],
        );
        std::process::exit(outcome.report("fused"));
    }
}
