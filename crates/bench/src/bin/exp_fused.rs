//! E10 — the staged two-job pipeline vs the fused single-job pipeline.
//!
//! Measures one `ParallelOptimal` permutation through the staged seed
//! pipeline (matrix sampled as its own machine job, then the exchange as a
//! second job — [`cgp_bench::staged`]) against today's fused single-job
//! pipeline, one-shot and on resident sessions, and writes a
//! machine-readable snapshot to `BENCH_fused.json` so the fusion
//! trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p cgp-bench --bin exp_fused [n_csv] [p_csv] [out.json]
//! ```
//!
//! Defaults: `n ∈ {1e4, 1e5}`, `p ∈ {4, 8}` — the acceptance grid.

use std::time::Duration;

use cgp_bench::experiments::{fused, FusedRow};
use cgp_bench::Table;

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    match arg.filter(|s| !s.trim().is_empty()) {
        Some(s) => s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("not a number in list: {part:?}"))
            })
            .collect(),
        None => default.to_vec(),
    }
}

fn to_json(rows: &[FusedRow]) -> String {
    let ns = |d: Duration| d.as_nanos();
    let mut out = String::from(
        "{\n  \"bench\": \"fused\",\n  \"backend\": \"alg6-parallel-optimal\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"procs\": {}, \"staged_one_shot_ns\": {}, \
             \"fused_one_shot_ns\": {}, \"staged_session_ns\": {}, \"fused_session_ns\": {}, \
             \"one_shot_speedup\": {:.4}, \"session_speedup\": {:.4}}}{}\n",
            r.n,
            r.procs,
            ns(r.staged_one_shot),
            ns(r.fused_one_shot),
            ns(r.staged_session),
            ns(r.fused_session),
            r.one_shot_speedup(),
            r.session_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ns = parse_csv(args.next(), &[10_000, 100_000]);
    let ps = parse_csv(args.next(), &[4, 8]);
    let out_path = args.next().unwrap_or_else(|| "BENCH_fused.json".into());

    println!("E10 — staged two-job vs fused single-job pipeline, n ∈ {ns:?}, p ∈ {ps:?}\n");
    let rows = fused(&ns, &ps, 42);

    let mut table = Table::new(vec![
        "p",
        "n",
        "staged 1-shot (ms)",
        "fused 1-shot (ms)",
        "staged session (ms)",
        "fused session (ms)",
        "1-shot speedup",
        "session speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.procs.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.staged_one_shot.as_secs_f64() * 1e3),
            format!("{:.3}", r.fused_one_shot.as_secs_f64() * 1e3),
            format!("{:.3}", r.staged_session.as_secs_f64() * 1e3),
            format!("{:.3}", r.fused_session.as_secs_f64() * 1e3),
            format!("{:.2}x", r.one_shot_speedup()),
            format!("{:.2}x", r.session_speedup()),
        ]);
    }
    println!("{table}");

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("snapshot written to {out_path}");

    // The acceptance criterion reads p = 8, n ∈ {1e4, 1e5}: fused must be
    // at least as fast as staged there.
    let mut all_good = true;
    for r in rows.iter().filter(|r| r.procs == 8) {
        let ok = r.one_shot_speedup() >= 1.0 && r.session_speedup() >= 1.0;
        all_good &= ok;
        println!(
            "p = {}, n = {}: fused is {:.2}x (one-shot) / {:.2}x (session) vs staged{}",
            r.procs,
            r.n,
            r.one_shot_speedup(),
            r.session_speedup(),
            if ok {
                ""
            } else {
                "  <-- NOT faster, investigate"
            }
        );
    }
    if !all_good {
        println!("WARNING: fused not uniformly >= staged at p = 8 in this snapshot");
    }
}
