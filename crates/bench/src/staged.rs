//! The **staged** two-job pipeline of the original engine, kept verbatim as
//! the measurement baseline and the equivalence witness for the fused
//! single-job pipeline that replaced it.
//!
//! Before the fusion, `cgp_core::permute_vec` ran Algorithm 1 in two stages:
//!
//! 1. **Matrix phase** — the front-end backends sampled on the calling
//!    thread from the `"communication-matrix"` named stream; the parallel
//!    backends ran Algorithms 5/6 as their own job on a **freshly spawned
//!    one-shot machine**, even when the exchange itself ran on a resident
//!    pool.
//! 2. **Data phase** — a second job (machine run or pool job) shuffled,
//!    cut along the now-known matrix, exchanged and re-shuffled.
//!
//! Every random stream below is derived exactly as the old engine derived
//! it, so for the same machine seed this produces the **identical**
//! permutation as today's fused path — which is precisely what the
//! equivalence proptests in `tests/fused_equivalence.rs` assert, and what
//! makes the E10 (`exp_fused`) comparison a pure pipeline-shape
//! measurement.
//!
//! One deliberate asymmetry with history: both pipelines here run on
//! today's dual-plane fabric (every machine carries the word plane whether
//! or not a job samples on it), so E10 isolates the pipeline *shape* —
//! job count, spawns, overlap — rather than the per-fabric constant, which
//! is identical on both sides of the comparison.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use cgp_cgm::{BlockDistribution, CgmConfig, CgmExecutor, CgmMachine, ProcCtx, ResidentCgm};
use cgp_core::{fisher_yates_shuffle, MatrixBackend, PermuteOptions};
use cgp_matrix::{sample_recursive, sample_sequential, CommMatrix};
use cgp_rng::SeedSequence;

/// Stage 1 of the staged pipeline: resolves the target sizes and samples
/// the communication matrix *outside* the data job — on the calling thread
/// for the front-end backends, on a freshly spawned one-shot machine for
/// the parallel ones (the startup cost the fused pipeline eliminates).
pub fn staged_sample_matrix(
    config: &CgmConfig,
    source_sizes: &[u64],
    options: &PermuteOptions,
) -> (Vec<u64>, CommMatrix) {
    let target_sizes = options.resolve_target_sizes(config.procs, source_sizes);
    let seeds = SeedSequence::new(config.seed);
    let mut matrix_rng = seeds.named_stream("communication-matrix");
    let matrix = match options.backend {
        MatrixBackend::Sequential => {
            sample_sequential(&mut matrix_rng, source_sizes, &target_sizes)
        }
        MatrixBackend::Recursive => sample_recursive(&mut matrix_rng, source_sizes, &target_sizes),
        MatrixBackend::ParallelLog => {
            let mut machine = CgmMachine::new(*config);
            cgp_matrix::sample_parallel_log(&mut machine, source_sizes, &target_sizes).0
        }
        MatrixBackend::ParallelOptimal => {
            let mut machine = CgmMachine::new(*config);
            cgp_matrix::sample_parallel_optimal(&mut machine, source_sizes, &target_sizes).0
        }
    };
    (target_sizes, matrix)
}

/// Recycled buffers of the staged engine — the old `PermuteScratch`, whose
/// fields are private in `cgp-core` now that the fused engine owns them.
#[derive(Debug, Default)]
pub struct StagedScratch<T> {
    blocks: Vec<Vec<T>>,
    outgoing: Vec<Vec<Vec<T>>>,
}

impl<T> StagedScratch<T> {
    /// An empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        StagedScratch {
            blocks: Vec::new(),
            outgoing: Vec::new(),
        }
    }
}

/// Stage 2 of the staged pipeline: the move-based shuffle / cut / exchange
/// / shuffle job, running against an *already sampled* matrix.  Verbatim
/// the data phase of the pre-fusion engine.
fn staged_exchange<T, E>(
    exec: &mut E,
    blocks: Vec<Vec<T>>,
    mut outgoing_scratch: Vec<Vec<Vec<T>>>,
    matrix: CommMatrix,
    target_sizes: Vec<u64>,
) -> (Vec<Vec<T>>, Vec<Vec<Vec<T>>>)
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    // One processor's hand-off: its block plus recycled outgoing buffers.
    type Slots<T> = Arc<Vec<Mutex<Option<(Vec<T>, Vec<Vec<T>>)>>>>;
    let p = exec.procs();
    outgoing_scratch.resize_with(p, Vec::new);
    let slots: Slots<T> = Arc::new(
        blocks
            .into_iter()
            .zip(outgoing_scratch)
            .map(|pair| Mutex::new(Some(pair)))
            .collect(),
    );
    let matrix = Arc::new(matrix);
    let target_sizes = Arc::new(target_sizes);

    let outcome = exec.run_job(move |ctx: &mut ProcCtx<T>| {
        let id = ctx.id();
        let p = ctx.procs();
        let mut shuffle_rng = ctx.seeds().child_sequence(0x5AFE_B10C).proc_stream(id);

        ctx.superstep();
        let (mut block, mut outgoing) = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");
        fisher_yates_shuffle(&mut shuffle_rng, &mut block);

        ctx.superstep();
        let row = matrix.row(id);
        outgoing.resize_with(p, Vec::new);
        for j in (0..p).rev() {
            let count = row[j] as usize;
            let tail = block.len() - count;
            let piece = &mut outgoing[j];
            if piece.capacity() == 0 {
                *piece = block.split_off(tail);
            } else {
                piece.clear();
                piece.reserve(count);
                piece.extend(block.drain(tail..));
            }
        }
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);

        ctx.superstep();
        let mut new_block = block;
        new_block.reserve(target_sizes[id] as usize);
        let mut shells: Vec<Vec<T>> = Vec::with_capacity(p);
        for mut part in incoming {
            new_block.append(&mut part);
            shells.push(part);
        }
        fisher_yates_shuffle(&mut shuffle_rng, &mut new_block);
        (new_block, shells)
    });

    let mut new_blocks = Vec::with_capacity(p);
    let mut shells = Vec::with_capacity(p);
    for (block, shell) in outcome.into_results() {
        new_blocks.push(block);
        shells.push(shell);
    }
    (new_blocks, shells)
}

/// The staged counterpart of `cgp_core::permute_vec_into_with`: matrix
/// sampled up front (stage 1), then the data exchange as a second job on
/// `exec` (stage 2), recycling buffers through `scratch`.  Returns the
/// wall-clock split `(matrix_elapsed, exchange_elapsed)`.
pub fn staged_permute_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut StagedScratch<T>,
) -> (std::time::Duration, std::time::Duration)
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    let config = exec.config();
    let dist = BlockDistribution::even(data.len() as u64, p);
    options.validate_target_sizes(p, data.len() as u64);
    let mut options = options.clone();
    let out_dist = match options.target_sizes.take() {
        Some(sizes) => BlockDistribution::from_sizes(sizes),
        None => dist.clone(),
    };
    options.target_sizes = Some(out_dist.sizes().to_vec());

    let mut blocks = std::mem::take(&mut scratch.blocks);
    dist.split_vec_into(data, &mut blocks);
    let source_sizes: Vec<u64> = blocks.iter().map(|b| b.len() as u64).collect();

    let matrix_started = Instant::now();
    let (target_sizes, matrix) = staged_sample_matrix(&config, &source_sizes, &options);
    let matrix_elapsed = matrix_started.elapsed();

    let exchange_started = Instant::now();
    let outgoing = std::mem::take(&mut scratch.outgoing);
    let (mut new_blocks, shells) = staged_exchange(exec, blocks, outgoing, matrix, target_sizes);
    let exchange_elapsed = exchange_started.elapsed();

    out_dist.concat_vec_into(&mut new_blocks, data);
    scratch.blocks = new_blocks;
    scratch.outgoing = shells;
    (matrix_elapsed, exchange_elapsed)
}

/// One-shot convenience: the staged pipeline on a fresh machine, fresh
/// buffers — the old `permute_vec` shape.
pub fn staged_permute_vec<T: Send + 'static>(
    machine: &CgmMachine,
    mut data: Vec<T>,
    options: &PermuteOptions,
) -> Vec<T> {
    let mut exec = machine.clone();
    let mut scratch = StagedScratch::new();
    staged_permute_vec_into_with(&mut exec, &mut data, options, &mut scratch);
    data
}

/// A staged **session**: a resident pool for the data phase plus a
/// recycled scratch — exactly what `PermutationSession` was before the
/// fusion, including the per-call one-shot matrix machine of the parallel
/// backends.
pub struct StagedSession<T: Send + 'static> {
    pool: ResidentCgm<T>,
    scratch: StagedScratch<T>,
    options: PermuteOptions,
}

impl<T: Send + 'static> StagedSession<T> {
    /// Spawns the resident workers for the staged data phase.
    pub fn new(config: CgmConfig, options: PermuteOptions) -> Self {
        StagedSession {
            pool: ResidentCgm::new(config),
            scratch: StagedScratch::new(),
            options,
        }
    }

    /// Permutes `data` in place: matrix up front, data phase on the pool.
    pub fn permute_into(&mut self, data: &mut Vec<T>) {
        staged_permute_vec_into_with(&mut self.pool, data, &self.options, &mut self.scratch);
    }
}
