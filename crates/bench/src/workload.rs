//! Workload generators shared by the experiments and the Criterion benches.

use cgp_rng::{Pcg64, RandomExt};

/// A vector of `n` consecutive integers — the paper's workload is a vector
/// of `long int`s, and consecutive values make it trivial to verify that the
/// output is a permutation.
pub fn identity_items(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// A vector of `n` pseudo-random payloads (used where consecutive values
/// could be unrealistically cache-friendly).
pub fn random_items(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Pcg64::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range_u64(u64::MAX)).collect()
}

/// Hypergeometric parameter grid representative of what the matrix samplers
/// request: `(t, w, b)` triples spanning tiny to very large urns, including
/// strongly asymmetric ones.
pub fn hypergeometric_grid() -> Vec<(u64, u64, u64)> {
    vec![
        (3, 17, 23),
        (10, 100, 100),
        (50, 200, 600),
        (128, 4_096, 4_096),
        (1_000, 4_000, 12_000),
        (5_000, 100_000, 300_000),
        (100_000, 500_000, 500_000),
        (200_000, 10_000_000, 10_000_000),
        (1, 1_000_000, 1_000_000),
        (999_999, 1_000_000, 1_000_000),
    ]
}

/// The processor counts of the paper's §6 table (plus 1 for the sequential
/// reference).
pub fn paper_processor_counts() -> Vec<usize> {
    vec![1, 3, 6, 12, 24, 48]
}

/// The wall-clock numbers reported in §6 of the paper for 480 million items
/// on a 400 MHz Origin, in seconds, keyed by processor count.  `1` denotes
/// the sequential reference.
pub fn paper_scaling_seconds() -> Vec<(usize, f64)> {
    vec![
        (1, 137.0),
        (3, 210.0),
        (6, 107.0),
        (12, 72.9),
        (24, 60.9),
        (48, 53.2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_items_are_consecutive() {
        let v = identity_items(5);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_items_are_reproducible() {
        assert_eq!(random_items(16, 3), random_items(16, 3));
        assert_ne!(random_items(16, 3), random_items(16, 4));
    }

    #[test]
    fn grid_parameters_are_valid() {
        for (t, w, b) in hypergeometric_grid() {
            assert!(t <= w + b, "invalid grid entry ({t}, {w}, {b})");
        }
    }

    #[test]
    fn paper_numbers_match_the_text() {
        let table = paper_scaling_seconds();
        assert_eq!(table.len(), 6);
        assert_eq!(table[0], (1, 137.0));
        assert_eq!(table[5], (48, 53.2));
        assert_eq!(
            paper_processor_counts(),
            table.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
    }
}
