//! Reusable implementations of the experiments E1–E7.
//!
//! Every function takes explicit size parameters so that the `exp_*`
//! binaries can run paper-scale versions while the unit tests and CI run
//! scaled-down smoke versions of exactly the same code.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cgp_cgm::{BlockDistribution, CgmConfig, CgmMachine};
use cgp_core::baselines::{one_round_permutation, rejection_permutation, sort_based_permutation};
use cgp_core::uniformity::{recommended_samples, test_uniformity};
use cgp_core::{
    fisher_yates_shuffle, permute_vec, Algorithm, BucketScratch, LocalShuffle, MatrixBackend,
    PermuteOptions, TransportKind,
};
use cgp_hypergeom::{sample_with, SamplerKind};
use cgp_matrix::{
    sample_parallel_log, sample_parallel_optimal, sample_recursive, sample_sequential,
};
use cgp_rng::{CountingRng, Pcg64, SeedSequence};

use crate::workload;

// ---------------------------------------------------------------------------
// E1 — cost per item of the sequential permutation
// ---------------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct SeqCostRow {
    /// Number of items permuted.
    pub n: usize,
    /// Nanoseconds per item for the full Fisher–Yates shuffle.
    pub shuffle_ns_per_item: f64,
    /// Nanoseconds per item for a purely sequential pass over the same data
    /// (an optimistic bound on the compute-only cost).
    pub sequential_pass_ns_per_item: f64,
    /// Nanoseconds per item for a random-gather pass (same access pattern as
    /// the shuffle but no random number generation) — the memory-bound part.
    pub random_gather_ns_per_item: f64,
}

impl SeqCostRow {
    /// Estimated share of the shuffle time attributable to the random memory
    /// traffic (the paper reports 33 %–80 % depending on the machine).
    pub fn memory_share(&self) -> f64 {
        (self.random_gather_ns_per_item / self.shuffle_ns_per_item).min(1.0)
    }

    /// Cycles per item under an assumed clock frequency in GHz.
    pub fn cycles_per_item(&self, ghz: f64) -> f64 {
        self.shuffle_ns_per_item * ghz
    }
}

/// Measures the sequential permutation cost for each size in `sizes`.
pub fn seq_cost(sizes: &[usize], seed: u64) -> Vec<SeqCostRow> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut data = workload::identity_items(n);

            // Full shuffle.
            let started = Instant::now();
            fisher_yates_shuffle(&mut rng, &mut data);
            let shuffle = started.elapsed();

            // Sequential pass (sum) over the same memory.
            let started = Instant::now();
            let mut acc = 0u64;
            for &x in &data {
                acc = acc.wrapping_add(x);
            }
            let sequential_pass = started.elapsed();
            std::hint::black_box(acc);

            // Random gather: visit the data in the (random) order given by
            // the shuffled values themselves — same unpredictable access
            // pattern as the shuffle, but no RNG work.
            let started = Instant::now();
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(data[data[i] as usize % n.max(1)]);
            }
            let random_gather = started.elapsed();
            std::hint::black_box(acc);

            let per_item = |d: Duration| d.as_nanos() as f64 / n.max(1) as f64;
            SeqCostRow {
                n,
                shuffle_ns_per_item: per_item(shuffle),
                sequential_pass_ns_per_item: per_item(sequential_pass),
                random_gather_ns_per_item: per_item(random_gather),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E2 — random numbers per hypergeometric sample
// ---------------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Debug, Clone)]
pub struct RngDrawRow {
    /// Sampler backend under test.
    pub sampler: SamplerKind,
    /// Distribution parameters `(t, w, b)`.
    pub params: (u64, u64, u64),
    /// Average number of 64-bit uniforms per sample.
    pub avg_draws: f64,
    /// Worst case observed.
    pub max_draws: u64,
}

/// Measures the uniform-draw cost of the hypergeometric samplers over the
/// standard parameter grid (`samples` draws per grid point and backend).
pub fn rng_draws(samples: u64, seed: u64) -> Vec<RngDrawRow> {
    let mut rows = Vec::new();
    for sampler in [
        SamplerKind::Adaptive,
        SamplerKind::Inverse,
        SamplerKind::Hrua,
    ] {
        for &(t, w, b) in &workload::hypergeometric_grid() {
            // The pure-inversion backend is too slow for very wide targets;
            // skip grid points whose support is huge to keep runtimes sane.
            if sampler == SamplerKind::Inverse && t.min(w) > 200_000 {
                continue;
            }
            let mut rng = CountingRng::new(Pcg64::seed_from_u64(seed));
            let mut max_draws = 0u64;
            let mut total = 0u64;
            for _ in 0..samples {
                let before = rng.count();
                let _ = sample_with(&mut rng, t, w, b, sampler);
                let used = rng.count() - before;
                max_draws = max_draws.max(used);
                total += used;
            }
            rows.push(RngDrawRow {
                sampler,
                params: (t, w, b),
                avg_draws: total as f64 / samples as f64,
                max_draws,
            });
        }
    }
    rows
}

/// Aggregate of E2 over the whole grid for one sampler: `(average, worst)`.
pub fn rng_draws_aggregate(rows: &[RngDrawRow], sampler: SamplerKind) -> (f64, u64) {
    let filtered: Vec<&RngDrawRow> = rows.iter().filter(|r| r.sampler == sampler).collect();
    let avg = filtered.iter().map(|r| r.avg_draws).sum::<f64>() / filtered.len().max(1) as f64;
    let max = filtered.iter().map(|r| r.max_draws).max().unwrap_or(0);
    (avg, max)
}

// ---------------------------------------------------------------------------
// E3 — scaling of the full permutation with the number of processors
// ---------------------------------------------------------------------------

/// One row of the E3 scaling table.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of virtual processors (1 = the sequential reference).
    pub procs: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Speed-up relative to the sequential reference.
    pub speedup: f64,
    /// Parallel overhead factor: `p · T_p / T_seq` (the paper expects 3–5).
    pub overhead_factor: f64,
    /// Maximum per-processor communication volume during the exchange.
    pub max_comm_volume: u64,
}

/// Runs the scaling experiment for `n` items over each processor count.
/// `procs` should contain `1` for the sequential reference row.
pub fn scaling(n: usize, procs: &[usize], backend: MatrixBackend, seed: u64) -> Vec<ScalingRow> {
    // Sequential reference.
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut data = workload::identity_items(n);
    let started = Instant::now();
    fisher_yates_shuffle(&mut rng, &mut data);
    let t_seq = started.elapsed();
    std::hint::black_box(&data);

    procs
        .iter()
        .map(|&p| {
            if p == 1 {
                return ScalingRow {
                    procs: 1,
                    elapsed: t_seq,
                    speedup: 1.0,
                    overhead_factor: 1.0,
                    max_comm_volume: 0,
                };
            }
            let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
            let data = workload::identity_items(n);
            let started = Instant::now();
            let (out, report) = permute_vec(&machine, data, &PermuteOptions::with_backend(backend));
            let elapsed = started.elapsed();
            std::hint::black_box(&out);
            ScalingRow {
                procs: p,
                elapsed,
                speedup: t_seq.as_secs_f64() / elapsed.as_secs_f64(),
                overhead_factor: p as f64 * elapsed.as_secs_f64() / t_seq.as_secs_f64(),
                max_comm_volume: report.max_exchange_volume(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E4 — cost of the matrix-sampling algorithms
// ---------------------------------------------------------------------------

/// One row of the E4 matrix-cost table.
#[derive(Debug, Clone)]
pub struct MatrixCostRow {
    /// Matrix backend.
    pub backend: MatrixBackend,
    /// Number of processors (= rows = columns).
    pub procs: usize,
    /// Wall-clock time to sample one matrix.
    pub elapsed: Duration,
    /// Uniform draws consumed (sequential backends only).
    pub draws: Option<u64>,
    /// Maximum per-processor communication volume (parallel backends only).
    pub max_comm_volume: Option<u64>,
    /// Total words sent over the machine (parallel backends only).
    pub total_words: Option<u64>,
}

/// Samples one `p × p` matrix (equal blocks of size `m`) with every backend
/// for every `p` in `procs` and records the cost.
pub fn matrix_cost(procs: &[usize], m: u64, seed: u64) -> Vec<MatrixCostRow> {
    let mut rows = Vec::new();
    for &p in procs {
        let source = vec![m; p];
        let target = vec![m; p];

        for backend in [MatrixBackend::Sequential, MatrixBackend::Recursive] {
            let mut rng = CountingRng::new(Pcg64::seed_from_u64(seed));
            let started = Instant::now();
            let matrix = match backend {
                MatrixBackend::Sequential => sample_sequential(&mut rng, &source, &target),
                _ => sample_recursive(&mut rng, &source, &target),
            };
            let elapsed = started.elapsed();
            std::hint::black_box(&matrix);
            rows.push(MatrixCostRow {
                backend,
                procs: p,
                elapsed,
                draws: Some(rng.count()),
                max_comm_volume: None,
                total_words: None,
            });
        }

        for backend in [MatrixBackend::ParallelLog, MatrixBackend::ParallelOptimal] {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
            let started = Instant::now();
            let (matrix, metrics) = match backend {
                MatrixBackend::ParallelLog => sample_parallel_log(&mut machine, &source, &target),
                _ => sample_parallel_optimal(&mut machine, &source, &target),
            };
            let elapsed = started.elapsed();
            std::hint::black_box(&matrix);
            rows.push(MatrixCostRow {
                backend,
                procs: p,
                elapsed,
                draws: None,
                max_comm_volume: Some(metrics.max_comm_volume()),
                total_words: Some(metrics.total_words_sent()),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E5 — uniformity of the full pipeline
// ---------------------------------------------------------------------------

/// One row of the E5 uniformity table.
#[derive(Debug, Clone)]
pub struct UniformityRow {
    /// Human-readable generator name.
    pub generator: String,
    /// Permutation length tested exhaustively.
    pub n: usize,
    /// Number of generated permutations.
    pub samples: u64,
    /// Chi-square statistic against the uniform law over `n!` outcomes.
    pub chi_square: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// p-value (≥ 0.01 means "consistent with uniform" at the 1 % level).
    pub p_value: f64,
    /// Whether every one of the `n!` permutations was observed.
    pub covers_all: bool,
}

/// Runs the uniformity experiment for Algorithm 1 (all backends) and the
/// baselines at permutation length `n` with `per_bucket` expected samples per
/// outcome.
pub fn uniformity(n: usize, per_bucket: u64, p: usize) -> Vec<UniformityRow> {
    let samples = recommended_samples(n, per_bucket);
    let mut rows = Vec::new();

    let mut push = |name: String, report: cgp_core::uniformity::UniformityReport| {
        rows.push(UniformityRow {
            generator: name,
            n,
            samples: report.samples,
            chi_square: report.chi_square.statistic,
            dof: report.chi_square.degrees_of_freedom,
            p_value: report.chi_square.p_value,
            covers_all: report.covers_all_permutations(),
        });
    };

    // Sequential reference.
    let mut rng = Pcg64::seed_from_u64(1);
    push(
        "sequential Fisher-Yates".into(),
        test_uniformity(n, samples, |_| {
            cgp_core::sequential::random_index_permutation(&mut rng, n)
        }),
    );

    // Algorithm 1 with each matrix backend.
    for backend in MatrixBackend::ALL {
        push(
            format!("Algorithm 1 + {}", backend.name()),
            test_uniformity(n, samples, |rep| {
                let machine = CgmMachine::new(CgmConfig::new(p).with_seed(rep * 7 + 13));
                permute_vec(
                    &machine,
                    workload::identity_items(n),
                    &PermuteOptions::with_backend(backend),
                )
                .0
            }),
        );
    }

    // Fixed-matrix baseline (1 round): the known non-uniform contrast.
    if n.is_multiple_of(p) && (n / p).is_multiple_of(p) {
        push(
            "baseline: fixed matrix, 1 round".into(),
            test_uniformity(n, samples, |rep| {
                let machine = CgmMachine::new(CgmConfig::new(p).with_seed(rep * 11 + 17));
                let m = n / p;
                let blocks: Vec<Vec<u64>> = (0..p)
                    .map(|i| ((i * m) as u64..((i + 1) * m) as u64).collect())
                    .collect();
                one_round_permutation(&machine, blocks, 1)
                    .0
                    .into_iter()
                    .flatten()
                    .collect()
            }),
        );
    }

    rows
}

// ---------------------------------------------------------------------------
// E6 — crossover between matrix sampling and data exchange
// ---------------------------------------------------------------------------

/// One row of the E6 crossover table.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Total number of items.
    pub n: usize,
    /// Matrix backend used.
    pub backend: MatrixBackend,
    /// Time spent sampling the matrix.
    pub matrix_elapsed: Duration,
    /// Time spent in shuffle + exchange + shuffle.
    pub exchange_elapsed: Duration,
}

impl CrossoverRow {
    /// Fraction of the total time spent in matrix sampling.
    pub fn matrix_share(&self) -> f64 {
        let total = self.matrix_elapsed.as_secs_f64() + self.exchange_elapsed.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.matrix_elapsed.as_secs_f64() / total
        }
    }
}

/// Measures the split between matrix-sampling time and exchange time for a
/// fixed machine size `p` and varying `n`.
pub fn crossover(p: usize, sizes: &[usize], seed: u64) -> Vec<CrossoverRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        for backend in [MatrixBackend::Sequential, MatrixBackend::ParallelOptimal] {
            let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
            let (_, report) = permute_vec(
                &machine,
                workload::identity_items(n),
                &PermuteOptions::with_backend(backend),
            );
            rows.push(CrossoverRow {
                n,
                backend,
                matrix_elapsed: report.matrix_elapsed,
                exchange_elapsed: report.exchange_elapsed,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E7 — the three-criteria comparison with the baselines
// ---------------------------------------------------------------------------

/// One row of the E7 comparison table.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Method name.
    pub method: String,
    /// Wall-clock time at the measured size.
    pub elapsed: Duration,
    /// Total words sent over the machine, per item (communication overhead).
    pub words_per_item: f64,
    /// Balance factor of the communication (1.0 = perfect).
    pub balance: f64,
    /// p-value of the exhaustive uniformity test at n = 4 (None when the
    /// method was not subjected to the test).
    pub uniformity_p_value: Option<f64>,
    /// Free-form note on the structural property the method gives up.
    pub note: &'static str,
}

/// Runs the baseline comparison at `n` items over `p` processors.
pub fn baselines(n: usize, p: usize, seed: u64) -> Vec<BaselineRow> {
    let seeds = SeedSequence::new(seed);
    let dist = cgp_cgm::BlockDistribution::even(n as u64, p);
    let mut rows = Vec::new();

    // Algorithm 1.
    {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seeds.child_seed(1)));
        let started = Instant::now();
        let (_, report) = permute_vec(
            &machine,
            workload::identity_items(n),
            &PermuteOptions::with_backend(MatrixBackend::ParallelOptimal),
        );
        let elapsed = started.elapsed();
        let uniform = uniformity_p_for(|rep| {
            let machine = CgmMachine::new(CgmConfig::new(2).with_seed(rep));
            permute_vec(
                &machine,
                workload::identity_items(4),
                &PermuteOptions::default(),
            )
            .0
        });
        rows.push(BaselineRow {
            method: "Algorithm 1 (this paper)".into(),
            elapsed,
            words_per_item: report.exchange_metrics.total_words_sent() as f64 / n as f64,
            balance: report.exchange_metrics.comm_balance(),
            uniformity_p_value: Some(uniform),
            note: "uniform + work-optimal + balanced",
        });
    }

    // Sort-based baseline.
    {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seeds.child_seed(2)));
        let blocks = dist.split_vec(workload::identity_items(n));
        let started = Instant::now();
        let (_, metrics) = sort_based_permutation(&machine, blocks);
        let elapsed = started.elapsed();
        let uniform = uniformity_p_for(|rep| {
            let machine = CgmMachine::new(CgmConfig::new(2).with_seed(rep));
            let d = cgp_cgm::BlockDistribution::even(4, 2);
            sort_based_permutation(&machine, d.split_vec(workload::identity_items(4)))
                .0
                .into_iter()
                .flatten()
                .collect()
        });
        rows.push(BaselineRow {
            method: "random keys + sample sort (Goodrich)".into(),
            elapsed,
            words_per_item: metrics.total_words_sent() as f64 / n as f64,
            balance: metrics.comm_balance(),
            uniformity_p_value: Some(uniform),
            note: "not work-optimal (Θ(n log n) work, 2x volume)",
        });
    }

    // Rejection baseline (measured at a tiny size so it terminates: the
    // probability that independent destination draws hit the exact block
    // sizes decays like Π_j (2π m'_j)^(-1/2), so anything beyond a few items
    // per block never accepts — which is precisely the structural point).
    {
        let n_small = (4 * p).max(16);
        let dist_small = cgp_cgm::BlockDistribution::even(n_small as u64, p);
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seeds.child_seed(3)));
        let blocks = dist_small.split_vec(workload::identity_items(n_small));
        let started = Instant::now();
        let outcome = rejection_permutation(&machine, blocks, dist_small.sizes(), 200_000).ok();
        let elapsed = started.elapsed();
        let uniform = uniformity_p_for(|rep| {
            let machine = CgmMachine::new(CgmConfig::new(2).with_seed(rep));
            let d = cgp_cgm::BlockDistribution::even(4, 2);
            rejection_permutation(
                &machine,
                d.split_vec(workload::identity_items(4)),
                d.sizes(),
                1_000_000,
            )
            .expect("tiny instances accept")
            .blocks
            .into_iter()
            .flatten()
            .collect()
        });
        rows.push(BaselineRow {
            method: format!(
                "rejection / start-over (n = {n_small}, {} attempts)",
                outcome.as_ref().map(|o| o.attempts).unwrap_or(0)
            ),
            elapsed,
            words_per_item: outcome
                .as_ref()
                .map(|o| o.metrics.total_words_sent() as f64 / n_small as f64)
                .unwrap_or(f64::NAN),
            balance: outcome
                .as_ref()
                .map(|o| o.metrics.comm_balance())
                .unwrap_or(f64::NAN),
            uniformity_p_value: Some(uniform),
            note: "not work-optimal (restarts grow with n)",
        });
    }

    // Fixed-matrix baseline.
    if (n / p).is_multiple_of(p) {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seeds.child_seed(4)));
        let blocks = dist.split_vec(workload::identity_items(n));
        let started = Instant::now();
        let (_, metrics) = one_round_permutation(&machine, blocks, 1);
        let elapsed = started.elapsed();
        let uniform = uniformity_p_for(|rep| {
            let machine = CgmMachine::new(CgmConfig::new(2).with_seed(rep));
            let blocks = vec![vec![0u64, 1], vec![2u64, 3]];
            one_round_permutation(&machine, blocks, 1)
                .0
                .into_iter()
                .flatten()
                .collect()
        });
        rows.push(BaselineRow {
            method: "fixed matrix, 1 round".into(),
            elapsed,
            words_per_item: metrics.total_words_sent() as f64 / n as f64,
            balance: metrics.comm_balance(),
            uniformity_p_value: Some(uniform),
            note: "not uniform (fixed communication matrix)",
        });
    }

    rows
}

// ---------------------------------------------------------------------------
// E8 — clone-based vs move-based data exchange
// ---------------------------------------------------------------------------

/// The clone-based exchange of the original port, kept verbatim as the
/// benchmark baseline: the shuffled block is cut with `block[a..b].to_vec()`
/// (one clone per item on the send side) and the receive side `extend`s into
/// a fresh buffer.  Every random stream is derived exactly as in
/// [`cgp_core::permute_vec`], so for the same machine this produces the
/// *identical* permutation — the only difference is the copy behaviour,
/// which is precisely what the E8 measurement isolates.
pub fn clone_based_permute_vec<T: Send + Clone + 'static>(
    machine: &CgmMachine,
    data: Vec<T>,
) -> Vec<T> {
    let p = machine.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    let blocks = dist.split_vec(data);
    let source_sizes: Vec<u64> = blocks.iter().map(|b| b.len() as u64).collect();
    let seeds = SeedSequence::new(machine.config().seed);
    let mut matrix_rng = seeds.named_stream("communication-matrix");
    let matrix = sample_sequential(&mut matrix_rng, &source_sizes, &source_sizes);
    let slots: Vec<Mutex<Option<Vec<T>>>> =
        blocks.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let matrix_ref = &matrix;
    let outcome = machine.run(|ctx| {
        let id = ctx.id();
        let p = ctx.procs();
        let mut shuffle_rng = ctx.seeds().child_sequence(0x5AFE_B10C).proc_stream(id);
        ctx.superstep();
        let mut block = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");
        fisher_yates_shuffle(&mut shuffle_rng, &mut block);
        ctx.superstep();
        let row = matrix_ref.row(id);
        let mut outgoing: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut cursor = 0usize;
        for &count in row {
            let next = cursor + count as usize;
            outgoing.push(block[cursor..next].to_vec());
            cursor = next;
        }
        drop(block);
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);
        ctx.superstep();
        let mut new_block: Vec<T> =
            Vec::with_capacity(incoming.iter().map(|v| v.len()).sum::<usize>());
        for part in incoming {
            new_block.extend(part);
        }
        fisher_yates_shuffle(&mut shuffle_rng, &mut new_block);
        new_block
    });
    let blocks = outcome.into_results();
    dist.concat_vec(blocks)
}

/// One row of the E8 table: the same exchange measured clone-based and
/// move-based for one payload type.
#[derive(Debug, Clone)]
pub struct ExchangeRow {
    /// Payload type name (`"String"`, `"u64"`).
    pub payload: &'static str,
    /// Number of items permuted.
    pub n: usize,
    /// Number of virtual processors.
    pub procs: usize,
    /// Wall-clock time of the clone-based (seed) exchange.
    pub clone_elapsed: Duration,
    /// Wall-clock time of the move-based (current) exchange.
    pub move_elapsed: Duration,
}

impl ExchangeRow {
    /// How many times faster the move-based path is (> 1.0 means faster).
    pub fn speedup(&self) -> f64 {
        self.clone_elapsed.as_secs_f64() / self.move_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Median of a set of per-repetition durations (element at index n/2 of
/// the sorted vector) — the shared statistic of the paired protocols of
/// E8/E9/E10.
fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Paired per-repetition ratio median `a[i] / b[i]` — robust against drift
/// of the host's background load, since both paths of a pair run
/// back-to-back within each repetition.
fn median_ratio(a: &[Duration], b: &[Duration]) -> f64 {
    let mut ratios: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x.as_secs_f64() / y.as_secs_f64().max(1e-12))
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    ratios[ratios.len() / 2]
}

/// Times both paths for one payload type: an untimed warmup of each path
/// first (allocator-arena growth, page faults and thread start-up would
/// otherwise be billed entirely to whichever path runs first), then
/// alternating timed repetitions, reporting the per-path median.
fn measure_exchange_pair<T: Send + Clone + 'static>(
    machine: &CgmMachine,
    options: &PermuteOptions,
    make: impl Fn() -> Vec<T>,
) -> (Duration, Duration) {
    const REPS: usize = 3;
    std::hint::black_box(clone_based_permute_vec(machine, make()).len());
    std::hint::black_box(permute_vec(machine, make(), options).0.len());
    let mut clone_times = Vec::with_capacity(REPS);
    let mut move_times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let data = make();
        let started = Instant::now();
        std::hint::black_box(clone_based_permute_vec(machine, data).len());
        clone_times.push(started.elapsed());
        let data = make();
        let started = Instant::now();
        std::hint::black_box(permute_vec(machine, data, options).0.len());
        move_times.push(started.elapsed());
    }
    (median(clone_times), median(move_times))
}

/// Measures the clone-based versus the move-based exchange for a heap-heavy
/// payload (`String`) and a `Copy` payload (`u64`) at `n` items over `p`
/// processors.  The `String` row is where the move-based engine pays off:
/// the clone path duplicates every heap allocation on the send side.
pub fn exchange(n: usize, p: usize, seed: u64) -> Vec<ExchangeRow> {
    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
    let options = PermuteOptions::default();
    let mut rows = Vec::new();

    let (clone_elapsed, move_elapsed) = measure_exchange_pair(&machine, &options, || {
        (0..n)
            .map(|i| format!("item-{i:012}"))
            .collect::<Vec<String>>()
    });
    rows.push(ExchangeRow {
        payload: "String",
        n,
        procs: p,
        clone_elapsed,
        move_elapsed,
    });

    let (clone_elapsed, move_elapsed) =
        measure_exchange_pair(&machine, &options, || workload::identity_items(n));
    rows.push(ExchangeRow {
        payload: "u64",
        n,
        procs: p,
        clone_elapsed,
        move_elapsed,
    });

    rows
}

// ---------------------------------------------------------------------------
// E9 — per-call machine spawn vs the resident worker pool
// ---------------------------------------------------------------------------

/// One row of the E9 table: the same steady-state permutation loop measured
/// three ways — the idiomatic per-call API (machine spawned *and* buffers
/// allocated per call), the scratch-warm per-call path (machine spawned per
/// call, buffers recycled), and a resident session (spawned once, workers
/// parked between calls, buffers recycled).
#[derive(Debug, Clone)]
pub struct ResidentRow {
    /// Number of items permuted per call.
    pub n: usize,
    /// Number of virtual processors.
    pub procs: usize,
    /// Median per-call time of `Permuter::permute_in_place` — threads,
    /// channel fabric *and* intermediate buffers rebuilt every call.
    pub one_shot_elapsed: Duration,
    /// Median per-call time of `Permuter::permute_into` with a warm scratch
    /// — threads and channel fabric rebuilt every call, buffers recycled.
    pub spawn_warm_elapsed: Duration,
    /// Median per-call time of the resident session.
    pub resident_elapsed: Duration,
    /// Paired median of the per-repetition ratios `one_shot / resident`.
    pub speedup_paired: f64,
    /// Paired median of the per-repetition ratios `spawn_warm / resident`.
    pub warm_speedup_paired: f64,
}

impl ResidentRow {
    /// How many times faster the resident session is than the idiomatic
    /// per-call path it replaces (> 1.0 means faster).  This is the
    /// **paired median**: each repetition's one-shot time is divided by the
    /// resident time measured immediately after it, and the median of those
    /// ratios is reported — adjacent pairing cancels machine-load drift
    /// that a ratio of independent medians would absorb.
    pub fn speedup(&self) -> f64 {
        self.speedup_paired
    }

    /// Paired-median speedup over the scratch-warm per-call path —
    /// isolating the machine-startup share alone.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_speedup_paired
    }
}

/// Measures repeated same-shaped permutations on the per-call-spawn paths
/// versus a resident session, for every `(p, n)` in the grid.
///
/// The session bundles two amortizations: the machine startup (`p` thread
/// spawns, the `p²` channel fabric, the barrier — per call on the one-shot
/// paths) and the buffer recycling of [`cgp_core::PermuteScratch`].  The
/// `one_shot` column pays both per call, the `spawn_warm` column only the
/// startup, the `resident` column neither — so `speedup` is the end-to-end
/// win of switching to a session and `warm_speedup` its startup share.  All
/// paths are warmed first (allocator growth, page faults and the pool spawn
/// itself stay outside the clock), then timed repetitions alternate between
/// the paths and the per-path median is reported — the same paired protocol
/// as E8.
pub fn resident(ns: &[usize], ps: &[usize], seed: u64) -> Vec<ResidentRow> {
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            // Startup amortization is a fixed-size effect, so the small and
            // medium cells — where it is the story — get enough repetitions
            // for a stable median even on a busy host; the big memory-bound
            // cells stay cheap.
            let reps: usize = if n >= 500_000 { 9 } else { 41 };
            let permuter = cgp_core::Permuter::new(p).seed(seed);
            let mut spawn_scratch = cgp_core::PermuteScratch::new();
            let mut session = permuter.session::<u64>();
            // The permuted contents are irrelevant to the timing, so one
            // vector serves every repetition of all three paths.
            let mut data = workload::identity_items(n);

            // Warm-up: the scratches ratchet to their steady state.
            for _ in 0..2 {
                permuter.permute_in_place(&mut data);
                permuter.permute_into(&mut data, &mut spawn_scratch);
                session.permute_into(&mut data);
            }

            let mut one_shot_times = Vec::with_capacity(reps);
            let mut spawn_warm_times = Vec::with_capacity(reps);
            let mut resident_times = Vec::with_capacity(reps);
            for _ in 0..reps {
                let started = Instant::now();
                permuter.permute_in_place(&mut data);
                one_shot_times.push(started.elapsed());
                let started = Instant::now();
                permuter.permute_into(&mut data, &mut spawn_scratch);
                spawn_warm_times.push(started.elapsed());
                let started = Instant::now();
                session.permute_into(&mut data);
                resident_times.push(started.elapsed());
            }
            std::hint::black_box(&data);
            rows.push(ResidentRow {
                n,
                procs: p,
                speedup_paired: median_ratio(&one_shot_times, &resident_times),
                warm_speedup_paired: median_ratio(&spawn_warm_times, &resident_times),
                one_shot_elapsed: median(one_shot_times),
                spawn_warm_elapsed: median(spawn_warm_times),
                resident_elapsed: median(resident_times),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E10 — the staged two-job pipeline vs the fused single-job pipeline
// ---------------------------------------------------------------------------

/// One row of the E10 table: the same permutation measured through the
/// staged seed pipeline (matrix sampled as its own machine job, then the
/// exchange) and through today's fused single-job pipeline — one-shot and
/// on resident sessions.
#[derive(Debug, Clone)]
pub struct FusedRow {
    /// Number of items permuted.
    pub n: usize,
    /// Number of virtual processors.
    pub procs: usize,
    /// Median per-call time of the staged pipeline, one-shot (matrix
    /// machine + exchange machine per call).
    pub staged_one_shot: Duration,
    /// Median per-call time of the fused pipeline, one-shot (one machine
    /// per call).
    pub fused_one_shot: Duration,
    /// Median per-call time of the staged pipeline on a resident session
    /// (exchange on the pool, matrix still on a one-shot machine per call
    /// — the PR 3 session behaviour).
    pub staged_session: Duration,
    /// Median per-call time of the fused pipeline on a resident session
    /// (everything on the pool — zero spawns at steady state).
    pub fused_session: Duration,
    /// Paired median of the per-repetition ratios `staged / fused`,
    /// one-shot.
    pub one_shot_speedup_paired: f64,
    /// Paired median of the per-repetition ratios `staged / fused` on the
    /// sessions.
    pub session_speedup_paired: f64,
}

impl FusedRow {
    /// How many times faster the fused one-shot pipeline is (> 1.0 means
    /// fusing helped; paired per-repetition median).
    pub fn one_shot_speedup(&self) -> f64 {
        self.one_shot_speedup_paired
    }

    /// How many times faster the fused session is than the staged session
    /// (paired per-repetition median) — the cell the acceptance criterion
    /// reads, since sessions are where the per-call matrix machine of the
    /// staged pipeline hurts most.
    pub fn session_speedup(&self) -> f64 {
        self.session_speedup_paired
    }
}

/// Measures the staged versus the fused pipeline with the
/// `ParallelOptimal` backend (the backend for which the staged pipeline
/// spawns a whole extra machine per call) for every `(p, n)` in the grid.
///
/// Same paired protocol as E8/E9: both paths warmed first, then timed
/// repetitions alternate between the paths and per-path medians plus
/// paired per-repetition ratio medians are reported.
pub fn fused(ns: &[usize], ps: &[usize], seed: u64) -> Vec<FusedRow> {
    let backend = MatrixBackend::ParallelOptimal;
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            let reps: usize = if n >= 500_000 { 9 } else { 41 };
            let config = CgmConfig::new(p).with_seed(seed);
            let machine = CgmMachine::new(config);
            let options = PermuteOptions::with_backend(backend);
            let permuter = cgp_core::Permuter::new(p).seed(seed).backend(backend);
            let mut staged_session: crate::staged::StagedSession<u64> =
                crate::staged::StagedSession::new(config, options.clone());
            let mut fused_session = permuter.session::<u64>();
            let mut data = workload::identity_items(n);

            // Warm-up: allocator growth, page faults, pool spawns and
            // scratch ratchets stay outside the clock.
            for _ in 0..2 {
                data = crate::staged::staged_permute_vec(&machine, data, &options);
                permuter.permute_in_place(&mut data);
                staged_session.permute_into(&mut data);
                fused_session.permute_into(&mut data);
            }

            let mut staged_one_shot_times = Vec::with_capacity(reps);
            let mut fused_one_shot_times = Vec::with_capacity(reps);
            let mut staged_session_times = Vec::with_capacity(reps);
            let mut fused_session_times = Vec::with_capacity(reps);
            for _ in 0..reps {
                let started = Instant::now();
                data = crate::staged::staged_permute_vec(&machine, data, &options);
                staged_one_shot_times.push(started.elapsed());
                let started = Instant::now();
                permuter.permute_in_place(&mut data);
                fused_one_shot_times.push(started.elapsed());
                let started = Instant::now();
                staged_session.permute_into(&mut data);
                staged_session_times.push(started.elapsed());
                let started = Instant::now();
                fused_session.permute_into(&mut data);
                fused_session_times.push(started.elapsed());
            }
            std::hint::black_box(&data);
            rows.push(FusedRow {
                n,
                procs: p,
                one_shot_speedup_paired: median_ratio(
                    &staged_one_shot_times,
                    &fused_one_shot_times,
                ),
                session_speedup_paired: median_ratio(&staged_session_times, &fused_session_times),
                staged_one_shot: median(staged_one_shot_times),
                fused_one_shot: median(fused_one_shot_times),
                staged_session: median(staged_session_times),
                fused_session: median(fused_session_times),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E11 — multi-tenant service throughput vs a serialized single session
// ---------------------------------------------------------------------------

/// One row of the E11 table: the same client population served by a
/// [`cgp_core::PermutationService`] fleet and by a single shared
/// [`cgp_core::PermutationSession`] behind a mutex (every client
/// serializes on it — the do-nothing alternative a service replaces).
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Which client population shape this row measured: `"uniform"` (every
    /// client submits the same share), `"skewed"` (one tenant submits half
    /// of all jobs — the fair-admission stress), or `"tiny"` (uniform
    /// clients, payloads small enough that batch coalescing carries the
    /// throughput).
    pub scenario: &'static str,
    /// Items per job.
    pub n: usize,
    /// Virtual processors per machine.
    pub procs: usize,
    /// Fleet size.
    pub machines: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total jobs served per measured repetition (split evenly over the
    /// clients).
    pub jobs: usize,
    /// Median wall-clock for the whole client population on the service.
    pub service_elapsed: Duration,
    /// Median wall-clock for the same population serializing on one
    /// session.
    pub serialized_elapsed: Duration,
    /// Paired median of the per-repetition ratios `serialized / service`.
    pub speedup_vs_serialized_paired: f64,
}

impl ServiceRow {
    /// Aggregate service throughput, jobs per second.
    pub fn throughput(&self) -> f64 {
        self.jobs as f64 / self.service_elapsed.as_secs_f64().max(1e-12)
    }

    /// Aggregate throughput of the serialized-session contrast.
    pub fn serialized_throughput(&self) -> f64 {
        self.jobs as f64 / self.serialized_elapsed.as_secs_f64().max(1e-12)
    }

    /// How many times faster the service serves this population than the
    /// single serialized session (> 1.0 means the fleet helps; paired
    /// per-repetition median).
    pub fn speedup_vs_serialized(&self) -> f64 {
        self.speedup_vs_serialized_paired
    }
}

/// Drives one client thread per entry of `jobs_per_client` (client `i`
/// makes `jobs_per_client[i]` blocking calls) through `serve` and returns
/// the population wall-clock.
fn drive_clients(
    jobs_per_client: &[usize],
    n: usize,
    serve: &(impl Fn(usize, Vec<u64>) -> Vec<u64> + Sync),
) -> Duration {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (client, &jobs) in jobs_per_client.iter().enumerate() {
            scope.spawn(move || {
                let mut data = workload::identity_items(n);
                for _ in 0..jobs {
                    data = serve(client, data);
                }
                std::hint::black_box(&data);
            });
        }
    });
    started.elapsed()
}

/// Measures one `(scenario, clients, machines)` cell: the client
/// population (client `i` owns `jobs_per_client[i]` jobs) served by a
/// fleet of `machines`, against the same population serializing on one
/// shared session.  Both substrates are built once and warmed, then timed
/// repetitions alternate between them (the paired protocol of E8–E10).
fn service_cell(
    scenario: &'static str,
    n: usize,
    procs: usize,
    machines: usize,
    jobs_per_client: &[usize],
    seed: u64,
) -> ServiceRow {
    const REPS: usize = 5;
    let clients = jobs_per_client.len();
    let jobs: usize = jobs_per_client.iter().sum();
    let permuter = cgp_core::Permuter::new(procs).seed(seed);
    let service = permuter.service_sized::<u64>(machines, clients.max(2 * machines));
    let handles: Vec<cgp_core::ServiceHandle<u64>> =
        (0..clients).map(|_| service.handle()).collect();
    let session = Mutex::new(permuter.session::<u64>());

    let on_service =
        |client: usize, data: Vec<u64>| handles[client].permute(data).expect("service job").0;
    let on_serialized = |_client: usize, mut data: Vec<u64>| {
        session.lock().permute_into(&mut data);
        data
    };

    // Warm both substrates: pools spawn, scratches ratchet, every machine
    // of the fleet serves at least once.
    let warm: Vec<usize> = jobs_per_client.iter().map(|&j| j.min(2)).collect();
    drive_clients(&warm, n, &on_service);
    drive_clients(&warm, n, &on_serialized);

    let mut service_times = Vec::with_capacity(REPS);
    let mut serialized_times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        service_times.push(drive_clients(jobs_per_client, n, &on_service));
        serialized_times.push(drive_clients(jobs_per_client, n, &on_serialized));
    }
    let metrics = service.shutdown();
    assert_eq!(
        metrics.jobs_failed, 0,
        "benchmark jobs must not fail (scenario={scenario}, clients={clients}, \
         machines={machines})"
    );
    ServiceRow {
        scenario,
        n,
        procs,
        machines,
        clients,
        jobs,
        speedup_vs_serialized_paired: median_ratio(&serialized_times, &service_times),
        service_elapsed: median(service_times),
        serialized_elapsed: median(serialized_times),
    }
}

/// Measures the multi-tenant service against the serialized-session
/// baseline for every `(clients, machines)` cell of the grid, with a
/// **uniform** client population: `jobs_total` split evenly over the
/// clients, so every cell serves the same number of jobs (see
/// `service_cell` for the paired measurement protocol).
pub fn service(
    n: usize,
    procs: usize,
    clients_grid: &[usize],
    machines_grid: &[usize],
    jobs_total: usize,
    seed: u64,
) -> Vec<ServiceRow> {
    let mut rows = Vec::new();
    for &clients in clients_grid {
        let jobs_per_client = vec![(jobs_total / clients).max(1); clients];
        for &machines in machines_grid {
            rows.push(service_cell(
                "uniform",
                n,
                procs,
                machines,
                &jobs_per_client,
                seed,
            ));
        }
    }
    rows
}

/// Payload size of the `"tiny"` scenario's jobs: small enough that the
/// per-job dispatch overhead (wake, fence, completion rendezvous) dwarfs
/// the permutation work, so throughput lives or dies on batch coalescing.
pub const TINY_JOB_N: usize = 64;

/// Measures the two scheduler-stress populations at the highest committed
/// concurrency, for every fleet size of the grid:
///
/// * `"skewed"` — one tenant submits **half of all jobs** while the other
///   `clients - 1` split the rest: the fair-admission stress (a flooding
///   tenant must not collapse aggregate throughput).
/// * `"tiny"` — a uniform population of [`TINY_JOB_N`]-item jobs: the
///   coalescing showcase, where batching consecutive small jobs into one
///   fenced pool submission is the only way to amortize dispatch overhead.
pub fn service_scenarios(
    n: usize,
    procs: usize,
    clients: usize,
    machines_grid: &[usize],
    jobs_total: usize,
    seed: u64,
) -> Vec<ServiceRow> {
    let mut rows = Vec::new();

    // Skewed: tenant 0 owns half the jobs, everyone else splits the rest.
    let mut skewed = vec![0usize; clients];
    skewed[0] = (jobs_total / 2).max(1);
    if clients > 1 {
        let rest = ((jobs_total - skewed[0]) / (clients - 1)).max(1);
        for slot in skewed.iter_mut().skip(1) {
            *slot = rest;
        }
    }
    for &machines in machines_grid {
        rows.push(service_cell("skewed", n, procs, machines, &skewed, seed));
    }

    // Tiny: uniform population, coalescing-sized payloads.
    let tiny = vec![(jobs_total / clients).max(1); clients];
    for &machines in machines_grid {
        rows.push(service_cell(
            "tiny", TINY_JOB_N, procs, machines, &tiny, seed,
        ));
    }
    rows
}

// ---------------------------------------------------------------------------
// E12 — local-shuffle engine crossover (Fisher–Yates vs bucketed scatter)
// ---------------------------------------------------------------------------

/// One row of the E12 table: the same `u64` payload permuted once per
/// [`LocalShuffle`] engine, either as a raw single-block shuffle
/// (`scope = "raw"`, the engine alone on one thread) or as a full
/// Algorithm 1 permutation on a resident session (`scope = "session"`).
#[derive(Debug, Clone)]
pub struct ShuffleRow {
    /// `"raw"` (one block, one thread, the engine alone) or `"session"`
    /// (the whole pipeline on a resident worker pool).
    pub scope: &'static str,
    /// Number of items shuffled (raw) or permuted (session).
    pub n: usize,
    /// Number of virtual processors (1 for raw rows).
    pub procs: usize,
    /// Median per-call time with [`LocalShuffle::FisherYates`].
    pub fisher_yates: Duration,
    /// Median per-call time with the explicit bucketed engine,
    /// [`LocalShuffle::bucketed_for::<u64>()`](LocalShuffle::bucketed_for).
    pub bucketed: Duration,
    /// Median per-call time with [`LocalShuffle::Auto`].
    pub auto: Duration,
    /// Paired per-repetition median of `fisher_yates / bucketed`.
    pub bucketed_speedup_paired: f64,
    /// Paired per-repetition median of `fisher_yates / auto`.
    pub auto_speedup_paired: f64,
}

impl ShuffleRow {
    /// How many times faster the bucketed scatter engine is than
    /// Fisher–Yates (> 1.0 past the memory crossover, < 1.0 while the
    /// payload is cache-resident and the scatter traffic is pure
    /// overhead).
    pub fn bucketed_speedup(&self) -> f64 {
        self.bucketed_speedup_paired
    }

    /// How many times faster [`LocalShuffle::Auto`] is than Fisher–Yates.
    /// Below the [`cgp_core::AUTO_CROSSOVER_BYTES`] crossover `Auto`
    /// resolves to Fisher–Yates, so this hovers around 1.0 there by
    /// construction; past it, it should track [`Self::bucketed_speedup`].
    pub fn auto_speedup(&self) -> f64 {
        self.auto_speedup_paired
    }
}

/// The three engines E12 compares, in the order of the row columns.
fn shuffle_engines() -> [LocalShuffle; 3] {
    [
        LocalShuffle::FisherYates,
        LocalShuffle::bucketed_for::<u64>(),
        LocalShuffle::Auto,
    ]
}

fn shuffle_reps(n: usize) -> usize {
    if n >= 16_000_000 {
        5
    } else {
        9
    }
}

/// One raw-scope row: the engine alone, repeatedly re-shuffling the same
/// `u64` block on one thread.  Same paired protocol as E8–E10: every
/// engine warmed once untimed (allocator growth, page faults and scratch
/// ratchets stay outside the clock), then timed repetitions alternate
/// between the engines.
fn shuffle_raw_row(n: usize, seed: u64) -> ShuffleRow {
    let engines = shuffle_engines();
    let reps = shuffle_reps(n);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut data = workload::identity_items(n);
    let mut scratches = [
        BucketScratch::new(),
        BucketScratch::new(),
        BucketScratch::new(),
    ];
    for (engine, scratch) in engines.iter().zip(scratches.iter_mut()) {
        engine.shuffle_vec_with(&mut rng, &mut data, scratch);
    }
    let mut times: [Vec<Duration>; 3] = [
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
    ];
    for _ in 0..reps {
        for ((engine, scratch), samples) in engines
            .iter()
            .zip(scratches.iter_mut())
            .zip(times.iter_mut())
        {
            let started = Instant::now();
            engine.shuffle_vec_with(&mut rng, &mut data, scratch);
            samples.push(started.elapsed());
        }
    }
    std::hint::black_box(&data);
    let [fy, bucketed, auto] = times;
    ShuffleRow {
        scope: "raw",
        n,
        procs: 1,
        bucketed_speedup_paired: median_ratio(&fy, &bucketed),
        auto_speedup_paired: median_ratio(&fy, &auto),
        fisher_yates: median(fy),
        bucketed: median(bucketed),
        auto: median(auto),
    }
}

/// One session-scope row: the whole Algorithm 1 pipeline on a resident
/// worker pool, once per engine, same paired protocol as the raw rows.
/// `Auto` resolves against the *job total* here (see
/// [`cgp_core::PermuteOptions::local_shuffle`]), so a job whose combined
/// blocks exceed the crossover buckets even when each worker's block alone
/// would not.
fn shuffle_session_row(n: usize, p: usize, seed: u64) -> ShuffleRow {
    let engines = shuffle_engines();
    let reps = shuffle_reps(n);
    let mut sessions: Vec<_> = engines
        .iter()
        .map(|&engine| {
            cgp_core::Permuter::new(p)
                .seed(seed)
                .local_shuffle(engine)
                .session::<u64>()
        })
        .collect();
    let mut data = workload::identity_items(n);
    for session in &mut sessions {
        session.permute_into(&mut data);
    }
    let mut times: [Vec<Duration>; 3] = [
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
    ];
    for _ in 0..reps {
        for (session, samples) in sessions.iter_mut().zip(times.iter_mut()) {
            let started = Instant::now();
            session.permute_into(&mut data);
            samples.push(started.elapsed());
        }
    }
    std::hint::black_box(&data);
    let [fy, bucketed, auto] = times;
    ShuffleRow {
        scope: "session",
        n,
        procs: p,
        bucketed_speedup_paired: median_ratio(&fy, &bucketed),
        auto_speedup_paired: median_ratio(&fy, &auto),
        fisher_yates: median(fy),
        bucketed: median(bucketed),
        auto: median(auto),
    }
}

/// Measures the Fisher–Yates / bucketed-scatter / `Auto` local-shuffle
/// engines across a size grid — raw single-thread shuffles at `raw_ns`
/// and full resident-session permutations at `session_ns` with `p`
/// virtual processors — and reports per-engine medians plus paired
/// per-repetition speedup ratios against Fisher–Yates.
pub fn shuffle_crossover(
    raw_ns: &[usize],
    session_ns: &[usize],
    p: usize,
    seed: u64,
) -> Vec<ShuffleRow> {
    let mut rows = Vec::new();
    for &n in raw_ns {
        rows.push(shuffle_raw_row(n, seed));
    }
    for &n in session_ns {
        rows.push(shuffle_session_row(n, p, seed));
    }
    rows
}

// ---------------------------------------------------------------------------
// E13 — transport substrate overhead (threads vs process)
// ---------------------------------------------------------------------------

/// One row of the E13 table: the full Algorithm 1 session pipeline at one
/// `(n, p)` point, once per transport substrate.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Number of items permuted per call.
    pub n: usize,
    /// Number of virtual processors (= mailbox children on the process
    /// transport).
    pub procs: usize,
    /// Median per-call time on [`TransportKind::Threads`].
    pub threads: Duration,
    /// Median per-call time on [`TransportKind::Process`].
    pub process: Duration,
    /// Paired per-repetition median of `threads / process` — the process
    /// transport's *speedup* against the in-process fabric.  Below 1.0 by
    /// construction (every envelope is wire-coded and crosses two Unix
    /// domain sockets); the `--check` gate holds this ratio, so a change
    /// that makes inter-process permutations disproportionately slower
    /// fails CI.
    pub process_vs_threads_paired: f64,
    /// Frame bytes the process transport put on the wire for one call
    /// (both planes; the thread transport frames nothing).
    pub wire_bytes: u64,
}

impl TransportRow {
    /// How many times the process transport *slows down* the same seeded
    /// session permutation (`process / threads`, ≥ 1 in practice) — the
    /// human-readable inverse of the gated ratio.
    pub fn process_overhead(&self) -> f64 {
        1.0 / self.process_vs_threads_paired.max(1e-12)
    }
}

/// Measures the threads-vs-process substrate overhead of the full session
/// pipeline across an `(n, p)` grid: for each point, one resident session
/// per [`TransportKind`] (children spawned once, outside the clock), an
/// untimed warmup each, then alternating timed repetitions.  The engine's
/// random streams never depend on the substrate, so both sessions compute
/// the identical permutation — the pairs time pure transport overhead.
pub fn transport_overhead(ns: &[usize], ps: &[usize], seed: u64) -> Vec<TransportRow> {
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            rows.push(transport_row(n, p, seed));
        }
    }
    rows
}

fn transport_row(n: usize, p: usize, seed: u64) -> TransportRow {
    let reps = if n >= 1_000_000 { 5 } else { 9 };
    let mut sessions: Vec<_> = [TransportKind::Threads, TransportKind::Process]
        .into_iter()
        .map(|kind| {
            cgp_core::Permuter::new(p)
                .seed(seed)
                .transport(kind)
                .session::<u64>()
        })
        .collect();
    let mut data = workload::identity_items(n);
    let mut wire_bytes = 0;
    for session in &mut sessions {
        let report = session.permute_into(&mut data);
        wire_bytes = report.exchange_metrics.wire_volume() + report.matrix_metrics.wire_volume();
    }
    let mut times: [Vec<Duration>; 2] = [Vec::with_capacity(reps), Vec::with_capacity(reps)];
    for _ in 0..reps {
        for (session, samples) in sessions.iter_mut().zip(times.iter_mut()) {
            let started = Instant::now();
            session.permute_into(&mut data);
            samples.push(started.elapsed());
        }
    }
    std::hint::black_box(&data);
    let [threads, process] = times;
    TransportRow {
        n,
        procs: p,
        process_vs_threads_paired: median_ratio(&threads, &process),
        threads: median(threads),
        process: median(process),
        wire_bytes,
    }
}

// ---------------------------------------------------------------------------
// E14 — darts vs. Gustedt engine crossover
// ---------------------------------------------------------------------------

/// One row of the E14 table: the same permutation job run once per engine
/// at one `(scope, n, p, target_factor)` point.
///
/// `scope = "index"` samples an index permutation of `0..n` through the
/// buffer-reusing session entry (`sample_permutation_into`) — the dart
/// engine's native mode, and the Gustedt engine's identity-vector path.
/// `scope = "payload"` permutes 32-byte items (`[u64; 4]`) through
/// `permute_into` — the shape that stresses the two engines' opposite
/// cost structures (Gustedt ships the payload through the exchange, darts
/// throws indices and pays one local gather).
#[derive(Debug, Clone)]
pub struct DartsRow {
    /// `"index"` or `"payload"` (see above).
    pub scope: &'static str,
    /// Number of items permuted per call.
    pub n: usize,
    /// Number of virtual processors.
    pub procs: usize,
    /// The dart engine's board oversizing factor for this row.
    pub target_factor: u32,
    /// Median per-call time of the Gustedt engine.
    pub gustedt: Duration,
    /// Median per-call time of the dart engine.
    pub darts: Duration,
    /// Paired per-repetition median of `gustedt / darts` — above 1.0 the
    /// darts engine wins at this point.  This is the `--check`-gated
    /// ratio: it locates the crossover (or documents single-engine
    /// dominance) and guards it against regressions on both engines.
    pub darts_speedup_paired: f64,
}

impl DartsRow {
    /// How many times faster the dart engine ran than the Gustedt engine
    /// at this grid point (> 1.0 ⇒ darts wins).
    pub fn darts_speedup(&self) -> f64 {
        self.darts_speedup_paired
    }
}

fn darts_reps(n: usize) -> usize {
    if n >= 4_000_000 {
        5
    } else {
        9
    }
}

/// One index-scope row: both engines sampling `0..n` on resident sessions
/// through the buffer-reusing entry.  Same paired protocol as E8–E13:
/// one untimed warmup per engine (scratch ratchets, allocator growth and
/// page faults stay outside the clock), then alternating timed reps.
fn darts_index_row(n: usize, p: usize, target_factor: u32, seed: u64) -> DartsRow {
    let reps = darts_reps(n);
    let permuter = cgp_core::Permuter::new(p).seed(seed);
    let mut gustedt_session = permuter.session::<u64>();
    let mut darts_session = permuter
        .clone()
        .algorithm(Algorithm::Darts { target_factor })
        .session::<u64>();
    let mut out = Vec::new();
    gustedt_session.sample_permutation_into(n, &mut out);
    darts_session.sample_permutation_into(n, &mut out);
    let mut gustedt_times = Vec::with_capacity(reps);
    let mut darts_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        gustedt_session.sample_permutation_into(n, &mut out);
        gustedt_times.push(started.elapsed());
        std::hint::black_box(&out);
        let started = Instant::now();
        darts_session.sample_permutation_into(n, &mut out);
        darts_times.push(started.elapsed());
        std::hint::black_box(&out);
    }
    DartsRow {
        scope: "index",
        n,
        procs: p,
        target_factor,
        darts_speedup_paired: median_ratio(&gustedt_times, &darts_times),
        gustedt: median(gustedt_times),
        darts: median(darts_times),
    }
}

/// One payload-scope row: both engines permuting 32-byte items in place on
/// resident sessions.
fn darts_payload_row(n: usize, p: usize, target_factor: u32, seed: u64) -> DartsRow {
    let reps = darts_reps(n);
    let permuter = cgp_core::Permuter::new(p).seed(seed);
    let mut gustedt_session = permuter.session::<[u64; 4]>();
    let mut darts_session = permuter
        .clone()
        .algorithm(Algorithm::Darts { target_factor })
        .session::<[u64; 4]>();
    let mut data: Vec<[u64; 4]> = (0..n as u64).map(|i| [i; 4]).collect();
    gustedt_session.permute_into(&mut data);
    darts_session.permute_into(&mut data);
    let mut gustedt_times = Vec::with_capacity(reps);
    let mut darts_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        gustedt_session.permute_into(&mut data);
        gustedt_times.push(started.elapsed());
        std::hint::black_box(&data);
        let started = Instant::now();
        darts_session.permute_into(&mut data);
        darts_times.push(started.elapsed());
        std::hint::black_box(&data);
    }
    DartsRow {
        scope: "payload",
        n,
        procs: p,
        target_factor,
        darts_speedup_paired: median_ratio(&gustedt_times, &darts_times),
        gustedt: median(gustedt_times),
        darts: median(darts_times),
    }
}

/// Races the dart engine against the Gustedt pipeline over an
/// `n × p × target_factor` grid, in both the index and the 32-byte
/// payload scope, and reports per-engine medians plus the paired
/// per-repetition speedup ratio (`gustedt / darts`).
pub fn darts_crossover(ns: &[usize], ps: &[usize], factors: &[u32], seed: u64) -> Vec<DartsRow> {
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            for &factor in factors {
                rows.push(darts_index_row(n, p, factor, seed));
                rows.push(darts_payload_row(n, p, factor, seed));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E15 — wire front-end overhead (socket round-trip vs in-process handle)
// ---------------------------------------------------------------------------

/// One row of the E15 table: the same blocking `u64` permutation job
/// submitted through an in-process [`cgp_core::ServiceHandle`] and through
/// a [`cgp_server::Client`] over a socket, against the **same**
/// [`cgp_core::ServiceConfig`].
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Which socket family the wire path used: `"uds"` or `"tcp"`.
    pub transport: &'static str,
    /// Items per job.
    pub n: usize,
    /// Virtual processors per machine.
    pub procs: usize,
    /// Median per-job latency through the in-process handle.
    pub in_process: Duration,
    /// Median per-job latency through the wire client (connect once,
    /// outside the clock; each repetition is one submit + result
    /// round-trip).
    pub wire: Duration,
    /// Paired per-repetition median of `in_process / wire` — the wire
    /// path's *speedup* against the in-process handle.  Below 1.0 by
    /// construction (every job is frame-encoded twice and crosses the
    /// socket twice); the `--check` gate holds this ratio, so a change
    /// that makes the socket front-end disproportionately slower fails CI.
    pub wire_vs_in_process_paired: f64,
}

impl WireRow {
    /// How many times the wire front-end *slows down* the same job
    /// (`wire / in_process`, ≥ 1 in practice) — the human-readable inverse
    /// of the gated ratio.
    pub fn wire_overhead(&self) -> f64 {
        1.0 / self.wire_vs_in_process_paired.max(1e-12)
    }
}

fn wire_reps(n: usize) -> usize {
    if n >= 1_000_000 {
        5
    } else {
        9
    }
}

fn wire_row(transport: &'static str, n: usize, procs: usize, seed: u64) -> WireRow {
    use cgp_server::{Client, WireServer};

    let reps = wire_reps(n);
    // One machine on both sides: the row prices the protocol, not a fleet
    // imbalance.  Determinism makes the comparison honest — the wire job
    // and the in-process job compute the byte-identical permutation.
    let config = cgp_core::service::ServiceConfig::new(procs)
        .machines(1)
        .seed(seed);
    let options = PermuteOptions::default();

    let service = cgp_core::PermutationService::<u64>::new(config, options.clone());
    let handle = service.handle();

    let (server, mut client): (WireServer<u64>, Client<u64>) = match transport {
        "tcp" => {
            let server = WireServer::bind_tcp("127.0.0.1:0", config, options).expect("bind tcp");
            let addr = server.local_addr().expect("tcp address");
            (server, Client::connect_tcp(addr).expect("connect tcp"))
        }
        _ => {
            let path = std::env::temp_dir()
                .join(format!("cgp-bench-wire-{}-{n}.sock", std::process::id()));
            let server = WireServer::bind_uds(&path, config, options).expect("bind uds");
            (server, Client::connect_uds(&path).expect("connect uds"))
        }
    };

    let data = workload::identity_items(n);
    // Warm both paths (pool spawn, scratch ratchets, socket buffers).
    let reference = handle.permute(data.clone()).expect("in-process job").0;
    let via_wire = client.permute(&data).expect("wire job");
    assert_eq!(via_wire, reference, "wire and in-process jobs must agree");

    let mut in_process_times = Vec::with_capacity(reps);
    let mut wire_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        std::hint::black_box(
            handle
                .permute(data.clone())
                .expect("in-process job")
                .0
                .len(),
        );
        in_process_times.push(started.elapsed());
        let started = Instant::now();
        std::hint::black_box(client.permute(&data).expect("wire job").len());
        wire_times.push(started.elapsed());
    }
    drop(client);
    server.shutdown();
    service.shutdown();
    WireRow {
        transport,
        n,
        procs,
        wire_vs_in_process_paired: median_ratio(&in_process_times, &wire_times),
        in_process: median(in_process_times),
        wire: median(wire_times),
    }
}

/// Measures the wire front-end against the in-process handle for every
/// `n` in the grid, on both socket families.  Same paired protocol as
/// E8–E14: both paths warmed untimed, then alternating timed repetitions
/// with per-path medians and a paired per-repetition ratio median.
pub fn wire_overhead(ns: &[usize], procs: usize, seed: u64) -> Vec<WireRow> {
    let mut rows = Vec::new();
    for &n in ns {
        for transport in ["uds", "tcp"] {
            rows.push(wire_row(transport, n, procs, seed));
        }
    }
    rows
}

/// Helper: exhaustive uniformity p-value at n = 4 for an arbitrary generator.
fn uniformity_p_for(generate: impl FnMut(u64) -> Vec<u64>) -> f64 {
    test_uniformity(4, recommended_samples(4, 120), generate)
        .chi_square
        .p_value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_cost_rows_are_sane() {
        let rows = seq_cost(&[10_000, 50_000], 1);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.shuffle_ns_per_item > 0.0);
            assert!(row.memory_share() <= 1.0);
            assert!(row.cycles_per_item(1.0) > 0.0);
        }
    }

    #[test]
    fn rng_draw_rows_cover_all_samplers() {
        let rows = rng_draws(200, 3);
        let (avg, max) = rng_draws_aggregate(&rows, SamplerKind::Adaptive);
        assert!(
            (1.0..6.0).contains(&avg),
            "adaptive average {avg} out of range"
        );
        assert!(max >= 1);
        assert!(rows.iter().any(|r| r.sampler == SamplerKind::Hrua));
        assert!(rows.iter().any(|r| r.sampler == SamplerKind::Inverse));
    }

    #[test]
    fn scaling_rows_include_reference() {
        let rows = scaling(20_000, &[1, 2, 4], MatrixBackend::Sequential, 5);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].procs, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        for r in &rows[1..] {
            assert!(r.max_comm_volume > 0);
            assert!(r.overhead_factor > 0.0);
        }
    }

    #[test]
    fn matrix_cost_covers_all_backends() {
        let rows = matrix_cost(&[4, 8], 100, 7);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            match r.backend {
                MatrixBackend::Sequential | MatrixBackend::Recursive => {
                    assert!(r.draws.is_some());
                    assert!(r.max_comm_volume.is_none());
                }
                _ => {
                    assert!(r.draws.is_none());
                    assert!(r.max_comm_volume.is_some());
                }
            }
        }
    }

    #[test]
    fn crossover_rows_have_both_phases() {
        let rows = crossover(4, &[5_000, 20_000], 9);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.matrix_share() >= 0.0 && r.matrix_share() <= 1.0);
        }
    }

    #[test]
    fn uniformity_experiment_smoke() {
        let rows = uniformity(3, 40, 2);
        // Fisher-Yates + 4 backends (+ possibly the fixed-matrix baseline).
        assert!(rows.len() >= 5);
        for r in &rows {
            if r.generator.contains("Algorithm 1") || r.generator.contains("Fisher") {
                assert!(r.p_value > 1e-4, "{} rejected: {r:?}", r.generator);
            }
        }
    }

    #[test]
    fn clone_reference_matches_the_move_based_engine() {
        // The E8 baseline replays the seed's clone-based exchange with the
        // same random streams, so it must produce the identical permutation
        // — anything else would mean the refactor changed semantics.
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(77));
        let data: Vec<u64> = workload::identity_items(2_000);
        let cloned = clone_based_permute_vec(&machine, data.clone());
        let (moved, _) = permute_vec(&machine, data, &PermuteOptions::default());
        assert_eq!(cloned, moved);
    }

    #[test]
    fn exchange_experiment_smoke() {
        let rows = exchange(4_000, 4, 13);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].payload, "String");
        for r in &rows {
            assert_eq!(r.n, 4_000);
            assert_eq!(r.procs, 4);
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn resident_experiment_smoke() {
        let rows = resident(&[2_000], &[2, 4], 19);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.n, 2_000);
            assert!(r.one_shot_elapsed > Duration::ZERO);
            assert!(r.spawn_warm_elapsed > Duration::ZERO);
            assert!(r.resident_elapsed > Duration::ZERO);
            assert!(r.speedup() > 0.0);
            assert!(r.warm_speedup() > 0.0);
        }
    }

    #[test]
    fn fused_experiment_smoke() {
        let rows = fused(&[2_000], &[2, 4], 23);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.n, 2_000);
            assert!(r.staged_one_shot > Duration::ZERO);
            assert!(r.fused_one_shot > Duration::ZERO);
            assert!(r.staged_session > Duration::ZERO);
            assert!(r.fused_session > Duration::ZERO);
            assert!(r.one_shot_speedup() > 0.0);
            assert!(r.session_speedup() > 0.0);
        }
    }

    #[test]
    fn service_experiment_smoke() {
        let rows = service(800, 2, &[1, 3], &[1, 2], 6, 31);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.scenario, "uniform");
            assert_eq!(r.n, 800);
            assert_eq!(r.procs, 2);
            assert!(r.jobs >= 6);
            assert!(r.service_elapsed > Duration::ZERO);
            assert!(r.serialized_elapsed > Duration::ZERO);
            assert!(r.throughput() > 0.0);
            assert!(r.speedup_vs_serialized() > 0.0);
        }
    }

    #[test]
    fn service_scenarios_smoke() {
        let rows = service_scenarios(800, 2, 3, &[1, 2], 8, 31);
        assert_eq!(rows.len(), 4);
        let skewed: Vec<_> = rows.iter().filter(|r| r.scenario == "skewed").collect();
        let tiny: Vec<_> = rows.iter().filter(|r| r.scenario == "tiny").collect();
        assert_eq!(skewed.len(), 2);
        assert_eq!(tiny.len(), 2);
        for r in &skewed {
            assert_eq!(r.n, 800);
            assert_eq!(r.clients, 3);
            // Tenant 0 owns half the jobs, the other two split the rest.
            assert_eq!(r.jobs, 4 + 2 + 2);
        }
        for r in &tiny {
            assert_eq!(r.n, TINY_JOB_N);
            assert!(r.throughput() > 0.0);
        }
    }

    #[test]
    fn shuffle_crossover_experiment_smoke() {
        let rows = shuffle_crossover(&[4_096], &[2_048], 2, 17);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scope, "raw");
        assert_eq!(rows[0].procs, 1);
        assert_eq!(rows[1].scope, "session");
        assert_eq!(rows[1].procs, 2);
        for r in &rows {
            assert!(r.fisher_yates > Duration::ZERO);
            assert!(r.bucketed > Duration::ZERO);
            assert!(r.auto > Duration::ZERO);
            assert!(r.bucketed_speedup() > 0.0);
            assert!(r.auto_speedup() > 0.0);
        }
    }

    #[test]
    fn darts_crossover_experiment_smoke() {
        let rows = darts_crossover(&[2_048], &[1, 2], &[2], 17);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].scope, "index");
        assert_eq!(rows[1].scope, "payload");
        assert_eq!(rows[0].procs, 1);
        assert_eq!(rows[2].procs, 2);
        for r in &rows {
            assert_eq!(r.n, 2_048);
            assert_eq!(r.target_factor, 2);
            assert!(r.gustedt > Duration::ZERO);
            assert!(r.darts > Duration::ZERO);
            assert!(r.darts_speedup() > 0.0);
        }
    }

    #[test]
    fn wire_overhead_experiment_smoke() {
        let rows = wire_overhead(&[2_000], 2, 29);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].transport, "uds");
        assert_eq!(rows[1].transport, "tcp");
        for r in &rows {
            assert_eq!(r.n, 2_000);
            assert_eq!(r.procs, 2);
            assert!(r.in_process > Duration::ZERO);
            assert!(r.wire > Duration::ZERO);
            assert!(r.wire_overhead() > 0.0);
        }
    }

    #[test]
    fn baselines_experiment_smoke() {
        let rows = baselines(512, 2, 11);
        assert!(rows.len() >= 3);
        let alg1 = &rows[0];
        assert!(alg1.method.contains("Algorithm 1"));
        assert!(alg1.uniformity_p_value.unwrap() > 1e-4);
        let fixed = rows.iter().find(|r| r.method.contains("fixed matrix"));
        if let Some(fixed) = fixed {
            assert!(fixed.uniformity_p_value.unwrap() < 1e-4);
        }
    }
}
