//! Criterion bench for experiment E9: per-call machine spawn vs the
//! resident worker pool.
//!
//! One-shot `permute_into` rebuilds the machine on every call — `p` OS
//! thread spawns plus the `p²` channel fabric — while a
//! [`cgp_core::PermutationSession`] wakes parked resident workers.  Both
//! paths recycle their buffers through a scratch, so the timed delta is the
//! startup work alone.  Measured at the acceptance-criteria point `p = 8,
//! n = 1e5` plus a smaller `n = 1e4` where the startup share is larger
//! still.  `cargo run -p cgp-bench --bin exp_resident` snapshots the same
//! comparison into `BENCH_resident.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_core::{PermuteScratch, Permuter};

const P: usize = 8;

fn bench_resident(c: &mut Criterion) {
    for n in [10_000usize, 100_000] {
        let mut group = c.benchmark_group(format!("e9_resident/n={n}"));
        group.warm_up_time(Duration::from_millis(500));
        group.measurement_time(Duration::from_secs(3));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        let permuter = Permuter::new(P).seed(1);

        let mut data: Vec<u64> = (0..n as u64).collect();
        group.bench_function(BenchmarkId::new("per_call_one_shot", P), |b| {
            b.iter(|| {
                permuter.permute_in_place(&mut data);
                data.len()
            });
        });

        let mut scratch = PermuteScratch::new();
        group.bench_function(BenchmarkId::new("per_call_spawn_warm", P), |b| {
            b.iter(|| {
                permuter.permute_into(&mut data, &mut scratch);
                data.len()
            });
        });

        let mut session = permuter.session::<u64>();
        group.bench_function(BenchmarkId::new("resident_session", P), |b| {
            b.iter(|| {
                session.permute_into(&mut data);
                data.len()
            });
        });

        group.finish();
    }
}

criterion_group!(benches, bench_resident);
criterion_main!(benches);
