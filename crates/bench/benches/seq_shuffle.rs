//! Criterion bench for experiment E1: cost per item of the sequential
//! reference algorithm (Fisher–Yates) and of the memory access patterns that
//! bound it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_core::cache_aware::{bucketed_shuffle, default_bucket_items};
use cgp_core::fisher_yates_shuffle;
use cgp_rng::{Pcg64, RandomExt};

fn bench_seq_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_seq_shuffle");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[100_000usize, 1_000_000, 4_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fisher_yates", n), &n, |b, &n| {
            let mut rng = Pcg64::seed_from_u64(1);
            let mut data: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                fisher_yates_shuffle(&mut rng, &mut data);
                std::hint::black_box(data.first().copied())
            });
        });
        group.bench_with_input(BenchmarkId::new("rng_only", n), &n, |b, &n| {
            // Lower bound: the random-number generation alone.
            let mut rng = Pcg64::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0u64;
                for i in (1..n).rev() {
                    acc = acc.wrapping_add(rng.gen_range_u64((i + 1) as u64));
                }
                std::hint::black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential_pass", n), &n, |b, &n| {
            // Lower bound: a purely sequential pass over the same memory.
            let data: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                let mut acc = 0u64;
                for &x in &data {
                    acc = acc.wrapping_add(x);
                }
                std::hint::black_box(acc)
            });
        });
        // §6 outlook ablation: the bucketed two-phase shuffle derived from
        // the coarse grained decomposition (see also experiment E12 /
        // `exp_shuffle`, which locates the engine crossover).
        group.bench_with_input(BenchmarkId::new("bucketed", n), &n, |b, &n| {
            let mut rng = Pcg64::seed_from_u64(2);
            let mut data: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                bucketed_shuffle(&mut rng, &mut data, default_bucket_items::<u64>());
                std::hint::black_box(data.first().copied())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_shuffle);
criterion_main!(benches);
