//! Criterion bench for experiment E6: how the matrix-sampling phase and the
//! exchange phase trade places as n grows, for a fixed machine size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_core::{permute_vec, MatrixBackend, PermuteOptions};

const P: usize = 48;

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_crossover");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[50_000usize, 500_000, 4_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        for backend in [MatrixBackend::Sequential, MatrixBackend::ParallelOptimal] {
            group.bench_with_input(BenchmarkId::new(backend.name(), n), &n, |b, &n| {
                let machine = CgmMachine::new(CgmConfig::new(P).with_seed(5));
                b.iter(|| {
                    let data: Vec<u64> = (0..n as u64).collect();
                    let (out, _) =
                        permute_vec(&machine, data, &PermuteOptions::with_backend(backend));
                    std::hint::black_box(out.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
