//! Criterion bench for experiment E4: cost of the four matrix-sampling
//! algorithms as a function of the number of processors (Theorem 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_matrix::{
    sample_parallel_log, sample_parallel_optimal, sample_recursive, sample_sequential,
};
use cgp_rng::Pcg64;

const M: u64 = 100_000;

fn bench_sequential_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_matrix_sequential");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &p in &[8usize, 32, 128, 256] {
        let source = vec![M; p];
        let target = vec![M; p];
        group.bench_with_input(BenchmarkId::new("alg3_sequential", p), &p, |b, _| {
            let mut rng = Pcg64::seed_from_u64(2);
            b.iter(|| std::hint::black_box(sample_sequential(&mut rng, &source, &target)));
        });
        group.bench_with_input(BenchmarkId::new("alg4_recursive", p), &p, |b, _| {
            let mut rng = Pcg64::seed_from_u64(2);
            b.iter(|| std::hint::black_box(sample_recursive(&mut rng, &source, &target)));
        });
    }
    group.finish();
}

fn bench_parallel_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_matrix_parallel");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &p in &[8usize, 32, 64, 128] {
        let source = vec![M; p];
        let target = vec![M; p];
        group.bench_with_input(BenchmarkId::new("alg5_parallel_log", p), &p, |b, &p| {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
            b.iter(|| std::hint::black_box(sample_parallel_log(&mut machine, &source, &target).0));
        });
        group.bench_with_input(BenchmarkId::new("alg6_parallel_optimal", p), &p, |b, &p| {
            let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
            b.iter(|| {
                std::hint::black_box(sample_parallel_optimal(&mut machine, &source, &target).0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_backends, bench_parallel_backends);
criterion_main!(benches);
