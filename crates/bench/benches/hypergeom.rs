//! Criterion bench for experiment E2: throughput and draw cost of the
//! hypergeometric samplers (inversion vs HRUA vs adaptive), including the
//! crossover-threshold ablation of DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use cgp_hypergeom::{sample_with, SamplerKind};
use cgp_rng::Pcg64;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_hypergeometric_samplers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    // (label, t, w, b): a narrow target, a medium one and a very wide one.
    let cases = [
        ("narrow_t10", 10u64, 1_000u64, 9_000u64),
        ("medium_t1k", 1_000, 40_000, 120_000),
        ("wide_t200k", 200_000, 500_000, 500_000),
    ];
    for (label, t, w, b) in cases {
        for kind in [
            SamplerKind::Adaptive,
            SamplerKind::Inverse,
            SamplerKind::Hrua,
        ] {
            // Inversion over a very wide support is exactly the pathology the
            // adaptive switch avoids; skip it to keep the bench short.
            if kind == SamplerKind::Inverse && label == "wide_t200k" {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), label),
                &(t, w, b),
                |bencher, &(t, w, b)| {
                    let mut rng = Pcg64::seed_from_u64(3);
                    bencher.iter(|| std::hint::black_box(sample_with(&mut rng, t, w, b, kind)));
                },
            );
        }
    }
    group.finish();
}

fn bench_multivariate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_multivariate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &p in &[16usize, 64, 256] {
        let weights = vec![10_000u64; p];
        let m: u64 = weights.iter().sum::<u64>() / 2;
        group.bench_with_input(BenchmarkId::new("iterative", p), &p, |b, _| {
            let mut rng = Pcg64::seed_from_u64(4);
            b.iter(|| {
                std::hint::black_box(cgp_hypergeom::multivariate_hypergeometric(
                    &mut rng, m, &weights,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("recursive", p), &p, |b, _| {
            let mut rng = Pcg64::seed_from_u64(4);
            b.iter(|| {
                std::hint::black_box(cgp_hypergeom::multivariate_hypergeometric_recursive(
                    &mut rng, m, &weights,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_multivariate);
criterion_main!(benches);
