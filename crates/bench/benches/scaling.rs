//! Criterion bench for experiment E3: the paper's §6 scaling table.
//!
//! One benchmark per processor count of the paper (1 = the sequential
//! reference, then 3, 6, 12, 24, 48 virtual processors), at a fixed item
//! count.  The shape to reproduce: the 3-processor run is slower than
//! sequential (overhead factor 3–5), larger machines get steadily faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_core::{fisher_yates_shuffle, permute_vec, MatrixBackend, PermuteOptions};
use cgp_rng::Pcg64;

const N: usize = 2_000_000;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_scaling");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function(BenchmarkId::new("procs", 1usize), |b| {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut data: Vec<u64> = (0..N as u64).collect();
        b.iter(|| {
            fisher_yates_shuffle(&mut rng, &mut data);
            std::hint::black_box(data.first().copied())
        });
    });

    for &p in &[3usize, 6, 12, 24, 48] {
        group.bench_with_input(BenchmarkId::new("procs", p), &p, |b, &p| {
            let machine = CgmMachine::new(CgmConfig::new(p).with_seed(1));
            b.iter(|| {
                let data: Vec<u64> = (0..N as u64).collect();
                let (out, _) = permute_vec(
                    &machine,
                    data,
                    &PermuteOptions::with_backend(MatrixBackend::Sequential),
                );
                std::hint::black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
