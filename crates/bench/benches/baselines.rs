//! Criterion bench for experiment E7: Algorithm 1 versus the baselines, plus
//! the matrix-backend ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_cgm::{BlockDistribution, CgmConfig, CgmMachine};
use cgp_core::baselines::{one_round_permutation, sort_based_permutation};
use cgp_core::{permute_vec, MatrixBackend, PermuteOptions};

const N: usize = 1_000_000;
const P: usize = 8;

fn data() -> Vec<u64> {
    (0..N as u64).collect()
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_methods");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    for backend in MatrixBackend::ALL {
        group.bench_function(BenchmarkId::new("algorithm1", backend.name()), |b| {
            let machine = CgmMachine::new(CgmConfig::new(P).with_seed(1));
            b.iter(|| {
                let (out, _) =
                    permute_vec(&machine, data(), &PermuteOptions::with_backend(backend));
                std::hint::black_box(out.len())
            });
        });
    }

    group.bench_function("baseline_sort_based", |b| {
        let machine = CgmMachine::new(CgmConfig::new(P).with_seed(2));
        let dist = BlockDistribution::even(N as u64, P);
        b.iter(|| {
            let blocks = dist.split_vec(data());
            let (out, _) = sort_based_permutation(&machine, blocks);
            std::hint::black_box(out.len())
        });
    });

    group.bench_function("baseline_fixed_matrix_1round", |b| {
        let machine = CgmMachine::new(CgmConfig::new(P).with_seed(3));
        let dist = BlockDistribution::even(N as u64, P);
        b.iter(|| {
            let blocks = dist.split_vec(data());
            let (out, _) = one_round_permutation(&machine, blocks, 1);
            std::hint::black_box(out.len())
        });
    });

    group.bench_function("baseline_fixed_matrix_4rounds", |b| {
        let machine = CgmMachine::new(CgmConfig::new(P).with_seed(4));
        let dist = BlockDistribution::even(N as u64, P);
        b.iter(|| {
            let blocks = dist.split_vec(data());
            let (out, _) = one_round_permutation(&machine, blocks, 4);
            std::hint::black_box(out.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
