//! Criterion bench for experiment E8: clone-based vs move-based exchange.
//!
//! The seed port cut the shuffled blocks with `block[a..b].to_vec()` — one
//! clone per item on the hot path Theorem 1 bounds by `O(m)` — and required
//! `T: Clone`.  The current engine moves every item exactly once.  This
//! bench pins the two against each other for a heap-heavy payload
//! (`String`, where each clone duplicates an allocation) and a `Copy`
//! payload (`u64`, where the clone is a memcpy) at the acceptance-criteria
//! point `p = 8, n = 1e6`.  Payload construction happens in the
//! `iter_batched` setup, *outside* the clock, so the timed delta is the
//! exchange itself.  The move-based path must be strictly faster for
//! `String`; `cargo run -p cgp-bench --bin exp_exchange` snapshots the same
//! comparison into `BENCH_exchange.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use cgp_bench::experiments::clone_based_permute_vec;
use cgp_cgm::{CgmConfig, CgmMachine};
use cgp_core::{permute_vec, PermuteOptions};

const N: usize = 1_000_000;
const P: usize = 8;

fn string_payload() -> Vec<String> {
    (0..N).map(|i| format!("item-{i:012}")).collect()
}

fn int_payload() -> Vec<u64> {
    (0..N as u64).collect()
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_exchange");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    let machine = CgmMachine::new(CgmConfig::new(P).with_seed(1));

    group.bench_function(BenchmarkId::new("clone_based", "String"), |b| {
        b.iter_batched(
            string_payload,
            |data| clone_based_permute_vec(&machine, data).len(),
            BatchSize::LargeInput,
        );
    });
    group.bench_function(BenchmarkId::new("move_based", "String"), |b| {
        b.iter_batched(
            string_payload,
            |data| {
                permute_vec(&machine, data, &PermuteOptions::default())
                    .0
                    .len()
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function(BenchmarkId::new("clone_based", "u64"), |b| {
        b.iter_batched(
            int_payload,
            |data| clone_based_permute_vec(&machine, data).len(),
            BatchSize::LargeInput,
        );
    });
    group.bench_function(BenchmarkId::new("move_based", "u64"), |b| {
        b.iter_batched(
            int_payload,
            |data| {
                permute_vec(&machine, data, &PermuteOptions::default())
                    .0
                    .len()
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
