//! HRUA — ratio-of-uniforms rejection sampling for the hypergeometric law.
//!
//! For large parameters the chop-down inversion walk becomes linear in the
//! standard deviation, so the paper (following Zechner's thesis, which it
//! cites for efficient hypergeometric sampling) uses a rejection method whose
//! expected cost is *constant* per variate.  We implement the H2PE/HRUA
//! variant of Stadlober's universal ratio-of-uniforms scheme, the same
//! algorithm used by NumPy's legacy generator: a uniformly random point is
//! drawn in a rectangle enclosing the "hat" region of the scaled target, the
//! candidate is the floor of its abscissa, and acceptance is decided first by
//! two cheap squeeze tests and only then by an exact log-pmf comparison.
//!
//! Acceptance probability is bounded below by a constant (≈ 0.7–0.86 over the
//! whole parameter range), so the number of uniforms per variate is a small
//! constant in expectation — the property that experiment E2 measures against
//! the paper's "< 1.5 on average, ≤ 10 worst case" report.

use crate::lnfact::ln_factorial;
use cgp_rng::{RandomExt, RandomSource};

/// `2 · sqrt(2 / e)` — width constant of the hat rectangle.
const D1: f64 = 1.715_527_769_921_413_5;
/// `3 − 2 · sqrt(3 / e)` — additive constant of the hat rectangle.
const D2: f64 = 0.898_916_162_058_898_8;

/// Samples `h(t, w, b)` (draw `t`, count whites among `w` white / `b` black)
/// with the HRUA ratio-of-uniforms rejection method.
///
/// Exact for all parameter values with non-degenerate variance; the adaptive
/// dispatcher routes degenerate and tiny cases to inversion instead.
pub fn sample_hrua<R: RandomSource + ?Sized>(rng: &mut R, t: u64, w: u64, b: u64) -> u64 {
    debug_assert!(t <= w + b);
    let popsize = w + b;

    // Exploit the two symmetries of the distribution so that the core loop
    // always works on the smaller half: sample size at most popsize/2 and
    // "good" group the smaller of the two colours.
    let computed_sample = t.min(popsize - t);
    let mingoodbad = w.min(b);
    let maxgoodbad = w.max(b);

    let p = mingoodbad as f64 / popsize as f64;
    let q = maxgoodbad as f64 / popsize as f64;

    // Mean and variance of the reduced distribution.
    let mu = computed_sample as f64 * p;
    let a = mu + 0.5;
    let var = (popsize - computed_sample) as f64 * computed_sample as f64 * p * q
        / (popsize as f64 - 1.0);
    let c = var.sqrt() + 0.5;
    let h = D1 * c + D2;

    // Mode of the reduced distribution and the constant part of the log-pmf.
    let m =
        ((computed_sample as u128 + 1) * (mingoodbad as u128 + 1) / (popsize as u128 + 2)) as u64;
    let g = ln_factorial(m)
        + ln_factorial(mingoodbad - m)
        + ln_factorial(computed_sample - m)
        + ln_factorial(maxgoodbad + m - computed_sample);

    // Right truncation point of the hat.
    let upper = (computed_sample.min(mingoodbad) + 1) as f64;
    let bound = upper.min(a + 16.0 * c);

    let k_reduced = loop {
        let u = rng.gen_open_f64();
        let v = rng.gen_f64(); // "v" in [0, 1): ordinate of the hat point
        let x = a + h * (v - 0.5) / u;

        if !(0.0..bound).contains(&x) {
            continue;
        }
        let k = x.floor() as u64;

        let gp = ln_factorial(k)
            + ln_factorial(mingoodbad - k)
            + ln_factorial(computed_sample - k)
            + ln_factorial(maxgoodbad + k - computed_sample);
        let t_log = g - gp;

        // Cheap squeeze acceptance: u(4 − u) − 3 ≤ T.
        if u * (4.0 - u) - 3.0 <= t_log {
            break k;
        }
        // Cheap squeeze rejection: u(u − T) ≥ 1.
        if u * (u - t_log) >= 1.0 {
            continue;
        }
        // Exact acceptance test.
        if 2.0 * u.ln() <= t_log {
            break k;
        }
    };

    // Undo the two symmetry reductions.
    let k = if w > b {
        computed_sample - k_reduced
    } else {
        k_reduced
    };
    if computed_sample < t {
        w - k
    } else {
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::Hypergeometric;
    use cgp_rng::{CountingRng, Pcg64};

    fn check_support(t: u64, w: u64, b: u64, seed: u64, iters: usize) {
        let h = Hypergeometric::new(t, w, b);
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..iters {
            let k = sample_hrua(&mut rng, t, w, b);
            assert!(
                k >= h.support_min() && k <= h.support_max(),
                "t={t} w={w} b={b}: k={k} outside [{}, {}]",
                h.support_min(),
                h.support_max()
            );
        }
    }

    #[test]
    fn support_various_parameters() {
        check_support(50, 100, 100, 1, 2_000);
        check_support(1000, 5000, 3000, 2, 2_000);
        check_support(300, 200, 900, 3, 2_000);
        // Asymmetric cases exercising the symmetry reductions.
        check_support(900, 200, 900, 4, 2_000);
        check_support(700, 900, 200, 5, 2_000);
    }

    #[test]
    fn empirical_mean_and_variance_match() {
        let (t, w, b) = (2_000u64, 30_000u64, 70_000u64);
        let h = Hypergeometric::new(t, w, b);
        let mut rng = Pcg64::seed_from_u64(10);
        let n = 40_000usize;
        let samples: Vec<u64> = (0..n).map(|_| sample_hrua(&mut rng, t, w, b)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n as f64 - 1.0);
        let mean_tol = 5.0 * (h.variance() / n as f64).sqrt();
        assert!(
            (mean - h.mean()).abs() < mean_tol,
            "mean {mean} vs {}",
            h.mean()
        );
        // Sample variance of a bounded variable: allow 10% slack.
        assert!(
            (var - h.variance()).abs() / h.variance() < 0.1,
            "variance {var} vs {}",
            h.variance()
        );
    }

    #[test]
    fn large_symmetric_case_histogram() {
        // Compare a coarse 8-bucket histogram against exact probabilities for
        // a case small enough to evaluate the pmf exactly.
        let (t, w, b) = (60u64, 80u64, 120u64);
        let h = Hypergeometric::new(t, w, b);
        let mut rng = Pcg64::seed_from_u64(11);
        let n = 60_000u64;
        let lo = h.support_min();
        let hi = h.support_max();
        let buckets = 8u64;
        let width = ((hi - lo) / buckets).max(1);
        let mut observed = vec![0f64; buckets as usize + 1];
        for _ in 0..n {
            let k = sample_hrua(&mut rng, t, w, b);
            let idx = ((k - lo) / width).min(buckets) as usize;
            observed[idx] += 1.0;
        }
        let mut expected = vec![0f64; buckets as usize + 1];
        for k in lo..=hi {
            let idx = ((k - lo) / width).min(buckets) as usize;
            expected[idx] += h.pmf(k) * n as f64;
        }
        for (i, (&o, &e)) in observed.iter().zip(&expected).enumerate() {
            if e > 20.0 {
                assert!(
                    (o - e).abs() < 6.0 * e.sqrt() + 6.0,
                    "bucket {i}: observed {o}, expected {e}"
                );
            }
        }
    }

    #[test]
    fn draw_count_is_bounded_on_average() {
        // The rejection loop should accept quickly: well under 8 uniforms per
        // variate on average for large parameters.
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(12));
        let n = 20_000u64;
        for _ in 0..n {
            let _ = sample_hrua(&mut rng, 10_000, 500_000, 500_000);
        }
        let per_sample = rng.count() as f64 / n as f64;
        assert!(
            per_sample < 8.0,
            "HRUA consumed {per_sample} uniforms per sample"
        );
    }

    #[test]
    fn agrees_with_inversion_in_distribution() {
        // Kolmogorov-style comparison of empirical CDFs from the two exact
        // samplers on a moderate case.
        use crate::inverse::sample_inverse;
        let (t, w, b) = (40u64, 60u64, 90u64);
        let n = 30_000usize;
        let mut r1 = Pcg64::seed_from_u64(13);
        let mut r2 = Pcg64::seed_from_u64(14);
        let mut c1 = vec![0u64; (t + 1) as usize];
        let mut c2 = vec![0u64; (t + 1) as usize];
        for _ in 0..n {
            c1[sample_hrua(&mut r1, t, w, b) as usize] += 1;
            c2[sample_inverse(&mut r2, t, w, b) as usize] += 1;
        }
        let mut cdf1 = 0.0;
        let mut cdf2 = 0.0;
        let mut max_gap: f64 = 0.0;
        for k in 0..=t as usize {
            cdf1 += c1[k] as f64 / n as f64;
            cdf2 += c2[k] as f64 / n as f64;
            max_gap = max_gap.max((cdf1 - cdf2).abs());
        }
        // Two-sample KS 99.9% critical value ~ 1.95 * sqrt(2/n).
        let crit = 1.95 * (2.0 / n as f64).sqrt();
        assert!(max_gap < crit, "KS gap {max_gap} exceeds {crit}");
    }
}
