//! Free-function moments of `h(t, w, b)` and of the multivariate law.
//!
//! These are used by the goodness-of-fit experiments (E2, E5) and by the
//! property tests of the matrix samplers, which compare empirical moments of
//! sampled communication-matrix entries against the exact values demanded by
//! Proposition 3.

/// Mean of `h(t, w, b)`: `t·w / (w+b)`.
pub fn hypergeometric_mean(t: u64, w: u64, b: u64) -> f64 {
    let n = w + b;
    if n == 0 {
        return 0.0;
    }
    t as f64 * w as f64 / n as f64
}

/// Variance of `h(t, w, b)`: `t · (w/n)(b/n) · (n−t)/(n−1)` with `n = w+b`.
pub fn hypergeometric_variance(t: u64, w: u64, b: u64) -> f64 {
    let n = (w + b) as f64;
    if n <= 1.0 {
        return 0.0;
    }
    let p = w as f64 / n;
    t as f64 * p * (1.0 - p) * (n - t as f64) / (n - 1.0)
}

/// Mean vector of the multivariate hypergeometric law: component `i` has mean
/// `m · w_i / n` where `n = Σ w_i` and `m` is the number of draws.
pub fn multivariate_means(m: u64, weights: &[u64]) -> Vec<f64> {
    let n: u64 = weights.iter().sum();
    if n == 0 {
        return vec![0.0; weights.len()];
    }
    weights
        .iter()
        .map(|&w| m as f64 * w as f64 / n as f64)
        .collect()
}

/// Covariance between components `i` and `j` (i ≠ j) of the multivariate
/// hypergeometric law: `−m · (w_i/n)(w_j/n) · (n−m)/(n−1)`.
pub fn multivariate_covariance(m: u64, weights: &[u64], i: usize, j: usize) -> f64 {
    let n: u64 = weights.iter().sum();
    let nf = n as f64;
    if n <= 1 {
        return 0.0;
    }
    let pi = weights[i] as f64 / nf;
    let pj = weights[j] as f64 / nf;
    let finite = (nf - m as f64) / (nf - 1.0);
    if i == j {
        m as f64 * pi * (1.0 - pi) * finite
    } else {
        -(m as f64) * pi * pj * finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::Hypergeometric;

    #[test]
    fn free_functions_match_struct_methods() {
        let h = Hypergeometric::new(25, 40, 60);
        assert!((hypergeometric_mean(25, 40, 60) - h.mean()).abs() < 1e-12);
        assert!((hypergeometric_variance(25, 40, 60) - h.variance()).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_zero() {
        assert_eq!(hypergeometric_mean(0, 0, 0), 0.0);
        assert_eq!(hypergeometric_variance(0, 0, 0), 0.0);
    }

    #[test]
    fn multivariate_means_sum_to_draws() {
        let weights = [10u64, 20, 30, 40];
        let means = multivariate_means(17, &weights);
        let total: f64 = means.iter().sum();
        assert!((total - 17.0).abs() < 1e-10);
    }

    #[test]
    fn covariance_matrix_rows_sum_to_zero() {
        // Because the components sum to the constant m, each row of the
        // covariance matrix sums to zero.
        let weights = [5u64, 15, 25, 55];
        let m = 30u64;
        for i in 0..weights.len() {
            let row_sum: f64 = (0..weights.len())
                .map(|j| multivariate_covariance(m, &weights, i, j))
                .sum();
            assert!(row_sum.abs() < 1e-9, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn diagonal_covariance_matches_marginal_variance() {
        let weights = [12u64, 30, 58];
        let m = 40u64;
        let n: u64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let marginal = hypergeometric_variance(m, w, n - w);
            let diag = multivariate_covariance(m, &weights, i, i);
            assert!((marginal - diag).abs() < 1e-9);
        }
    }
}
