//! # cgp-hypergeom — hypergeometric and multivariate hypergeometric laws
//!
//! Section 3 of Gustedt's RR-4639 shows that every entry `a_ij` of the
//! communication matrix of a uniformly random permutation follows a
//! hypergeometric law `h(m'_j, m_i, n − m_i)` (Proposition 3), that sums of
//! entries over blocks of rows/columns do as well (Propositions 4–5), and
//! that a whole row follows the *multivariate* hypergeometric law.  The
//! matrix-sampling algorithms (Algorithms 2–6) reduce everything to repeated
//! draws from `h(t, w, b)`.
//!
//! This crate supplies that substrate:
//!
//! * [`Hypergeometric`] — the distribution `h(t, w, b)` of the number of
//!   "white" items among `t` draws without replacement from an urn with `w`
//!   white and `b` black items: exact (log-)pmf, cdf, moments, mode and
//!   support.
//! * [`sample`] / [`Hypergeometric::sample`] — adaptive exact sampler that
//!   uses a one-uniform inverse-transform (chop-down) method for small or
//!   concentrated distributions and the HRUA ratio-of-uniforms rejection
//!   method (Stadlober / Zechner, the same family the paper cites) for large
//!   parameters.  Both are exact; the switch is purely a performance matter
//!   and is one of the ablations benchmarked by experiment E2.
//! * [`multivariate`] — Algorithm 2 of the paper (iterative conditional
//!   decomposition) and its recursive halving variant, which is the basis of
//!   the parallel matrix samplers.
//!
//! Parameter convention throughout: `h(t, w, b)` draws `t` balls from `w`
//! white and `b` black balls and counts the white ones, exactly as in the
//! paper (equation (4)).

pub mod lnfact;
pub mod moments;
pub mod multivariate;
pub mod pmf;
pub mod sampler;

mod hrua;
mod inverse;

pub use moments::{hypergeometric_mean, hypergeometric_variance};
pub use multivariate::{
    multivariate_hypergeometric, multivariate_hypergeometric_into,
    multivariate_hypergeometric_recursive,
};
pub use pmf::Hypergeometric;
pub use sampler::{sample, sample_with, SamplerKind};

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::Pcg64;

    #[test]
    fn end_to_end_sample_in_support() {
        let mut rng = Pcg64::seed_from_u64(1);
        let h = Hypergeometric::new(10, 30, 70);
        for _ in 0..1000 {
            let k = h.sample(&mut rng);
            assert!(k <= 10);
            assert!(k <= 30);
        }
    }

    #[test]
    fn multivariate_end_to_end() {
        let mut rng = Pcg64::seed_from_u64(2);
        let weights = vec![5u64, 10, 20, 15];
        let alpha = multivariate_hypergeometric(&mut rng, 12, &weights);
        assert_eq!(alpha.iter().sum::<u64>(), 12);
        for (a, w) in alpha.iter().zip(&weights) {
            assert!(a <= w);
        }
    }
}
