//! Logarithms of factorials and binomial coefficients.
//!
//! Everything the hypergeometric pmf and its samplers need reduces to
//! `ln(n!)` for integer `n`.  Small arguments come from a precomputed table;
//! large arguments use the Stirling–de Moivre asymptotic series, which for
//! `n ≥ 1024` is accurate to far better than `1e-12` relative error — more
//! than enough for rejection tests operating on ratios of pmf values.

use std::sync::OnceLock;

/// Size of the exact table.  Entries `0..TABLE_SIZE` are summed logarithms.
const TABLE_SIZE: usize = 1024;

fn table() -> &'static [f64; TABLE_SIZE] {
    static TABLE: OnceLock<[f64; TABLE_SIZE]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_SIZE];
        let mut acc = 0.0f64;
        for (n, slot) in t.iter_mut().enumerate() {
            if n > 0 {
                acc += (n as f64).ln();
            }
            *slot = acc;
        }
        t
    })
}

/// Natural logarithm of `n!`.
///
/// ```
/// use cgp_hypergeom::lnfact::ln_factorial;
/// assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < TABLE_SIZE {
        table()[n as usize]
    } else {
        stirling(n as f64)
    }
}

/// Stirling–de Moivre series for `ln(n!)` = `ln Γ(n+1)`.
///
/// `ln(n!) ≈ n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³) + 1/(1260n⁵)`.
fn stirling(n: f64) -> f64 {
    const HALF_LN_TWO_PI: f64 = 0.918_938_533_204_672_7;
    let inv = 1.0 / n;
    let inv2 = inv * inv;
    (n + 0.5) * n.ln() - n
        + HALF_LN_TWO_PI
        + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln Γ(x)` for positive *integer or half-integer-free* use: here we only
/// ever need `ln Γ(n + 1) = ln(n!)` for integer `n`, so this is a thin
/// convenience wrapper used by the HRUA sampler.
pub fn ln_gamma_int(n_plus_one: u64) -> f64 {
    debug_assert!(n_plus_one >= 1);
    ln_factorial(n_plus_one - 1)
}

/// Exact binomial coefficient as `f64` (exponentiated log), usable for
/// moderate sizes where the result fits the f64 range.
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        0.0
    } else {
        ln_binomial(n, k).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        let expected = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &e) in expected.iter().enumerate() {
            assert!((ln_factorial(n as u64) - e.ln()).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn table_boundary_is_continuous() {
        // The table/Stirling crossover must agree to high precision.
        let direct: f64 = (1..=1500u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(1500) - direct).abs() < 1e-8);
        let at_boundary: f64 = (1..TABLE_SIZE as u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(TABLE_SIZE as u64 - 1) - at_boundary).abs() < 1e-9);
        // One past the boundary uses Stirling.
        let past: f64 = (1..=TABLE_SIZE as u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(TABLE_SIZE as u64) - past).abs() < 1e-8);
    }

    #[test]
    fn binomial_identities() {
        // C(n, 0) = C(n, n) = 1.
        for n in [0u64, 1, 5, 100, 5000] {
            assert!((ln_binomial(n, 0)).abs() < 1e-9);
            assert!((ln_binomial(n, n)).abs() < 1e-9);
        }
        // C(10, 3) = 120.
        assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-10);
        // Pascal: C(20, 7) = C(19, 6) + C(19, 7).
        let lhs = binomial_f64(20, 7);
        let rhs = binomial_f64(19, 6) + binomial_f64(19, 7);
        assert!((lhs - rhs).abs() / rhs < 1e-12);
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert_eq!(ln_binomial(5, 6), f64::NEG_INFINITY);
        assert_eq!(binomial_f64(5, 6), 0.0);
    }

    #[test]
    fn symmetry_of_binomial() {
        for n in [10u64, 100, 10_000] {
            for k in [0u64, 1, 3, n / 2] {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn ln_gamma_int_matches_factorial() {
        for n in [1u64, 2, 10, 2000] {
            assert!((ln_gamma_int(n) - ln_factorial(n - 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn large_arguments_monotone() {
        let mut prev = ln_factorial(1_000_000);
        for n in [1_000_001u64, 2_000_000, 10_000_000, 1_000_000_000] {
            let cur = ln_factorial(n);
            assert!(cur > prev);
            prev = cur;
        }
    }
}
