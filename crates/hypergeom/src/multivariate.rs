//! The multivariate hypergeometric distribution — Algorithm 2 of the paper
//! and its recursive halving variant.
//!
//! Given `p` categories with sizes `m'_0, …, m'_{p−1}` summing to `n`, and
//! `m ≤ n` marked items placed uniformly at random among the `n` positions,
//! the vector `(α_i)` counting marked items per category follows the
//! multivariate hypergeometric law.  Algorithm 2 samples it with `p − 1`
//! univariate hypergeometric draws by conditioning from left to right:
//! `toRight ~ h(m, n − m'_i, m'_i)` is the number of marked items that fall
//! strictly to the right of category `i`; then `α_i = m − toRight` and the
//! problem recurses on the remaining categories with `m := toRight`.
//!
//! The recursive variant splits the category list in half instead, drawing
//! the number of marked items falling into the left half from a single
//! hypergeometric and recursing on both halves.  It produces the same
//! distribution (the conditional decomposition is associative) but balances
//! the hypergeometric parameters, which is what the parallel matrix samplers
//! (Algorithms 5 and 6) exploit.

use crate::sampler::sample;
use cgp_rng::RandomSource;

/// Samples the multivariate hypergeometric law with `m` draws over categories
/// of sizes `weights`, returning one count per category (Algorithm 2).
///
/// # Panics
/// Panics if `m` exceeds the total weight.
///
/// ```
/// use cgp_hypergeom::multivariate_hypergeometric;
/// use cgp_rng::Pcg64;
/// let mut rng = Pcg64::seed_from_u64(1);
/// let alpha = multivariate_hypergeometric(&mut rng, 10, &[8, 8, 8]);
/// assert_eq!(alpha.iter().sum::<u64>(), 10);
/// ```
pub fn multivariate_hypergeometric<R: RandomSource + ?Sized>(
    rng: &mut R,
    m: u64,
    weights: &[u64],
) -> Vec<u64> {
    let mut out = vec![0u64; weights.len()];
    multivariate_hypergeometric_into(rng, m, weights, &mut out);
    out
}

/// As [`multivariate_hypergeometric`] but writes into a caller-provided
/// buffer, avoiding the allocation — the inner loops of the matrix samplers
/// call this once per row.
///
/// # Panics
/// Panics if `out.len() != weights.len()` or `m` exceeds the total weight.
pub fn multivariate_hypergeometric_into<R: RandomSource + ?Sized>(
    rng: &mut R,
    m: u64,
    weights: &[u64],
    out: &mut [u64],
) {
    assert_eq!(out.len(), weights.len(), "output buffer has wrong length");
    let total: u64 = weights.iter().sum();
    assert!(
        m <= total,
        "cannot distribute {m} marked items over a total weight of {total}"
    );

    // Algorithm 2: walk the categories left to right, each time splitting the
    // remaining marked items between "this category" and "everything to the
    // right" with a univariate hypergeometric draw.
    let mut remaining_marks = m;
    let mut remaining_total = total;
    for (i, &w) in weights.iter().enumerate() {
        if remaining_marks == 0 {
            out[i] = 0;
            continue;
        }
        remaining_total -= w;
        // toRight ~ h(t = remaining_marks, white = remaining_total, black = w):
        // of the remaining marked items, how many land strictly to the right.
        let to_right = sample(rng, remaining_marks, remaining_total, w);
        out[i] = remaining_marks - to_right;
        remaining_marks = to_right;
    }
    debug_assert_eq!(remaining_marks, 0);
}

/// Recursive halving variant of Algorithm 2 (the specialisation of
/// Algorithm 4 to a single row).  Identical distribution, balanced splits.
pub fn multivariate_hypergeometric_recursive<R: RandomSource + ?Sized>(
    rng: &mut R,
    m: u64,
    weights: &[u64],
) -> Vec<u64> {
    let total: u64 = weights.iter().sum();
    assert!(
        m <= total,
        "cannot distribute {m} marked items over a total weight of {total}"
    );
    let mut out = vec![0u64; weights.len()];
    recursive_split(rng, m, weights, &mut out);
    out
}

fn recursive_split<R: RandomSource + ?Sized>(
    rng: &mut R,
    m: u64,
    weights: &[u64],
    out: &mut [u64],
) {
    debug_assert_eq!(weights.len(), out.len());
    match weights.len() {
        0 => {
            debug_assert_eq!(m, 0);
        }
        1 => {
            debug_assert!(m <= weights[0]);
            out[0] = m;
        }
        len => {
            let mid = len / 2;
            let left_total: u64 = weights[..mid].iter().sum();
            let right_total: u64 = weights[mid..].iter().sum();
            // Marked items falling in the left half.
            let to_left = sample(rng, m, left_total, right_total);
            recursive_split(rng, to_left, &weights[..mid], &mut out[..mid]);
            recursive_split(rng, m - to_left, &weights[mid..], &mut out[mid..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::{multivariate_covariance, multivariate_means};
    use cgp_rng::{CountingRng, Pcg64};

    fn check_invariants(alpha: &[u64], m: u64, weights: &[u64]) {
        assert_eq!(alpha.len(), weights.len());
        assert_eq!(alpha.iter().sum::<u64>(), m);
        for (a, w) in alpha.iter().zip(weights) {
            assert!(a <= w, "component {a} exceeds its category size {w}");
        }
    }

    #[test]
    fn invariants_iterative() {
        let mut rng = Pcg64::seed_from_u64(1);
        let weights = vec![3u64, 0, 10, 7, 25, 1];
        for m in [0u64, 1, 10, 23, 46] {
            let alpha = multivariate_hypergeometric(&mut rng, m, &weights);
            check_invariants(&alpha, m, &weights);
        }
    }

    #[test]
    fn invariants_recursive() {
        let mut rng = Pcg64::seed_from_u64(2);
        let weights = vec![4u64, 9, 0, 2, 31, 11, 6];
        for m in [0u64, 5, 17, 40, 63] {
            let alpha = multivariate_hypergeometric_recursive(&mut rng, m, &weights);
            check_invariants(&alpha, m, &weights);
        }
    }

    #[test]
    fn drawing_everything_returns_the_weights() {
        let mut rng = Pcg64::seed_from_u64(3);
        let weights = vec![5u64, 8, 13, 21];
        let total: u64 = weights.iter().sum();
        assert_eq!(
            multivariate_hypergeometric(&mut rng, total, &weights),
            weights
        );
        assert_eq!(
            multivariate_hypergeometric_recursive(&mut rng, total, &weights),
            weights
        );
    }

    #[test]
    fn drawing_nothing_returns_zeros() {
        let mut rng = Pcg64::seed_from_u64(4);
        let weights = vec![5u64, 8, 13];
        assert_eq!(
            multivariate_hypergeometric(&mut rng, 0, &weights),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn single_category() {
        let mut rng = Pcg64::seed_from_u64(5);
        assert_eq!(multivariate_hypergeometric(&mut rng, 7, &[10]), vec![7]);
        assert_eq!(
            multivariate_hypergeometric_recursive(&mut rng, 7, &[10]),
            vec![7]
        );
    }

    #[test]
    #[should_panic(expected = "cannot distribute")]
    fn too_many_marks_panics() {
        let mut rng = Pcg64::seed_from_u64(6);
        let _ = multivariate_hypergeometric(&mut rng, 100, &[10, 10]);
    }

    #[test]
    fn empirical_means_match_theory_iterative() {
        let mut rng = Pcg64::seed_from_u64(7);
        let weights = vec![10u64, 30, 60, 100];
        let m = 50u64;
        let reps = 40_000;
        let mut sums = vec![0u64; weights.len()];
        for _ in 0..reps {
            let alpha = multivariate_hypergeometric(&mut rng, m, &weights);
            for (s, a) in sums.iter_mut().zip(&alpha) {
                *s += a;
            }
        }
        let means = multivariate_means(m, &weights);
        for (i, (&s, &mu)) in sums.iter().zip(&means).enumerate() {
            let emp = s as f64 / reps as f64;
            let sd = multivariate_covariance(m, &weights, i, i).sqrt();
            let tol = 5.0 * sd / (reps as f64).sqrt();
            assert!((emp - mu).abs() < tol, "component {i}: {emp} vs {mu}");
        }
    }

    #[test]
    fn iterative_and_recursive_agree_in_distribution() {
        // Compare component-wise empirical means and variances of the two
        // variants — they must implement the same law.
        let weights = vec![7u64, 19, 4, 33, 12];
        let m = 30u64;
        let reps = 30_000;
        let run = |recursive: bool, seed: u64| -> (Vec<f64>, Vec<f64>) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut sums = vec![0f64; weights.len()];
            let mut sq = vec![0f64; weights.len()];
            for _ in 0..reps {
                let alpha = if recursive {
                    multivariate_hypergeometric_recursive(&mut rng, m, &weights)
                } else {
                    multivariate_hypergeometric(&mut rng, m, &weights)
                };
                for i in 0..weights.len() {
                    sums[i] += alpha[i] as f64;
                    sq[i] += (alpha[i] * alpha[i]) as f64;
                }
            }
            let means: Vec<f64> = sums.iter().map(|s| s / reps as f64).collect();
            let vars: Vec<f64> = sq
                .iter()
                .zip(&means)
                .map(|(s, mu)| s / reps as f64 - mu * mu)
                .collect();
            (means, vars)
        };
        let (mi, vi) = run(false, 100);
        let (mr, vr) = run(true, 200);
        for i in 0..weights.len() {
            let sd = multivariate_covariance(m, &weights, i, i).sqrt();
            let tol = 6.0 * sd / (reps as f64).sqrt() + 1e-9;
            assert!((mi[i] - mr[i]).abs() < 2.0 * tol, "mean mismatch at {i}");
            // Variances: allow 10% relative difference.
            if vi[i] > 0.5 {
                assert!(
                    (vi[i] - vr[i]).abs() / vi[i] < 0.15,
                    "variance mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn into_variant_avoids_reallocation_and_matches() {
        let weights = vec![6u64, 14, 9, 21];
        let mut a = Pcg64::seed_from_u64(11);
        let mut b = Pcg64::seed_from_u64(11);
        let direct = multivariate_hypergeometric(&mut a, 20, &weights);
        let mut buf = vec![0u64; weights.len()];
        multivariate_hypergeometric_into(&mut b, 20, &weights, &mut buf);
        assert_eq!(direct, buf);
    }

    #[test]
    fn zero_weight_categories_get_zero() {
        let mut rng = Pcg64::seed_from_u64(12);
        let weights = vec![0u64, 10, 0, 10, 0];
        for _ in 0..100 {
            let alpha = multivariate_hypergeometric(&mut rng, 15, &weights);
            assert_eq!(alpha[0], 0);
            assert_eq!(alpha[2], 0);
            assert_eq!(alpha[4], 0);
        }
    }

    #[test]
    fn random_number_budget_is_linear_in_categories() {
        // Algorithm 2 makes at most one hypergeometric call per category;
        // with the adaptive sampler each call costs a handful of uniforms.
        let weights: Vec<u64> = (0..256).map(|i| 10 + (i % 7)).collect();
        let total: u64 = weights.iter().sum();
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(13));
        let _ = multivariate_hypergeometric(&mut rng, total / 2, &weights);
        assert!(
            rng.count() < 8 * weights.len() as u64,
            "used {} draws for {} categories",
            rng.count(),
            weights.len()
        );
    }
}
