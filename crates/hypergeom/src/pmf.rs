//! The hypergeometric distribution `h(t, w, b)` — exact mass function,
//! cumulative distribution, moments, mode and support.
//!
//! This is equation (4) of the paper:
//!
//! ```text
//! P(X_{t,w,b} = k) = C(w, k) · C(b, t−k) / C(w+b, t)
//! ```
//!
//! where `t` balls are drawn without replacement from an urn containing `w`
//! white and `b` black balls and `X` counts the white balls drawn.

use crate::lnfact::ln_binomial;
use crate::sampler;
use cgp_rng::RandomSource;

/// The hypergeometric distribution `h(t, w, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    /// Number of draws `t` (the sample size).
    pub draws: u64,
    /// Number of white balls `w` (successes in the population).
    pub white: u64,
    /// Number of black balls `b` (failures in the population).
    pub black: u64,
}

impl Hypergeometric {
    /// Creates `h(t, w, b)`.
    ///
    /// # Panics
    /// Panics if `t > w + b` — one cannot draw more balls than the urn holds.
    pub fn new(draws: u64, white: u64, black: u64) -> Self {
        let population = white
            .checked_add(black)
            .expect("hypergeometric population overflows u64");
        assert!(
            draws <= population,
            "cannot draw {draws} balls from an urn of {population}"
        );
        Hypergeometric {
            draws,
            white,
            black,
        }
    }

    /// Population size `w + b`.
    #[inline]
    pub fn population(&self) -> u64 {
        self.white + self.black
    }

    /// Smallest value with non-zero probability: `max(0, t − b)`.
    #[inline]
    pub fn support_min(&self) -> u64 {
        self.draws.saturating_sub(self.black)
    }

    /// Largest value with non-zero probability: `min(t, w)`.
    #[inline]
    pub fn support_max(&self) -> u64 {
        self.draws.min(self.white)
    }

    /// Whether the distribution is degenerate (a single support point).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.support_min() == self.support_max()
    }

    /// Expected value `t · w / (w + b)`.
    pub fn mean(&self) -> f64 {
        if self.population() == 0 {
            return 0.0;
        }
        self.draws as f64 * self.white as f64 / self.population() as f64
    }

    /// Variance `t · (w/n) · (b/n) · (n−t)/(n−1)` with `n = w + b`.
    pub fn variance(&self) -> f64 {
        let n = self.population() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let t = self.draws as f64;
        let p = self.white as f64 / n;
        t * p * (1.0 - p) * (n - t) / (n - 1.0)
    }

    /// The mode `⌊(t + 1)(w + 1) / (n + 2)⌋`, clamped into the support.
    pub fn mode(&self) -> u64 {
        let m = ((self.draws as u128 + 1) * (self.white as u128 + 1)
            / (self.population() as u128 + 2)) as u64;
        m.clamp(self.support_min(), self.support_max())
    }

    /// Natural logarithm of `P(X = k)`; `NEG_INFINITY` outside the support.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.support_min() || k > self.support_max() {
            return f64::NEG_INFINITY;
        }
        ln_binomial(self.white, k) + ln_binomial(self.black, self.draws - k)
            - ln_binomial(self.population(), self.draws)
    }

    /// `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P(X ≤ k)` by summation over the support (exact, O(support)).
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.support_max() {
            return 1.0;
        }
        let mut acc = 0.0;
        for j in self.support_min()..=k.min(self.support_max()) {
            acc += self.pmf(j);
        }
        acc.min(1.0)
    }

    /// Full probability vector over the support, returned as
    /// `(support_min, probabilities)`.  Intended for exact comparisons in
    /// tests and goodness-of-fit experiments; cost is `O(support)`.
    pub fn pmf_vector(&self) -> (u64, Vec<f64>) {
        let lo = self.support_min();
        let hi = self.support_max();
        let probs = (lo..=hi).map(|k| self.pmf(k)).collect();
        (lo, probs)
    }

    /// Draws one exact sample using the adaptive sampler (see
    /// [`crate::sampler`]).
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        sampler::sample(rng, self.draws, self.white, self.black)
    }

    /// Draws one sample with an explicitly chosen sampler backend.
    #[inline]
    pub fn sample_with<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        kind: sampler::SamplerKind,
    ) -> u64 {
        sampler::sample_with(rng, self.draws, self.white, self.black, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (t, w, b) in [
            (5u64, 10u64, 10u64),
            (0, 4, 4),
            (7, 3, 9),
            (12, 12, 0),
            (9, 0, 20),
        ] {
            let h = Hypergeometric::new(t, w, b);
            let total: f64 = (h.support_min()..=h.support_max()).map(|k| h.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "t={t} w={w} b={b}: {total}");
        }
    }

    #[test]
    fn matches_hand_computed_example() {
        // Urn with 5 white, 5 black, draw 4: P(X=2) = C(5,2)C(5,2)/C(10,4) = 100/210.
        let h = Hypergeometric::new(4, 5, 5);
        assert!((h.pmf(2) - 100.0 / 210.0).abs() < 1e-12);
        assert!((h.pmf(0) - 5.0 / 210.0).abs() < 1e-12);
        assert!((h.pmf(4) - 5.0 / 210.0).abs() < 1e-12);
    }

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(7, 3, 9);
        assert_eq!(h.support_min(), 0);
        assert_eq!(h.support_max(), 3);
        let h = Hypergeometric::new(10, 4, 7);
        assert_eq!(h.support_min(), 3); // t - b = 10 - 7
        assert_eq!(h.support_max(), 4);
        assert_eq!(h.pmf(2), 0.0);
        assert_eq!(h.pmf(5), 0.0);
    }

    #[test]
    fn degenerate_cases() {
        // Drawing everything: X = w surely.
        let h = Hypergeometric::new(12, 5, 7);
        assert!(h.is_degenerate());
        assert_eq!(h.support_min(), 5);
        assert!((h.pmf(5) - 1.0).abs() < 1e-12);
        // Drawing nothing: X = 0 surely.
        let h = Hypergeometric::new(0, 5, 7);
        assert!(h.is_degenerate());
        assert!((h.pmf(0) - 1.0).abs() < 1e-12);
        // No white balls.
        let h = Hypergeometric::new(3, 0, 7);
        assert!((h.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_against_formula() {
        let h = Hypergeometric::new(20, 30, 70);
        assert!((h.mean() - 6.0).abs() < 1e-12);
        let n = 100.0;
        let var = 20.0 * 0.3 * 0.7 * (n - 20.0) / (n - 1.0);
        assert!((h.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn moments_match_pmf_summation() {
        let h = Hypergeometric::new(13, 17, 23);
        let (lo, probs) = h.pmf_vector();
        let mean: f64 = probs
            .iter()
            .enumerate()
            .map(|(i, p)| (lo + i as u64) as f64 * p)
            .sum();
        let var: f64 = probs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let x = (lo + i as u64) as f64;
                (x - mean) * (x - mean) * p
            })
            .sum();
        assert!((mean - h.mean()).abs() < 1e-9);
        assert!((var - h.variance()).abs() < 1e-9);
    }

    #[test]
    fn mode_is_a_maximum() {
        for (t, w, b) in [(10u64, 20u64, 30u64), (5, 5, 5), (17, 100, 3), (50, 60, 40)] {
            let h = Hypergeometric::new(t, w, b);
            let m = h.mode();
            let pm = h.pmf(m);
            for k in h.support_min()..=h.support_max() {
                assert!(h.pmf(k) <= pm + 1e-12, "t={t} w={w} b={b} k={k}");
            }
        }
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let h = Hypergeometric::new(8, 12, 9);
        let mut prev = 0.0;
        for k in 0..=8 {
            let c = h.cdf(k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((h.cdf(8) - 1.0).abs() < 1e-10);
        assert!((h.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn overdraw_panics() {
        Hypergeometric::new(11, 5, 5);
    }

    #[test]
    fn symmetry_white_black_swap() {
        // Counting blacks drawn from the swapped urn mirrors the distribution:
        // P_{t,w,b}(k) = P_{t,b,w}(t-k).
        let h1 = Hypergeometric::new(6, 9, 4);
        let h2 = Hypergeometric::new(6, 4, 9);
        for k in h1.support_min()..=h1.support_max() {
            assert!((h1.pmf(k) - h2.pmf(6 - k)).abs() < 1e-12);
        }
    }
}
