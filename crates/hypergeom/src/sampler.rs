//! Adaptive exact sampling of `h(t, w, b)`.
//!
//! Two exact backends are available:
//!
//! * **Inversion** (`crate::inverse`) — one uniform draw, cost proportional
//!   to the width of the distribution.  Ideal when the standard deviation is
//!   small (which in the matrix-sampling workload is the common case for the
//!   later, already-thinned splits).
//! * **HRUA rejection** (`crate::hrua`) — a small constant number of
//!   uniforms, constant expected cost, for wide distributions.
//!
//! The dispatcher chooses by the *expected chop-down walk length* of the
//! target, `E[X] − support_min`: below [`INVERSION_WALK_CUTOFF`] the walk is
//! short, so inversion is both cheaper *and* uses fewer random numbers; above
//! it HRUA wins.  The cutoff is an ablation knob measured by experiment E2.
//!
//! Earlier revisions dispatched on the standard deviation instead.  That is
//! the wrong cost model: the chop-down starts at the lower end of the support
//! and performs exactly `k − support_min` multiply-adds, so its expected cost
//! is the distance from `support_min` to the mean, not the width of the
//! distribution.  A narrow target far from its support minimum (small sd,
//! large mean — exactly the splits produced by the bucketed scatter-shuffle
//! of `cgp-core::cache_aware`) walked hundreds of states per draw under the
//! sd rule while HRUA would have sampled it at constant cost.

use crate::hrua::sample_hrua;
use crate::inverse::sample_inverse;
use crate::pmf::Hypergeometric;
use cgp_rng::RandomSource;

/// Expected-walk-length threshold below which inversion is used.
///
/// The chop-down walk performs `k − support_min` steps to return `k`, so its
/// expected cost is `mean − support_min` multiply-adds; up to a few dozen
/// steps that is cheaper than an HRUA iteration (two uniforms, four
/// `ln_factorial` evaluations and possibly a logarithm).
pub const INVERSION_WALK_CUTOFF: f64 = 24.0;

/// Former name of [`INVERSION_WALK_CUTOFF`], kept for source compatibility.
#[deprecated(note = "dispatch is by expected walk length; use INVERSION_WALK_CUTOFF")]
pub const INVERSION_SD_CUTOFF: f64 = INVERSION_WALK_CUTOFF;

/// Explicit sampler selection, mostly for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Always use the one-uniform chop-down inversion.
    Inverse,
    /// Always use HRUA ratio-of-uniforms rejection.
    Hrua,
    /// Choose automatically from the distribution's standard deviation.
    Adaptive,
}

/// Draws one sample of `h(t, w, b)` with the adaptive backend.
///
/// ```
/// use cgp_hypergeom::sample;
/// use cgp_rng::Pcg64;
/// let mut rng = Pcg64::seed_from_u64(0);
/// let k = sample(&mut rng, 10, 100, 900);
/// assert!(k <= 10);
/// ```
#[inline]
pub fn sample<R: RandomSource + ?Sized>(rng: &mut R, t: u64, w: u64, b: u64) -> u64 {
    sample_with(rng, t, w, b, SamplerKind::Adaptive)
}

/// Draws one sample of `h(t, w, b)` with an explicitly selected backend.
pub fn sample_with<R: RandomSource + ?Sized>(
    rng: &mut R,
    t: u64,
    w: u64,
    b: u64,
    kind: SamplerKind,
) -> u64 {
    let h = Hypergeometric::new(t, w, b);
    // Degenerate distributions consume no randomness at all.
    if h.is_degenerate() {
        return h.support_min();
    }
    match kind {
        SamplerKind::Inverse => sample_inverse(rng, t, w, b),
        SamplerKind::Hrua => sample_hrua(rng, t, w, b),
        SamplerKind::Adaptive => {
            // Expected number of chop-down steps: distance from the support
            // minimum to the mean.
            if h.mean() - h.support_min() as f64 <= INVERSION_WALK_CUTOFF {
                sample_inverse(rng, t, w, b)
            } else {
                sample_hrua(rng, t, w, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::{CountingRng, Pcg64, RandomSource};

    #[test]
    fn degenerate_cases_cost_zero_randomness() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(1));
        assert_eq!(sample(&mut rng, 0, 10, 10), 0);
        assert_eq!(sample(&mut rng, 20, 10, 10), 10);
        assert_eq!(sample(&mut rng, 5, 0, 10), 0);
        assert_eq!(sample(&mut rng, 5, 10, 0), 5);
        assert_eq!(rng.count(), 0);
    }

    #[test]
    fn adaptive_matches_support_for_mixed_sizes() {
        let mut rng = Pcg64::seed_from_u64(2);
        for (t, w, b) in [
            (1u64, 1u64, 1u64),
            (10, 5, 5),
            (100, 1_000, 1_000),
            (5_000, 100_000, 300_000),
            (1, 1_000_000, 1_000_000),
        ] {
            let h = Hypergeometric::new(t, w, b);
            for _ in 0..200 {
                let k = sample(&mut rng, t, w, b);
                assert!(k >= h.support_min() && k <= h.support_max());
            }
        }
    }

    #[test]
    fn explicit_backends_agree_on_moments() {
        let (t, w, b) = (80u64, 120u64, 200u64);
        let h = Hypergeometric::new(t, w, b);
        let n = 30_000usize;
        for kind in [
            SamplerKind::Inverse,
            SamplerKind::Hrua,
            SamplerKind::Adaptive,
        ] {
            let mut rng = Pcg64::seed_from_u64(42);
            let mean = (0..n)
                .map(|_| sample_with(&mut rng, t, w, b, kind) as f64)
                .sum::<f64>()
                / n as f64;
            let tol = 5.0 * (h.variance() / n as f64).sqrt();
            assert!(
                (mean - h.mean()).abs() < tol,
                "{kind:?}: mean {mean} vs {}",
                h.mean()
            );
        }
    }

    #[test]
    fn average_draw_count_is_small() {
        // The quantitative claim of Section 3 (E2): averaged over realistic
        // parameters the sampler needs only a couple of uniforms per variate.
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(3));
        let mut samples = 0u64;
        for &(t, w, b) in &[
            (1_000u64, 4_000u64, 12_000u64),
            (50, 200, 600),
            (10, 100, 100),
            (200_000, 500_000, 500_000),
            (3, 17, 23),
        ] {
            for _ in 0..4_000 {
                let _ = sample(&mut rng, t, w, b);
                samples += 1;
            }
        }
        let per_sample = rng.count() as f64 / samples as f64;
        assert!(
            per_sample < 4.0,
            "adaptive sampler used {per_sample} draws/sample"
        );
    }

    #[test]
    fn adaptive_picks_inversion_for_narrow_targets() {
        // A narrow distribution must cost exactly one uniform through the
        // adaptive path (proving the dispatcher routed it to inversion).
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(4));
        let _ = sample(&mut rng, 4, 1_000_000, 1_000_000);
        assert_eq!(rng.count(), 1);
    }

    #[test]
    fn deterministic_given_seed_and_kind() {
        for kind in [
            SamplerKind::Inverse,
            SamplerKind::Hrua,
            SamplerKind::Adaptive,
        ] {
            let mut a = Pcg64::seed_from_u64(9);
            let mut b = Pcg64::seed_from_u64(9);
            for _ in 0..50 {
                assert_eq!(
                    sample_with(&mut a, 500, 2_000, 3_000, kind),
                    sample_with(&mut b, 500, 2_000, 3_000, kind)
                );
            }
            // Both clones must also have consumed the same amount of state.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
