//! Inverse-transform ("chop-down") sampling of the hypergeometric law.
//!
//! A single uniform `U ∈ [0, 1)` is drawn and the cumulative mass is chopped
//! down starting from the lower end of the support, using the recurrence
//!
//! ```text
//! P(k+1) / P(k) = (w − k)(t − k) / ((k + 1)(b − t + k + 1))
//! ```
//!
//! so no factorials are evaluated inside the loop.  The method is exact and
//! consumes exactly **one** uniform draw; its running time is proportional to
//! the distance walked, so it is the right choice whenever the distribution
//! is narrow (small `t`, small mean or small variance).  The adaptive
//! dispatcher in [`crate::sampler`] makes that choice.

use cgp_rng::{RandomExt, RandomSource};

/// Maximum number of chop-down steps before the accumulated floating-point
/// error could matter; the dispatcher never sends distributions wider than
/// this here, but the loop also guards against running off the support.
pub(crate) const INVERSE_MAX_STEPS: u64 = 4_096;

/// Samples `h(t, w, b)` by inversion.  Exact for any parameters, but cost is
/// proportional to `k − support_min`, so callers should prefer it only for
/// narrow distributions.
pub fn sample_inverse<R: RandomSource + ?Sized>(rng: &mut R, t: u64, w: u64, b: u64) -> u64 {
    debug_assert!(t <= w + b);
    let support_min = t.saturating_sub(b);
    let support_max = t.min(w);
    if support_min == support_max {
        return support_min;
    }

    // ln P(support_min) computed once; subsequent masses by recurrence.
    let h = crate::pmf::Hypergeometric::new(t, w, b);
    let mut k = support_min;
    let mut p = h.pmf(support_min);
    let mut u = rng.gen_f64();

    // Chop down: subtract successive masses until the uniform is exhausted.
    while u > p && k < support_max {
        u -= p;
        // Recurrence for the next mass.
        let num = (w - k) as f64 * (t - k) as f64;
        let den = (k + 1) as f64 * (b + k + 1 - t) as f64;
        p *= num / den;
        k += 1;
        if k - support_min > INVERSE_MAX_STEPS {
            // Numerical safety net: the remaining tail mass is far below any
            // representable uniform, so returning here introduces no
            // statistically observable bias.
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::Hypergeometric;
    use cgp_rng::{CountingRng, Pcg64};

    #[test]
    fn stays_in_support() {
        let mut rng = Pcg64::seed_from_u64(1);
        for (t, w, b) in [
            (5u64, 8u64, 8u64),
            (10, 4, 7),
            (3, 0, 9),
            (9, 9, 0),
            (0, 5, 5),
        ] {
            let h = Hypergeometric::new(t, w, b);
            for _ in 0..500 {
                let k = sample_inverse(&mut rng, t, w, b);
                assert!(k >= h.support_min() && k <= h.support_max());
            }
        }
    }

    #[test]
    fn consumes_exactly_one_uniform() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(2));
        let before = rng.count();
        let _ = sample_inverse(&mut rng, 10, 20, 30);
        // gen_f64 consumes exactly one u64 word; Lemire rejection does not
        // apply here.
        assert_eq!(rng.count() - before, 1);
    }

    #[test]
    fn degenerate_consumes_nothing() {
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(3));
        assert_eq!(sample_inverse(&mut rng, 0, 5, 5), 0);
        assert_eq!(sample_inverse(&mut rng, 10, 10, 0), 10);
        assert_eq!(rng.count(), 0);
    }

    #[test]
    fn empirical_mean_matches() {
        let mut rng = Pcg64::seed_from_u64(4);
        let (t, w, b) = (12u64, 18u64, 30u64);
        let h = Hypergeometric::new(t, w, b);
        let n = 60_000;
        let sum: u64 = (0..n).map(|_| sample_inverse(&mut rng, t, w, b)).sum();
        let mean = sum as f64 / n as f64;
        let tol = 4.0 * (h.variance() / n as f64).sqrt();
        assert!((mean - h.mean()).abs() < tol, "mean {mean} vs {}", h.mean());
    }

    #[test]
    fn empirical_histogram_matches_pmf() {
        let mut rng = Pcg64::seed_from_u64(5);
        let (t, w, b) = (6u64, 7u64, 9u64);
        let h = Hypergeometric::new(t, w, b);
        let n = 120_000u64;
        let mut counts = vec![0u64; (h.support_max() + 1) as usize];
        for _ in 0..n {
            counts[sample_inverse(&mut rng, t, w, b) as usize] += 1;
        }
        for k in h.support_min()..=h.support_max() {
            let expected = h.pmf(k) * n as f64;
            let observed = counts[k as usize] as f64;
            // 5-sigma Poisson-ish band.
            assert!(
                (observed - expected).abs() < 5.0 * expected.sqrt() + 5.0,
                "k={k}: observed {observed}, expected {expected}"
            );
        }
    }
}
