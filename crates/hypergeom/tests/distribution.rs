//! Distributional integration tests: every sampler backend is checked
//! against the exact probability mass function with a chi-square
//! goodness-of-fit test, and the multivariate variants against their exact
//! marginals.  Fixed seeds keep the tests deterministic.

use cgp_hypergeom::{
    multivariate_hypergeometric, multivariate_hypergeometric_recursive, sample_with,
    Hypergeometric, SamplerKind,
};
use cgp_rng::Pcg64;
use cgp_stats::chi_square_test;

/// Chi-square goodness of fit of `samples` draws of a given backend against
/// the exact pmf of `h(t, w, b)`.
fn goodness_of_fit(t: u64, w: u64, b: u64, kind: SamplerKind, samples: u64, seed: u64) -> f64 {
    let h = Hypergeometric::new(t, w, b);
    let lo = h.support_min();
    let hi = h.support_max();
    let mut counts = vec![0u64; (hi - lo + 1) as usize];
    let mut rng = Pcg64::seed_from_u64(seed);
    for _ in 0..samples {
        let k = sample_with(&mut rng, t, w, b, kind);
        counts[(k - lo) as usize] += 1;
    }
    // Merge cells with tiny expectation into their neighbours to keep the
    // chi-square approximation valid.
    let mut merged_obs = Vec::new();
    let mut merged_exp = Vec::new();
    let mut acc_obs = 0u64;
    let mut acc_exp = 0.0f64;
    for (i, &c) in counts.iter().enumerate() {
        acc_obs += c;
        acc_exp += h.pmf(lo + i as u64) * samples as f64;
        if acc_exp >= 8.0 {
            merged_obs.push(acc_obs);
            merged_exp.push(acc_exp);
            acc_obs = 0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 {
        if let (Some(o), Some(e)) = (merged_obs.last_mut(), merged_exp.last_mut()) {
            *o += acc_obs;
            *e += acc_exp;
        } else {
            merged_obs.push(acc_obs);
            merged_exp.push(acc_exp);
        }
    }
    chi_square_test(&merged_obs, &merged_exp, 0).p_value
}

#[test]
fn inversion_sampler_fits_the_exact_pmf() {
    let p = goodness_of_fit(12, 30, 50, SamplerKind::Inverse, 60_000, 1);
    assert!(p > 0.001, "inversion sampler rejected with p = {p}");
}

#[test]
fn hrua_sampler_fits_the_exact_pmf() {
    let p = goodness_of_fit(60, 150, 250, SamplerKind::Hrua, 60_000, 2);
    assert!(p > 0.001, "HRUA sampler rejected with p = {p}");
}

#[test]
fn adaptive_sampler_fits_on_both_sides_of_the_cutoff() {
    // Narrow target (routes to inversion).
    let p = goodness_of_fit(8, 2_000, 6_000, SamplerKind::Adaptive, 60_000, 3);
    assert!(p > 0.001, "adaptive/narrow rejected with p = {p}");
    // Wide target (routes to HRUA).
    let p = goodness_of_fit(600, 1_500, 2_500, SamplerKind::Adaptive, 40_000, 4);
    assert!(p > 0.001, "adaptive/wide rejected with p = {p}");
}

#[test]
fn asymmetric_parameters_fit_too() {
    // Exercise the symmetry reductions of HRUA: w > b and t > popsize/2.
    let p = goodness_of_fit(700, 600, 300, SamplerKind::Hrua, 40_000, 5);
    assert!(p > 0.001, "asymmetric HRUA rejected with p = {p}");
}

#[test]
fn multivariate_marginal_components_fit_the_univariate_law() {
    // Component j of the multivariate law is h(m, w_j, n − w_j).
    let weights = vec![15u64, 25, 40, 20];
    let n: u64 = weights.iter().sum();
    let m = 30u64;
    let samples = 40_000u64;
    let mut rng = Pcg64::seed_from_u64(6);
    let mut counts = vec![vec![0u64; (m + 1) as usize]; weights.len()];
    for _ in 0..samples {
        let alpha = multivariate_hypergeometric(&mut rng, m, &weights);
        for (j, &a) in alpha.iter().enumerate() {
            counts[j][a as usize] += 1;
        }
    }
    for (j, &w) in weights.iter().enumerate() {
        let h = Hypergeometric::new(m, w, n - w);
        let expected: Vec<f64> = (0..counts[j].len() as u64)
            .map(|k| h.pmf(k) * samples as f64)
            .collect();
        // Merge the tails: only keep cells with expectation >= 5.
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        let mut tail_o = 0u64;
        let mut tail_e = 0.0;
        for (o, e) in counts[j].iter().zip(&expected) {
            if *e >= 5.0 {
                obs.push(*o);
                exp.push(*e);
            } else {
                tail_o += o;
                tail_e += e;
            }
        }
        if tail_e > 0.0 {
            obs.push(tail_o);
            exp.push(tail_e);
        }
        let outcome = chi_square_test(&obs, &exp, 0);
        assert!(
            outcome.is_consistent_at(0.001),
            "component {j} rejected: {outcome:?}"
        );
    }
}

#[test]
fn recursive_multivariate_matches_iterative_in_distribution() {
    // Two-sample chi-square-style comparison on the first component.
    let weights = vec![10u64, 14, 6, 20, 10];
    let m = 25u64;
    let samples = 30_000u64;
    let mut iter_counts = vec![0u64; (m + 1) as usize];
    let mut rec_counts = vec![0u64; (m + 1) as usize];
    let mut r1 = Pcg64::seed_from_u64(7);
    let mut r2 = Pcg64::seed_from_u64(8);
    for _ in 0..samples {
        iter_counts[multivariate_hypergeometric(&mut r1, m, &weights)[0] as usize] += 1;
        rec_counts[multivariate_hypergeometric_recursive(&mut r2, m, &weights)[0] as usize] += 1;
    }
    // Expected law for component 0: h(m, w0, n - w0).
    let n: u64 = weights.iter().sum();
    let h = Hypergeometric::new(m, weights[0], n - weights[0]);
    for (name, counts) in [("iterative", &iter_counts), ("recursive", &rec_counts)] {
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        for k in 0..counts.len() as u64 {
            let e = h.pmf(k) * samples as f64;
            if e >= 5.0 {
                obs.push(counts[k as usize]);
                exp.push(e);
            }
        }
        let outcome = chi_square_test(&obs, &exp, 0);
        assert!(
            outcome.is_consistent_at(0.001),
            "{name} rejected: {outcome:?}"
        );
    }
}
