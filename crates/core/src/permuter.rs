//! A high-level builder API around [`crate::permute_vec`].
//!
//! Most callers only want "permute this vector over `p` processors with seed
//! `s`"; the [`Permuter`] builder wraps machine construction, option
//! plumbing and report handling into a reusable object.

use crate::cache_aware::LocalShuffle;
use crate::config::{Algorithm, EngineConfig, MatrixBackend, PermuteOptions};
use crate::parallel::{permute_vec, permute_vec_into, PermutationReport, PermuteScratch};
use crate::service::{PermutationService, ServiceConfig};
use crate::session::PermutationSession;
use cgp_cgm::{CgmConfig, CgmError, CgmMachine, TransportKind};

/// Reusable configuration for generating parallel random permutations.
///
/// ```
/// use cgp_core::{MatrixBackend, Permuter};
///
/// let permuter = Permuter::new(4)
///     .seed(42)
///     .backend(MatrixBackend::ParallelOptimal);
/// let data: Vec<u64> = (0..1_000).collect();
/// let (shuffled, report) = permuter.permute(data);
/// assert_eq!(shuffled.len(), 1_000);
/// assert!(report.max_exchange_volume() <= 2 * 250);
/// ```
#[derive(Debug, Clone)]
pub struct Permuter {
    engine: EngineConfig,
    backend: MatrixBackend,
    keep_matrix: bool,
}

impl Permuter {
    /// A permuter using `procs` virtual processors, seed `0` and the
    /// sequential matrix backend.
    ///
    /// # Panics
    /// Panics if `procs == 0`; [`Permuter::try_new`] reports that as a
    /// value instead.
    pub fn new(procs: usize) -> Self {
        Permuter::try_new(procs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: a permuter over `procs` virtual processors, or
    /// [`CgmError::NoProcessors`] when `procs == 0`.  Use this when the
    /// processor count comes from configuration or user input, so the
    /// misconfiguration surfaces as a descriptive error at the API boundary
    /// instead of an `assert!` deep inside the machine.
    pub fn try_new(procs: usize) -> Result<Self, CgmError> {
        Permuter::try_from_engine(EngineConfig::new(procs))
    }

    /// A permuter running a prebuilt [`EngineConfig`] — the bridge from the
    /// engine-selection core shared with sessions and
    /// [`ServiceConfig::from_engine`].
    ///
    /// # Panics
    /// Panics if `engine.procs == 0`; [`Permuter::try_from_engine`]
    /// reports that as a value instead.
    pub fn from_engine(engine: EngineConfig) -> Self {
        Permuter::try_from_engine(engine).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Permuter::from_engine`].
    pub fn try_from_engine(engine: EngineConfig) -> Result<Self, CgmError> {
        // Same validation (and same error) as the machine itself.
        CgmConfig::try_new(engine.procs)?;
        Ok(Permuter {
            engine,
            backend: MatrixBackend::Sequential,
            keep_matrix: false,
        })
    }

    /// The engine-selection core this permuter runs: push it through
    /// [`ServiceConfig::from_engine`] or [`Permuter::from_engine`] to stand
    /// up another surface with the identical configuration.
    pub fn engine(&self) -> EngineConfig {
        self.engine
    }

    /// Sets the master seed; every derived random stream follows from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Selects the permutation engine: the Gustedt exchange pipeline (the
    /// default) or the compare-exchange dart engine
    /// ([`Algorithm::Darts`], see [`crate::darts`]).  Both are exactly
    /// uniform and seed-deterministic, but they do **not** produce the
    /// same permutation for the same seed.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.engine.algorithm = algorithm;
        self
    }

    /// Selects the matrix-sampling backend (Algorithms 3–6).  Only
    /// meaningful under [`Algorithm::Gustedt`]; the dart engine samples no
    /// matrix.
    pub fn backend(mut self, backend: MatrixBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the engine for the local (per-processor) shuffles.  The
    /// default is [`LocalShuffle::Auto`]: plain Fisher–Yates for
    /// cache-resident blocks, the bucketed scatter shuffle past the
    /// crossover.  Changing the engine changes which (equally uniform)
    /// permutation a seed produces — see [`LocalShuffle`].
    pub fn local_shuffle(mut self, engine: LocalShuffle) -> Self {
        self.engine.local_shuffle = engine;
        self
    }

    /// Keeps the sampled communication matrix in the report.
    pub fn keep_matrix(mut self) -> Self {
        self.keep_matrix = true;
        self
    }

    /// Selects the transport substrate the machine's fabric is opened on —
    /// in-process channels ([`TransportKind::Threads`], the default) or
    /// per-processor mailbox child processes over Unix domain sockets
    /// ([`TransportKind::Process`]).  The substrate never touches the
    /// engine's random streams, so the same seed produces the identical
    /// permutation on either; see the `cgp_cgm::transport` module docs for
    /// the `process::init` re-exec contract the process transport needs.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.engine.transport = kind;
        self
    }

    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.engine.procs
    }

    /// Builds the underlying virtual machine (exposed so callers can run
    /// their own CGM phases with the same configuration).
    pub fn machine(&self) -> CgmMachine {
        CgmMachine::new(self.engine.cgm_config())
    }

    fn options(&self) -> PermuteOptions {
        let o = self.engine.options().backend(self.backend);
        if self.keep_matrix {
            o.keep_matrix()
        } else {
            o
        }
    }

    /// Opens a steady-state [`PermutationSession`] for payload type `T`: a
    /// resident worker pool plus recycled buffers, so repeated permutations
    /// make no thread spawns, no channel construction and (once warm) no
    /// per-item allocations.  The session produces exactly the permutations
    /// this permuter's one-shot methods produce — see the
    /// [`crate::session`] module docs for the one-shot vs. session guide.
    pub fn session<T: Send + 'static>(&self) -> PermutationSession<T> {
        self.try_session().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Permuter::session`].  With a `Permuter` built
    /// through its constructors the processor count is already validated,
    /// so the remaining failure is [`CgmError::WorkerSpawnFailed`] — the OS
    /// refusing a resident worker thread (e.g. under thread exhaustion).
    pub fn try_session<T: Send + 'static>(&self) -> Result<PermutationSession<T>, CgmError> {
        PermutationSession::create(self.engine, self.options())
    }

    /// Stands up a multi-tenant [`PermutationService`] for payload type
    /// `T`: a fleet of resident machines (sized for this host — see
    /// [`ServiceConfig::new`]) serving concurrent clients through cheap
    /// cloneable handles, with a bounded admission queue and per-tenant
    /// metrics.  Every job produces exactly the permutation this
    /// permuter's one-shot methods produce — see the [`crate::service`]
    /// module docs for the one-shot vs. session vs. service guide.
    pub fn service<T: Send + 'static>(&self) -> PermutationService<T> {
        PermutationService::new(self.service_config(), self.options())
    }

    /// [`Permuter::service`] with an explicit fleet size and admission-queue
    /// depth (processor count and seed still come from this permuter).
    pub fn service_sized<T: Send + 'static>(
        &self,
        machines: usize,
        queue_depth: usize,
    ) -> PermutationService<T> {
        PermutationService::new(
            self.service_config()
                .machines(machines)
                .queue_depth(queue_depth),
            self.options(),
        )
    }

    /// Fallible variant of [`Permuter::service`]: reports
    /// [`CgmError::WorkerSpawnFailed`] when the OS refuses a resident
    /// worker or dispatcher thread instead of panicking.
    pub fn try_service<T: Send + 'static>(&self) -> Result<PermutationService<T>, CgmError> {
        PermutationService::try_new(self.service_config(), self.options())
    }

    /// The [`ServiceConfig`] this permuter's [`Permuter::service`] would
    /// use — the starting point for custom sizing (tenant quotas, coalesce
    /// budget, …) to pass to [`PermutationService::new`] directly.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig::from_engine(self.engine)
    }

    /// Uniformly permutes `data`, returning the permuted vector and the run
    /// report.  Items are moved through the exchange, never cloned, so `T`
    /// only needs to be `Send`.
    pub fn permute<T: Send + 'static>(&self, data: Vec<T>) -> (Vec<T>, PermutationReport) {
        permute_vec(&self.machine(), data, &self.options())
    }

    /// Uniformly permutes `data` in place (convenience wrapper that swaps the
    /// vector's contents for the permuted ones).
    pub fn permute_in_place<T: Send + 'static>(&self, data: &mut Vec<T>) -> PermutationReport {
        let owned = std::mem::take(data);
        let (permuted, report) = self.permute(owned);
        *data = permuted;
        report
    }

    /// Uniformly permutes `data` in place, recycling every intermediate
    /// buffer through `scratch` across calls.
    ///
    /// Produces exactly the same permutation as [`Permuter::permute`] for the
    /// same configuration; only the allocation behaviour differs.  Keep one
    /// [`PermuteScratch`] per call site that permutes in a loop — after the
    /// first call the scratch is warm and steady-state calls reuse the block
    /// and outgoing-vector allocations instead of reallocating them.
    pub fn permute_into<T: Send + 'static>(
        &self,
        data: &mut Vec<T>,
        scratch: &mut PermuteScratch<T>,
    ) -> PermutationReport {
        permute_vec_into(&self.machine(), data, &self.options(), scratch)
    }

    /// Generates a uniformly random permutation of `0..n` (as indices), by
    /// running the full parallel algorithm on the index vector.
    ///
    /// This is the sampling half of the **index-permutation fast path**: pair
    /// it with [`crate::apply_permutation`] to rearrange payloads that are
    /// not `Send` (or too heavyweight to ship through the exchange) with a
    /// local `O(n)` gather by moves.
    ///
    /// Under [`Algorithm::Darts`] this is the engine's native mode: the
    /// darts are thrown directly, with no identity vector ever staged
    /// through the payload plumbing (the result is still byte-identical to
    /// permuting `(0..n)` explicitly — gathering the identity through the
    /// index permutation reproduces the indices).
    pub fn sample_permutation(&self, n: usize) -> Vec<u64> {
        if let Algorithm::Darts { target_factor } = self.engine.algorithm {
            let mut out = Vec::with_capacity(n);
            let mut exec = self.machine();
            crate::darts::darts_index_into::<u64, _>(&mut exec, n, target_factor, &mut out)
                .unwrap_or_else(|e| panic!("{e}"));
            return out;
        }
        self.permute((0..n as u64).collect()).0
    }

    /// Generates a uniformly random permutation of `0..n` (as indices).
    ///
    /// Alias of [`Permuter::sample_permutation`], kept for discoverability.
    pub fn index_permutation(&self, n: usize) -> Vec<u64> {
        self.sample_permutation(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let p = Permuter::new(3)
            .seed(9)
            .backend(MatrixBackend::Recursive)
            .keep_matrix();
        assert_eq!(p.procs(), 3);
        let (_, report) = p.permute((0..90u64).collect());
        assert!(report.matrix.is_some());
        assert_eq!(report.backend, MatrixBackend::Recursive);
    }

    #[test]
    fn same_seed_same_result() {
        let a = Permuter::new(4).seed(1).index_permutation(200);
        let b = Permuter::new(4).seed(1).index_permutation(200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_result() {
        let a = Permuter::new(4).seed(1).index_permutation(200);
        let b = Permuter::new(4).seed(2).index_permutation(200);
        assert_ne!(a, b);
    }

    #[test]
    fn permute_in_place_swaps_contents() {
        let mut data: Vec<u64> = (0..128).collect();
        let original = data.clone();
        let _ = Permuter::new(2).seed(7).permute_in_place(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }

    #[test]
    fn sample_permutation_plus_apply_matches_direct_permute() {
        // The index fast path must induce the same permutation as shipping
        // the payloads through the exchange directly.
        let permuter = Permuter::new(3).seed(5);
        let perm = permuter.sample_permutation(120);
        let direct: Vec<u64> = permuter.permute((0..120u64).collect()).0;
        assert_eq!(crate::apply_permutation(&perm, (0..120).collect()), direct);
    }

    #[test]
    fn permute_into_reuses_scratch_across_rounds() {
        let permuter = Permuter::new(4).seed(13);
        let reference = permuter.permute((0..400u64).collect()).0;
        let mut scratch = PermuteScratch::new();
        for _ in 0..3 {
            let mut data: Vec<u64> = (0..400).collect();
            permuter.permute_into(&mut data, &mut scratch);
            assert_eq!(data, reference);
        }
        assert!(scratch.retained_capacity() >= 400);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        Permuter::new(0);
    }

    #[test]
    fn try_new_reports_zero_processors_as_a_value() {
        // Satellite regression: library users validating a configured
        // processor count get a descriptive error, not a bare assert from
        // deep inside cgp-cgm.
        let err = Permuter::try_new(0).unwrap_err();
        assert_eq!(err, cgp_cgm::CgmError::NoProcessors);
        assert!(err.to_string().contains("at least one processor"));
        assert_eq!(Permuter::try_new(4).unwrap().procs(), 4);
    }

    #[test]
    fn local_shuffle_choice_reaches_the_engine_and_report() {
        let engine = LocalShuffle::Bucketed { bucket_items: 64 };
        let p = Permuter::new(2).seed(3).local_shuffle(engine);
        let (out, report) = p.permute((0..500u64).collect());
        assert_eq!(report.local_shuffle, engine);
        let mut sorted = out;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<u64>>());

        // Engines need not agree byte-for-byte: under the same seed the
        // bucketed engine emits a different (equally uniform) permutation
        // than the Fisher-Yates engine once buckets actually engage.
        let fy = Permuter::new(2)
            .seed(3)
            .local_shuffle(LocalShuffle::FisherYates)
            .sample_permutation(500);
        let bucketed = Permuter::new(2)
            .seed(3)
            .local_shuffle(engine)
            .sample_permutation(500);
        assert_ne!(fy, bucketed);
    }

    #[test]
    fn transport_defaults_to_threads_and_is_explicitly_selectable() {
        // The explicit thread transport is the default: same object, same
        // permutation.  (The process transport is exercised end-to-end in
        // tests/process_transport.rs, which owns main() for the re-exec
        // hook the child mailboxes need.)
        let default = Permuter::new(3).seed(11).index_permutation(90);
        let explicit = Permuter::new(3)
            .seed(11)
            .transport(TransportKind::Threads)
            .index_permutation(90);
        assert_eq!(default, explicit);
    }

    #[test]
    fn session_round_trips_and_matches_one_shot() {
        let permuter = Permuter::new(3).seed(41);
        let mut session = permuter.session::<u64>();
        let one_shot = permuter.permute((0..240u64).collect()).0;
        let (via_session, _) = session.permute((0..240u64).collect());
        assert_eq!(via_session, one_shot);
    }
}
