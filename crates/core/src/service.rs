//! A multi-tenant permutation service: many concurrent clients, one shared
//! fleet of resident machines.
//!
//! A [`crate::PermutationSession`] owns its [`cgp_cgm::ResidentCgm`]
//! exclusively — one caller, one machine.  A [`PermutationService`] is the
//! server-shaped counterpart: it owns a configurable **fleet** of resident
//! machines and multiplexes many independent permutation jobs over them,
//! the work-scheduling shape parallel CP solvers (Bobpp) and PGAS benchmark
//! harnesses use to serve multiple clients from one fixed set of
//! processing elements.
//!
//! * Clients hold cheap, cloneable [`ServiceHandle`]s and either
//!   [`ServiceHandle::submit`] (async, returns a [`JobTicket`]) or
//!   [`ServiceHandle::permute`] (blocking submit-and-wait).
//! * Admission goes through a **bounded FIFO queue**
//!   ([`ServiceConfig::queue_depth`]).  [`ServiceHandle::try_submit`] gives
//!   explicit backpressure — [`ServiceError::QueueFull`] hands the payload
//!   back untouched for retry — while the blocking `submit` parks the
//!   client until a slot frees up.  Malformed per-job options are rejected
//!   at admission ([`ServiceError::InvalidJob`], payload handed back), so
//!   they never occupy a machine.
//! * Each machine is driven by a dispatcher thread that pops jobs in FIFO
//!   order; with several machines idle, whichever polls first serves the
//!   job, so work always flows to an idle machine and per-machine
//!   [`PermuteScratch`] buffers stay warm.
//! * [`ServiceMetrics`] meters the whole operation: jobs served and failed,
//!   queue-wait vs run time (aggregate and per tenant), and per-machine
//!   utilization built on the per-job engine reports.
//!
//! # Fault isolation
//!
//! A job that panics inside a virtual processor is contained to its own
//! ticket: [`JobTicket::wait`] returns
//! [`ServiceError::JobFailed`]`(`[`CgmError::ProcessorPanicked`]`)` naming
//! the processor, the machine recovers through the resident pool's existing
//! recovery round, and the dispatcher returns it to rotation — one bad
//! tenant cannot poison the service for the others.  (The failed job's
//! items are lost: they had already been distributed into the machine.)
//!
//! # Determinism
//!
//! Every machine in the fleet runs the same configuration (seed, processor
//! count), and every random stream of Algorithm 1 is derived from that
//! seed per call — so **which machine serves a job never changes the
//! result**: a service permutation of `n` items equals the one-shot
//! [`crate::Permuter::permute`] of the same permuter, exactly as sessions
//! do.
//!
//! # One-shot vs. session vs. service
//!
//! | shape | startup | concurrency | use when |
//! |---|---|---|---|
//! | [`crate::Permuter::permute`] | per call | caller-side | a handful of calls |
//! | [`crate::Permuter::session`] | once | one caller | a steady single-caller loop |
//! | [`crate::Permuter::service`] | once | many callers | concurrent clients share a fleet |
//!
//! ```
//! use cgp_core::Permuter;
//!
//! let permuter = Permuter::new(2).seed(7);
//! let service = permuter.service::<u64>();
//! let handle = service.handle();
//! // Submit four jobs; tickets resolve in any order.
//! let tickets: Vec<_> = (0..4)
//!     .map(|_| handle.submit((0..100u64).collect()).unwrap())
//!     .collect();
//! let reference = permuter.permute((0..100u64).collect()).0;
//! for ticket in tickets {
//!     let (out, report) = ticket.wait().unwrap();
//!     assert_eq!(out, reference); // same seed ⇒ same permutation as one-shot
//!     assert!(report.max_exchange_volume() <= 2 * 50);
//! }
//! let metrics = service.shutdown();
//! assert_eq!(metrics.jobs_served, 4);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::PermuteOptions;
use crate::parallel::{try_permute_vec_into_with, PermutationReport, PermuteScratch};
use cgp_cgm::{CgmConfig, CgmError, ResidentCgm, TransportKind};

/// Sizing of a [`PermutationService`]: how many resident machines to run,
/// how many virtual processors each gets, and how deep the admission queue
/// is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of resident machines in the fleet.  Defaults to one machine
    /// per group of `procs` host threads (`available_parallelism / procs`,
    /// at least one), so the fleet saturates the host without
    /// oversubscribing it.
    pub machines: usize,
    /// Virtual processors per machine.
    pub procs: usize,
    /// Capacity of the bounded admission queue (jobs accepted but not yet
    /// dispatched).  `try_submit` reports [`ServiceError::QueueFull`] when
    /// it is reached; blocking `submit` parks instead.  Values below 1 are
    /// treated as 1 (a zero-depth queue could never admit anything).
    pub queue_depth: usize,
    /// Master seed shared by every machine of the fleet: all per-call
    /// random streams derive from it, which is what makes the service
    /// produce the same permutation regardless of the serving machine.
    pub seed: u64,
    /// Transport substrate every machine's fabric is opened on (see
    /// [`TransportKind`]).  The substrate never changes the permutation a
    /// seed produces, only where the mailboxes live.
    pub transport: TransportKind,
}

impl ServiceConfig {
    /// A fleet sized for this host: `procs` virtual processors per machine,
    /// one machine per `procs` host threads (at least one), and a queue
    /// twice the fleet size.
    pub fn new(procs: usize) -> Self {
        let host = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let machines = (host / procs.max(1)).max(1);
        ServiceConfig {
            machines,
            procs,
            queue_depth: 2 * machines,
            seed: 0,
            transport: TransportKind::Threads,
        }
    }

    /// Sets the fleet size.
    pub fn machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the admission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transport substrate for every machine of the fleet.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }
}

/// Why the service could not serve (or accept) a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity; retry later (the
    /// rejected payload is handed back in [`RejectedJob`]).  Only
    /// `try_submit` reports this — blocking `submit` parks instead.
    QueueFull,
    /// The service has been shut down and accepts no further jobs.
    ShutDown,
    /// The submission was malformed (e.g. per-job `target_sizes` that do
    /// not match the machine): rejected at admission with the payload
    /// handed back, before anything ran.
    InvalidJob(String),
    /// The job panicked inside a virtual processor; the error names it.
    /// The machine it ran on was recovered and returned to rotation — only
    /// this job is affected.
    JobFailed(CgmError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => {
                write!(f, "the service's admission queue is full; retry later")
            }
            ServiceError::ShutDown => {
                write!(f, "the permutation service is shut down")
            }
            ServiceError::InvalidJob(message) => {
                write!(f, "the submission was rejected: {message}")
            }
            ServiceError::JobFailed(e) => write!(f, "the job failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::JobFailed(e) => Some(e),
            _ => None,
        }
    }
}

/// A submission the service refused, with the payload handed back so the
/// caller can retry (after backpressure) or dispose of it.
#[derive(Debug)]
pub struct RejectedJob<T> {
    /// Why the submission was refused.
    pub error: ServiceError,
    /// The payload, untouched.
    pub data: Vec<T>,
}

/// What a completed job delivers to its ticket.
type JobOutcome<T> = Result<(Vec<T>, PermutationReport), ServiceError>;

/// One queued unit of work.
struct Job<T> {
    data: Vec<T>,
    options: PermuteOptions,
    tenant: usize,
    enqueued_at: Instant,
    reply: std::sync::mpsc::Sender<JobOutcome<T>>,
}

/// A claim on one submitted job: redeem it with [`JobTicket::wait`].
///
/// Tickets are `Send`, so a job can be submitted on one thread and awaited
/// on another.  Dropping a ticket abandons the result (the job still runs
/// and is metered).
#[derive(Debug)]
pub struct JobTicket<T> {
    rx: std::sync::mpsc::Receiver<JobOutcome<T>>,
    job_id: u64,
    tenant: usize,
}

impl<T> JobTicket<T> {
    /// Blocks until the job completes, yielding the permuted vector and its
    /// run report — or the error that felled it: a contained
    /// [`ServiceError::JobFailed`] panic, or [`ServiceError::ShutDown`] if
    /// the service died before serving the job (not reachable through a
    /// clean [`PermutationService::shutdown`], which drains the queue
    /// first).
    pub fn wait(self) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServiceError::ShutDown),
        }
    }

    /// Service-wide sequence number of this job (admission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The tenant (handle lineage) that submitted this job.
    pub fn tenant(&self) -> usize {
        self.tenant
    }
}

// ---------------------------------------------------------------------------
// The bounded admission queue
// ---------------------------------------------------------------------------

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    /// `false` once the service is shutting down: no further admissions;
    /// dispatchers drain what is queued and then exit.
    open: bool,
}

struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    depth: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Lock the queue state, surviving a poisoned mutex (a client thread that
/// panicked mid-push leaves consistent state: every critical section below
/// upholds the queue invariants before touching anything that can panic).
fn lock_state<T>(queue: &JobQueue<T>) -> MutexGuard<'_, QueueState<T>> {
    queue.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> JobQueue<T> {
    fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            depth: depth.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking admission: parks while the queue is full, fails only once
    /// the service shut down.
    ///
    /// The `Err` variant hands the rejected job back by value so the caller
    /// can resolve its ticket — boxing it would buy a heap allocation on
    /// every admission just to shrink a cold error path.
    #[allow(clippy::result_large_err)]
    fn push_blocking(&self, job: Job<T>) -> Result<(), Job<T>> {
        let mut st = lock_state(self);
        loop {
            if !st.open {
                return Err(job);
            }
            if st.jobs.len() < self.depth {
                st.jobs.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking admission: `Err((job, true))` when the queue is full
    /// (backpressure), `Err((job, false))` when the service shut down.
    ///
    /// Same by-value handback as [`JobQueue::push_blocking`].
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job<T>) -> Result<(), (Job<T>, bool)> {
        let mut st = lock_state(self);
        if !st.open {
            return Err((job, false));
        }
        if st.jobs.len() >= self.depth {
            return Err((job, true));
        }
        st.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dispatcher side: blocks for the next job in FIFO order; `None` once
    /// the queue is closed *and* drained.
    fn pop(&self) -> Option<Job<T>> {
        let mut st = lock_state(self);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !st.open {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission and wakes every parked client and dispatcher.
    /// Already-queued jobs stay queued — dispatchers drain them.
    fn close(&self) {
        let mut st = lock_state(self);
        st.open = false;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs currently admitted but not yet dispatched.
    fn len(&self) -> usize {
        lock_state(self).jobs.len()
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Rolling per-tenant counters (one slot per handle lineage).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// The tenant id (as reported by [`ServiceHandle::tenant`]).
    pub tenant: usize,
    /// Jobs served successfully for this tenant.
    pub jobs_served: u64,
    /// Jobs that failed (contained panics) for this tenant.
    pub jobs_failed: u64,
    /// Total time this tenant's jobs spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Total time this tenant's jobs spent running on a machine.
    pub run_time: Duration,
}

/// Rolling per-machine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineUtilization {
    /// Jobs this machine served (including failed ones — they occupied it).
    pub jobs: u64,
    /// Total wall-clock this machine spent running jobs.
    pub busy: Duration,
    /// Recovery rounds this machine's pool ran (one per contained panic).
    pub recoveries: u64,
}

impl MachineUtilization {
    /// Fraction of the service's uptime this machine spent busy.
    pub fn utilization(&self, uptime: Duration) -> f64 {
        if uptime.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / uptime.as_secs_f64()
        }
    }
}

/// A snapshot of everything the service has done so far, taken by
/// [`PermutationService::metrics`] (live) or returned by
/// [`PermutationService::shutdown`] (final).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Jobs served successfully, across all tenants.
    pub jobs_served: u64,
    /// Jobs that failed (contained panics), across all tenants.
    pub jobs_failed: u64,
    /// Total queue wait across all jobs.
    pub queue_wait: Duration,
    /// Total machine run time across all jobs.
    pub run_time: Duration,
    /// Wall-clock since the service started (to the snapshot).
    pub uptime: Duration,
    /// Per-machine rollups, indexed by machine.
    pub per_machine: Vec<MachineUtilization>,
    /// Per-tenant rollups, sorted by tenant id.
    pub per_tenant: Vec<TenantMetrics>,
}

impl ServiceMetrics {
    /// Jobs completed (served or failed).
    pub fn jobs_total(&self) -> u64 {
        self.jobs_served + self.jobs_failed
    }

    /// Mean queue wait per completed job.
    pub fn avg_queue_wait(&self) -> Duration {
        let jobs = self.jobs_total();
        if jobs == 0 {
            Duration::ZERO
        } else {
            self.queue_wait / jobs as u32
        }
    }

    /// Mean machine run time per completed job.
    pub fn avg_run_time(&self) -> Duration {
        let jobs = self.jobs_total();
        if jobs == 0 {
            Duration::ZERO
        } else {
            self.run_time / jobs as u32
        }
    }

    /// Aggregate served-job throughput over the service's uptime, in jobs
    /// per second.
    pub fn throughput(&self) -> f64 {
        if self.uptime.is_zero() {
            0.0
        } else {
            self.jobs_served as f64 / self.uptime.as_secs_f64()
        }
    }
}

#[derive(Default)]
struct MetricsInner {
    jobs_served: u64,
    jobs_failed: u64,
    queue_wait: Duration,
    run_time: Duration,
    per_machine: Vec<MachineUtilization>,
    /// Sparse per-tenant slots: tenants are created in order, so a Vec
    /// indexed by tenant id stays dense in practice.
    per_tenant: Vec<TenantMetrics>,
}

impl MetricsInner {
    fn record(
        &mut self,
        machine: usize,
        tenant: usize,
        wait: Duration,
        run: Duration,
        ok: bool,
        recoveries: u64,
    ) {
        self.queue_wait += wait;
        self.run_time += run;
        if ok {
            self.jobs_served += 1;
        } else {
            self.jobs_failed += 1;
        }
        let slot = &mut self.per_machine[machine];
        slot.jobs += 1;
        slot.busy += run;
        slot.recoveries = recoveries;
        if tenant >= self.per_tenant.len() {
            self.per_tenant
                .resize_with(tenant + 1, TenantMetrics::default);
        }
        let t = &mut self.per_tenant[tenant];
        t.tenant = tenant;
        t.queue_wait += wait;
        t.run_time += run;
        if ok {
            t.jobs_served += 1;
        } else {
            t.jobs_failed += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Everything the handles and dispatchers share.
struct Shared<T> {
    queue: JobQueue<T>,
    metrics: Mutex<MetricsInner>,
    /// The service-wide options (backend, …) jobs submitted without
    /// explicit options run with.
    default_options: PermuteOptions,
    /// Virtual processors per machine — what admission-time validation of
    /// per-job options checks against.
    procs: usize,
    next_job: AtomicU64,
    next_tenant: AtomicUsize,
    started_at: Instant,
}

/// A multi-tenant permutation scheduler over a fleet of resident machines.
/// See the [module docs](self) for the full picture.
pub struct PermutationService<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    dispatchers: Vec<Option<JoinHandle<()>>>,
    config: ServiceConfig,
}

impl<T: Send + 'static> PermutationService<T> {
    /// Builds the fleet and starts one dispatcher per machine.
    ///
    /// # Panics
    /// Panics when the configuration is unservable (zero machines or zero
    /// processors); [`PermutationService::try_new`] reports those as
    /// values.
    pub fn new(config: ServiceConfig, options: PermuteOptions) -> Self {
        PermutationService::try_new(config, options).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: spawns `machines` resident pools and their
    /// dispatcher threads, or reports [`CgmError::NoProcessors`] for an
    /// empty fleet / empty machines and [`CgmError::WorkerSpawnFailed`]
    /// when the OS refuses a thread (already-started machines are shut
    /// down and joined first).
    pub fn try_new(config: ServiceConfig, options: PermuteOptions) -> Result<Self, CgmError> {
        if config.machines == 0 || config.procs == 0 {
            return Err(CgmError::NoProcessors);
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_depth),
            metrics: Mutex::new(MetricsInner {
                per_machine: vec![MachineUtilization::default(); config.machines],
                ..MetricsInner::default()
            }),
            default_options: options,
            procs: config.procs,
            next_job: AtomicU64::new(0),
            next_tenant: AtomicUsize::new(0),
            started_at: Instant::now(),
        });
        let machine_config = CgmConfig::try_new(config.procs)?
            .with_seed(config.seed)
            .with_transport(config.transport);
        let mut dispatchers = Vec::with_capacity(config.machines);
        for machine_idx in 0..config.machines {
            // Spawn the pool on the service thread so spawn failures surface
            // here, then move it into its dispatcher.
            let pool = match ResidentCgm::<T>::try_new(machine_config) {
                Ok(pool) => pool,
                Err(e) => {
                    drop(pool_teardown(&shared, &mut dispatchers));
                    return Err(e);
                }
            };
            let shared_ref = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("cgp-dispatch-{machine_idx}"))
                .spawn(move || dispatcher_loop(machine_idx, pool, shared_ref))
            {
                Ok(handle) => dispatchers.push(Some(handle)),
                Err(e) => {
                    drop(pool_teardown(&shared, &mut dispatchers));
                    return Err(CgmError::WorkerSpawnFailed {
                        proc: machine_idx,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(PermutationService {
            shared,
            dispatchers,
            config,
        })
    }

    /// The service's sizing.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Number of resident machines in the fleet.
    pub fn machines(&self) -> usize {
        self.config.machines
    }

    /// Virtual processors per machine.
    pub fn procs(&self) -> usize {
        self.config.procs
    }

    /// Opens a client handle under a **fresh tenant id** — per-tenant
    /// metrics accrue to it.  Clone the handle to share one tenant's
    /// identity across threads; call `handle()` again for a separate
    /// tenant.
    pub fn handle(&self) -> ServiceHandle<T> {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
            tenant: self.shared.next_tenant.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Jobs currently admitted but not yet dispatched to a machine.
    pub fn queued_jobs(&self) -> usize {
        self.shared.queue.len()
    }

    /// A live snapshot of the service's metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        snapshot_metrics(&self.shared)
    }

    /// Stops admission, **drains every already-accepted job**, joins the
    /// dispatchers and their pools, and returns the final metrics.  Every
    /// ticket issued before the shutdown still resolves.
    pub fn shutdown(mut self) -> ServiceMetrics {
        let panics = self.close_and_join();
        let metrics = snapshot_metrics(&self.shared);
        if let Some((machine, payload)) = panics.into_iter().next() {
            panic!(
                "service dispatcher {machine} died abnormally: {}",
                panic_text(payload.as_ref())
            );
        }
        metrics
    }

    fn close_and_join(&mut self) -> Vec<(usize, Box<dyn Any + Send>)> {
        self.shared.queue.close();
        let mut panics = Vec::new();
        for (idx, slot) in self.dispatchers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                if let Err(payload) = handle.join() {
                    panics.push((idx, payload));
                }
            }
        }
        panics
    }
}

impl<T: Send + 'static> Drop for PermutationService<T> {
    fn drop(&mut self) {
        let panics = self.close_and_join();
        if let Some((machine, payload)) = panics.into_iter().next() {
            if !std::thread::panicking() {
                panic!(
                    "service dispatcher {machine} died abnormally: {}",
                    panic_text(payload.as_ref())
                );
            }
        }
    }
}

/// Best-effort teardown of a partially-built fleet: close the queue so the
/// already-running dispatchers exit, then join them.
fn pool_teardown<T: Send + 'static>(
    shared: &Arc<Shared<T>>,
    dispatchers: &mut [Option<JoinHandle<()>>],
) -> Vec<(usize, Box<dyn Any + Send>)> {
    shared.queue.close();
    let mut panics = Vec::new();
    for (idx, slot) in dispatchers.iter_mut().enumerate() {
        if let Some(handle) = slot.take() {
            if let Err(payload) = handle.join() {
                panics.push((idx, payload));
            }
        }
    }
    panics
}

fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn snapshot_metrics<T>(shared: &Shared<T>) -> ServiceMetrics {
    let inner = shared.metrics.lock().unwrap_or_else(|e| e.into_inner());
    let mut per_tenant = inner.per_tenant.clone();
    per_tenant.retain(|t| t.jobs_served + t.jobs_failed > 0);
    ServiceMetrics {
        jobs_served: inner.jobs_served,
        jobs_failed: inner.jobs_failed,
        queue_wait: inner.queue_wait,
        run_time: inner.run_time,
        uptime: shared.started_at.elapsed(),
        per_machine: inner.per_machine.clone(),
        per_tenant,
    }
}

/// A client's entry point into a [`PermutationService`]: cheap to clone
/// (one `Arc` bump) and `Send + Sync`, so it can be handed to any number
/// of client threads.
///
/// A handle carries a **tenant id**: clones share it (and its metrics
/// slot); [`PermutationService::handle`] mints fresh ones.
pub struct ServiceHandle<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    tenant: usize,
}

impl<T: Send + 'static> Clone for ServiceHandle<T> {
    fn clone(&self) -> Self {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
            tenant: self.tenant,
        }
    }
}

impl<T: Send + 'static> ServiceHandle<T> {
    /// This handle's tenant id (shared by its clones).
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    fn make_job(&self, data: Vec<T>, options: PermuteOptions) -> (Job<T>, JobTicket<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let ticket = JobTicket {
            rx,
            job_id: self.shared.next_job.fetch_add(1, Ordering::Relaxed),
            tenant: self.tenant,
        };
        let job = Job {
            data,
            options,
            tenant: self.tenant,
            enqueued_at: Instant::now(),
            reply: tx,
        };
        (job, ticket)
    }

    /// Submits a job with the service's default options (the ones the
    /// service was built with), **blocking while the admission queue is
    /// full**.  Fails only once the service is shut down (the payload
    /// comes back in the [`RejectedJob`]).
    pub fn submit(&self, data: Vec<T>) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.submit_with(data, self.shared.default_options.clone())
    }

    /// [`ServiceHandle::submit`] with explicit per-job options (matrix
    /// backend, local-shuffle engine, target sizes, …).  The job-level
    /// options override the service-wide defaults for this job only, so
    /// one tenant can e.g. pin [`crate::LocalShuffle::FisherYates`] for a
    /// byte-stable permutation while others ride the default `Auto`.
    ///
    /// Malformed options (e.g. `target_sizes` that do not match the
    /// machine) are rejected **at admission** as
    /// [`ServiceError::InvalidJob`] with the payload handed back — a bad
    /// submission never reaches (let alone kills) a dispatcher.
    pub fn submit_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
    ) -> Result<JobTicket<T>, RejectedJob<T>> {
        if let Err(message) = options.check_target_sizes(self.shared.procs, data.len() as u64) {
            return Err(RejectedJob {
                error: ServiceError::InvalidJob(message),
                data,
            });
        }
        let (job, ticket) = self.make_job(data, options);
        match self.shared.queue.push_blocking(job) {
            Ok(()) => Ok(ticket),
            Err(job) => Err(RejectedJob {
                error: ServiceError::ShutDown,
                data: job.data,
            }),
        }
    }

    /// Non-blocking submission: explicit backpressure.  A full queue hands
    /// the payload back with [`ServiceError::QueueFull`] so the caller can
    /// retry, shed load, or block on [`ServiceHandle::submit`] instead.
    pub fn try_submit(&self, data: Vec<T>) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.try_submit_with(data, self.shared.default_options.clone())
    }

    /// [`ServiceHandle::try_submit`] with explicit per-job options
    /// (malformed options are rejected as [`ServiceError::InvalidJob`], as
    /// in [`ServiceHandle::submit_with`]).
    pub fn try_submit_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
    ) -> Result<JobTicket<T>, RejectedJob<T>> {
        if let Err(message) = options.check_target_sizes(self.shared.procs, data.len() as u64) {
            return Err(RejectedJob {
                error: ServiceError::InvalidJob(message),
                data,
            });
        }
        let (job, ticket) = self.make_job(data, options);
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(ticket),
            Err((job, full)) => Err(RejectedJob {
                error: if full {
                    ServiceError::QueueFull
                } else {
                    ServiceError::ShutDown
                },
                data: job.data,
            }),
        }
    }

    /// Blocking submit-and-wait: the synchronous client call.
    pub fn permute(&self, data: Vec<T>) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        self.permute_with(data, self.shared.default_options.clone())
    }

    /// [`ServiceHandle::permute`] with explicit per-job options.
    pub fn permute_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
    ) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        match self.submit_with(data, options) {
            Ok(ticket) => ticket.wait(),
            Err(rejected) => Err(rejected.error),
        }
    }
}

/// One dispatcher: owns a resident machine and its warm scratch, pops jobs
/// in FIFO order, contains failures, meters everything.
fn dispatcher_loop<T: Send + 'static>(
    machine_idx: usize,
    mut pool: ResidentCgm<T>,
    shared: Arc<Shared<T>>,
) {
    let mut scratch = PermuteScratch::new();
    while let Some(mut job) = shared.queue.pop() {
        let wait = job.enqueued_at.elapsed();
        let run_started = Instant::now();
        // In-worker panics come back as clean Err values (the pool recovers
        // itself); the catch_unwind is defense in depth against *dispatcher
        // thread* panics — admission-time validation makes the known ones
        // unreachable, but no conceivable engine panic may take a machine
        // out of rotation and strand the queue.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_permute_vec_into_with(&mut pool, &mut job.data, &job.options, &mut scratch)
        }));
        let run = run_started.elapsed();
        let ok = matches!(result, Ok(Ok(_)));
        shared
            .metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(machine_idx, job.tenant, wait, run, ok, pool.recoveries());
        let outcome = match result {
            Ok(Ok(report)) => Ok((std::mem::take(&mut job.data), report)),
            Ok(Err(e)) => Err(ServiceError::JobFailed(e)),
            Err(payload) => Err(ServiceError::InvalidJob(format!(
                "the job was rejected by the engine: {}",
                panic_text(payload.as_ref())
            ))),
        };
        // A dropped ticket just abandons its result; keep serving.
        let _ = job.reply.send(outcome);
    }
    pool.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineFault;
    use crate::{MatrixBackend, Permuter};

    #[test]
    fn service_matches_one_shot_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let permuter = Permuter::new(3).seed(29).backend(backend);
            let reference = permuter.permute((0..300u64).collect()).0;
            let service = permuter.service_sized::<u64>(2, 8);
            let handle = service.handle();
            let tickets: Vec<_> = (0..6)
                .map(|_| handle.submit((0..300u64).collect()).unwrap())
                .collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let (out, _) = t.wait().unwrap();
                assert_eq!(out, reference, "{backend:?} diverged on job {i}");
            }
            service.shutdown();
        }
    }

    #[test]
    fn per_job_options_override_the_service_default() {
        let permuter = Permuter::new(2).seed(11).backend(MatrixBackend::Sequential);
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        let opts = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal);
        let (_, report) = handle.permute_with((0..64u64).collect(), opts).unwrap();
        assert_eq!(report.backend, MatrixBackend::ParallelOptimal);
        let (_, report) = handle.permute((0..64u64).collect()).unwrap();
        assert_eq!(report.backend, MatrixBackend::Sequential);
        service.shutdown();
    }

    #[test]
    fn per_job_local_shuffle_override_matches_the_one_shot_path() {
        use crate::cache_aware::LocalShuffle;
        // Service default is Auto (via the Permuter); a tenant pinning an
        // explicit engine per job must get exactly the permutation the
        // one-shot path produces under that engine.
        let engine = LocalShuffle::Bucketed { bucket_items: 16 };
        let permuter = Permuter::new(2).seed(37);
        let reference = permuter
            .clone()
            .local_shuffle(engine)
            .permute((0..200u64).collect())
            .0;
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        let opts = PermuteOptions::new().local_shuffle(engine);
        let (out, report) = handle.permute_with((0..200u64).collect(), opts).unwrap();
        assert_eq!(out, reference);
        assert_eq!(report.local_shuffle, engine);
        // Jobs without the override keep the service-wide default.
        let (_, report) = handle.permute((0..200u64).collect()).unwrap();
        assert_eq!(report.local_shuffle, LocalShuffle::Auto);
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_queue_full_and_hands_the_payload_back() {
        // A service with one machine and a depth-1 queue: stall the machine
        // with a fat job, fill the queue slot, then observe backpressure.
        let permuter = Permuter::new(2).seed(3);
        let service = permuter.service_sized::<u64>(1, 1);
        let handle = service.handle();
        let stall = handle.submit((0..400_000u64).collect()).unwrap();
        // Saturate the queue: with the machine busy, at most the depth can
        // be admitted; keep try-submitting until backpressure appears.
        let mut admitted = Vec::new();
        let rejected = loop {
            match handle.try_submit((0..8u64).collect()) {
                Ok(t) => admitted.push(t),
                Err(r) => break r,
            }
        };
        assert_eq!(rejected.error, ServiceError::QueueFull);
        assert_eq!(
            rejected.data,
            (0..8).collect::<Vec<u64>>(),
            "payload intact"
        );
        // Everything admitted still completes.
        stall.wait().unwrap();
        for t in admitted {
            t.wait().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn malformed_per_job_options_are_rejected_at_admission() {
        // Satellite of the fault-isolation story: a tenant's bad
        // prescription must be a rejected submission with the payload
        // handed back — never a dead dispatcher (which would strand the
        // queue for every other tenant).
        let permuter = Permuter::new(2).seed(19);
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        for bad in [vec![1u64, 1], vec![4u64, 4, 2]] {
            let opts = PermuteOptions::default().target_sizes(bad);
            let rejected = handle
                .submit_with((0..10u64).collect(), opts.clone())
                .unwrap_err();
            assert!(matches!(rejected.error, ServiceError::InvalidJob(_)));
            assert_eq!(rejected.data, (0..10).collect::<Vec<u64>>());
            let rejected = handle
                .try_submit_with((0..10u64).collect(), opts)
                .unwrap_err();
            assert!(matches!(rejected.error, ServiceError::InvalidJob(_)));
        }
        // The machine never saw any of it and keeps serving.
        let (out, _) = handle.permute((0..10u64).collect()).unwrap();
        assert_eq!(out.len(), 10);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 1);
        assert_eq!(metrics.jobs_failed, 0, "rejections are not failed jobs");
    }

    #[test]
    fn shutdown_drains_accepted_jobs_and_closes_admission() {
        let permuter = Permuter::new(2).seed(13);
        let service = permuter.service_sized::<u64>(1, 16);
        let handle = service.handle();
        let tickets: Vec<_> = (0..8)
            .map(|_| handle.submit((0..500u64).collect()).unwrap())
            .collect();
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 8, "shutdown drains the queue");
        for t in tickets {
            t.wait().unwrap();
        }
        // The surviving handle is refused politely.
        let err = handle.submit((0..4u64).collect()).unwrap_err();
        assert_eq!(err.error, ServiceError::ShutDown);
        assert_eq!(err.data, (0..4).collect::<Vec<u64>>());
        assert_eq!(
            handle.permute((0..4u64).collect()).unwrap_err(),
            ServiceError::ShutDown
        );
    }

    #[test]
    fn a_panicked_job_is_contained_to_its_ticket() {
        let permuter = Permuter::new(3).seed(7);
        let reference = permuter.permute((0..120u64).collect()).0;
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let before = handle.submit((0..120u64).collect()).unwrap();
        let poisoned = handle
            .submit_with(
                (0..120u64).collect(),
                PermuteOptions::default().inject_fault(EngineFault::matrix_phase(1)),
            )
            .unwrap();
        let after = handle.submit((0..120u64).collect()).unwrap();
        assert_eq!(before.wait().unwrap().0, reference);
        match poisoned.wait().unwrap_err() {
            ServiceError::JobFailed(CgmError::ProcessorPanicked { proc, .. }) => {
                assert_eq!(proc, 1)
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(
            after.wait().unwrap().0,
            reference,
            "the machine recovered and the next job is clean"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 2);
        assert_eq!(metrics.jobs_failed, 1);
        assert_eq!(metrics.per_machine[0].recoveries, 1);
    }

    #[test]
    fn tenants_are_metered_separately() {
        let permuter = Permuter::new(2).seed(5);
        let service = permuter.service_sized::<u64>(2, 8);
        let alice = service.handle();
        let bob = service.handle();
        assert_ne!(alice.tenant(), bob.tenant());
        let alice_twin = alice.clone();
        assert_eq!(alice.tenant(), alice_twin.tenant(), "clones share a tenant");
        for _ in 0..3 {
            alice.permute((0..100u64).collect()).unwrap();
        }
        alice_twin.permute((0..100u64).collect()).unwrap();
        bob.permute((0..100u64).collect()).unwrap();
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 5);
        let slot = |tenant: usize| {
            metrics
                .per_tenant
                .iter()
                .find(|t| t.tenant == tenant)
                .expect("tenant has a metrics slot")
                .clone()
        };
        assert_eq!(slot(alice.tenant()).jobs_served, 4);
        assert_eq!(slot(bob.tenant()).jobs_served, 1);
        assert!(metrics.queue_wait >= slot(alice.tenant()).queue_wait);
        let total_machine_jobs: u64 = metrics.per_machine.iter().map(|m| m.jobs).sum();
        assert_eq!(total_machine_jobs, 5);
    }

    #[test]
    fn ticket_ids_are_admission_ordered() {
        let permuter = Permuter::new(2).seed(1);
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let a = handle.submit((0..10u64).collect()).unwrap();
        let b = handle.submit((0..10u64).collect()).unwrap();
        assert!(a.job_id() < b.job_id());
        assert_eq!(a.tenant(), handle.tenant());
        a.wait().unwrap();
        b.wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn zero_machines_or_procs_is_an_error_value() {
        let cfg = ServiceConfig::new(2).machines(0);
        assert!(matches!(
            PermutationService::<u64>::try_new(cfg, PermuteOptions::default()),
            Err(CgmError::NoProcessors)
        ));
        let cfg = ServiceConfig {
            machines: 1,
            procs: 0,
            queue_depth: 1,
            seed: 0,
            transport: TransportKind::Threads,
        };
        assert!(matches!(
            PermutationService::<u64>::try_new(cfg, PermuteOptions::default()),
            Err(CgmError::NoProcessors)
        ));
    }

    #[test]
    fn dropped_tickets_abandon_results_without_harm() {
        let permuter = Permuter::new(2).seed(17);
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        drop(handle.submit((0..200u64).collect()).unwrap());
        let (out, _) = handle.permute((0..200u64).collect()).unwrap();
        assert_eq!(out.len(), 200);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 2, "the abandoned job still ran");
    }
}
