//! # cgp-core — uniform random permutations on a coarse grained machine
//!
//! This crate implements the headline contribution of Gustedt's
//! *"Randomized Permutations in a Coarse Grained Parallel Environment"*
//! (INRIA RR-4639 / SPAA 2003): **Algorithm 1**, a PRO-algorithm that
//! uniformly permutes a block-distributed vector of `n = Σ m_i` items over
//! `p` processors using `O(m)` memory, time, random numbers and bandwidth
//! per processor (Theorem 1).
//!
//! The algorithm has four phases, and — as in the paper, where Algorithm 1
//! is one CGM program — they all run as **one fused job on one executor**
//! (see the [`parallel`] module docs):
//!
//! 1. every processor shuffles its own block locally (Fisher–Yates),
//!    overlapping the matrix phase;
//! 2. a random **communication matrix** `A` is sampled with the exact
//!    distribution induced by a uniform permutation, *in-context* on the
//!    same workers (delegated to the `sample_*_ctx` cores of
//!    [`cgp-matrix`](cgp_matrix), selectable backend);
//! 3. one all-to-all exchange moves `a_ij` items from processor `i` to
//!    processor `j`;
//! 4. every target processor shuffles what it received.
//!
//! Besides the main algorithm the crate ships the **reference sequential
//! algorithm** (the PRO model defines speed-up relative to it) and the three
//! classes of **prior approaches** the paper's introduction discusses, which
//! each miss one of the three criteria (uniformity, work-optimality,
//! balance):
//!
//! * [`baselines::sort_based`] — Goodrich-style random-keys-plus-sort:
//!   uniform and balanced but a log-factor away from work-optimality;
//! * [`baselines::rejection`] — independent destination draws with
//!   start-over until the block sizes match exactly: uniform and balanced
//!   but the acceptance probability (and hence work) degrades rapidly;
//! * [`baselines::one_round`] — a fixed, perfectly balanced communication
//!   matrix with local shuffles, optionally iterated: balanced and
//!   work-optimal per round but *not* uniform for any fixed number of
//!   rounds.
//!
//! ## Zero-copy exchange and the `T: Send` bound
//!
//! The data exchange of Algorithm 1 is move-based end to end: blocks are cut
//! with tail drains, payloads travel through the machine by value, and the
//! receive side concatenates into a buffer pre-sized from the prescribed
//! `m'_j`.  Items are never cloned, so [`permute_blocks`]/[`permute_vec`]
//! (and the [`Permuter`] facade) only require `T: Send`.  Three tiers of
//! allocation behaviour are available:
//!
//! 1. [`permute_vec`] — one-shot, allocates its intermediates per call;
//! 2. [`permute_vec_into`] + [`PermuteScratch`] — recycles the per-processor
//!    block and outgoing-vector allocations across calls (steady-state
//!    loops allocate only channel envelopes);
//! 3. [`Permuter::session`] / [`PermutationSession`] — the steady-state
//!    tier: a **resident worker pool** plus a scratch, so repeated
//!    permutations also skip the per-call thread spawns and channel
//!    construction (see the [`session`] module docs for the one-shot vs.
//!    session guide);
//! 4. [`Permuter::sample_permutation`] + [`apply_permutation`] — the index
//!    fast path for payloads that are not `Send` or too heavy to ship:
//!    permute `0..n` once in parallel, then gather locally by moves (no
//!    `Clone` needed).
//!
//! ## A second engine: dart throwing
//!
//! Algorithm 1 is not the only uniform engine in the crate: the [`darts`]
//! module implements a compare-exchange **dart-throwing** engine (the
//! approach of Lamellar's `randperm` kernels), selectable per call via
//! [`Algorithm`] on [`PermuteOptions`], [`Permuter`], sessions and the
//! service.  See the README's "Choosing a permutation algorithm" table and
//! the [`darts`] module docs for the trade-offs.

pub mod baselines;
pub mod cache_aware;
pub mod config;
pub mod darts;
pub mod parallel;
pub mod permuter;
pub mod sequential;
pub mod service;
pub mod session;
pub mod uniformity;

pub use cache_aware::{
    bucketed_index_permutation, bucketed_shuffle, bucketed_shuffle_with, default_bucket_items,
    BucketScratch, LocalShuffle, AUTO_CROSSOVER_BYTES, AUTO_MAX_ITEM_BYTES, BUCKET_L2_BUDGET_BYTES,
    DEFAULT_BUCKET_ITEMS, MAX_SCATTER_BUCKETS,
};
pub use config::{Algorithm, EngineConfig, EngineFault, FaultPhase, MatrixBackend, PermuteOptions};
pub use darts::{serial_index_permutation, DEFAULT_TARGET_FACTOR};
pub use parallel::{
    permute_blocks, permute_vec, permute_vec_into, permute_vec_into_with,
    try_permute_batch_into_with, try_permute_vec_into_with, BatchOutcome, PermutationReport,
    PermuteScratch,
};
pub use permuter::Permuter;
pub use sequential::{apply_permutation, fisher_yates_shuffle, sequential_random_permutation};
pub use service::{
    CompletionSet, JobTicket, LaneDepth, MachineUtilization, PermutationService, Priority,
    RejectedJob, ServiceConfig, ServiceError, ServiceHandle, ServiceMetrics, TenantMetrics,
    DEFAULT_COALESCE_BUDGET,
};
pub use session::PermutationSession;

// The transport selector is part of this crate's builder surface
// (`Permuter::transport`, `ServiceConfig::transport`), so re-export it —
// callers should not need a direct cgp-cgm dependency to pick a substrate.
pub use cgp_cgm::TransportKind;

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::CgmMachine;

    #[test]
    fn end_to_end_permutation_is_a_permutation() {
        let machine = CgmMachine::with_procs(4);
        let data: Vec<u64> = (0..1000).collect();
        let (permuted, _report) = permute_vec(&machine, data.clone(), &PermuteOptions::default());
        let mut sorted = permuted.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, data);
        assert_ne!(
            permuted, data,
            "1000 items should essentially never stay in place"
        );
    }
}
