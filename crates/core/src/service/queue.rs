//! The scheduler's two queue tiers: fair-share admission and per-machine
//! deques.
//!
//! A job travels through **two** stages between submission and execution:
//!
//! 1. the **admission buffer** ([`Admission`]) — bounded
//!    ([`crate::ServiceConfig::queue_depth`]) and fair: every tenant owns
//!    three lanes ([`Priority::Deadline`] / [`Priority::High`] /
//!    [`Priority::Normal`]) and a deficit-round-robin weight, and a
//!    per-tenant quota caps how much of the buffer one tenant can occupy.
//!    Deadline lanes are kept sorted by expiry and drain before everything
//!    else (globally earliest-first across tenants); a job whose deadline
//!    has already passed at refill time is **shed** instead of handed to a
//!    machine;
//! 2. a **per-machine deque** ([`MachineQueue`]) — the dispatcher's own
//!    FIFO backlog, refilled from admission only when empty, coalesced from
//!    the front ([`MachineQueue::take_batch`]), and stolen from the back by
//!    idle peers ([`MachineQueue::steal_half`]).
//!
//! Jobs are boxed end to end: the handback-by-value rejection paths
//! (`Err(Box<Job>)`) then cost one pointer instead of the full job struct,
//! which is what let the old `#[allow(clippy::result_large_err)]`
//! suppressions be deleted rather than suppressed.

// Boxed-job vectors are deliberate: a job hops queues several times
// (admission lane → refill → deque → coalesce/steal → possibly requeue),
// and each hop moves one pointer instead of the ~100-byte job struct.
#![allow(clippy::vec_box)]

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use super::completion::CompletionHandle;
use super::metrics::LaneDepth;
use super::Priority;
use crate::config::PermuteOptions;

/// One queued unit of work.
pub(crate) struct Job<T> {
    pub(crate) data: Vec<T>,
    pub(crate) options: PermuteOptions,
    pub(crate) tenant: usize,
    pub(crate) priority: Priority,
    pub(crate) enqueued_at: Instant,
    /// Absolute expiry for [`Priority::Deadline`] jobs (admission time plus
    /// the budget); `None` for the other lanes.
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: CompletionHandle<T>,
}

// Manual impl so `T` need not be `Debug` (the payload is elided anyway).
impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("items", &self.data.len())
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

/// Payload bytes a job occupies (the coalescing currency).
fn job_bytes<T>(job: &Job<T>) -> usize {
    job.data.len() * std::mem::size_of::<T>()
}

/// Whether two jobs may share a coalesced batch: same run-shaping options.
/// The injected-fault field is deliberately ignored — a fault is a
/// test-only property of one job, and the batched engine entry point keeps
/// per-job options (and per-job failure) intact either way.  Dart-engine
/// jobs never coalesce: the dart engine has no staged-plan representation
/// (the batch entry would just degrade them to sequential solo runs), so
/// dispatching them solo keeps the scheduling honest.  Deadline jobs never
/// coalesce either (checked in [`MachineQueue::take_batch`], not here):
/// batching couples a latency-bounded job's start to its batchmates'
/// payloads, exactly the coupling its deadline forbids.
fn coalescible(a: &PermuteOptions, b: &PermuteOptions) -> bool {
    a.algorithm == b.algorithm
        && !a.algorithm.is_darts()
        && a.backend == b.backend
        && a.local_shuffle == b.local_shuffle
        && a.keep_matrix == b.keep_matrix
        && a.target_sizes == b.target_sizes
}

// ---------------------------------------------------------------------------
// Fair-share admission
// ---------------------------------------------------------------------------

/// Each deficit-round-robin visit banks `weight × QUANTUM` items' worth of
/// credit; a job costs `max(1, items)`.  4096 items means a tenant with
/// weight 1 drains a few small jobs (or most of one mid-sized job) per
/// visit, so interleaving stays fine-grained without making the scan hot.
const DRR_QUANTUM: u64 = 4096;

/// One tenant's admission lanes plus its scheduling state.
struct TenantLanes<T> {
    /// Kept sorted by expiry (earliest first) — admission inserts by
    /// binary search, so refill only ever inspects the front.
    deadline: VecDeque<Box<Job<T>>>,
    high: VecDeque<Box<Job<T>>>,
    normal: VecDeque<Box<Job<T>>>,
    weight: u64,
    deficit: u64,
}

impl<T> TenantLanes<T> {
    fn new(weight: u64) -> Self {
        TenantLanes {
            deadline: VecDeque::new(),
            high: VecDeque::new(),
            normal: VecDeque::new(),
            weight: weight.max(1),
            deficit: 0,
        }
    }

    fn queued(&self) -> usize {
        self.deadline.len() + self.high.len() + self.normal.len()
    }

    /// Inserts a deadline job keeping the lane expiry-sorted.  Ties keep
    /// admission order (the new job goes after equal expiries).
    fn insert_by_expiry(&mut self, job: Box<Job<T>>) {
        let expiry = job.deadline.expect("deadline jobs carry an expiry");
        let at = self
            .deadline
            .partition_point(|j| j.deadline.expect("deadline lane invariant") <= expiry);
        self.deadline.insert(at, job);
    }
}

pub(crate) struct AdmissionState<T> {
    tenants: Vec<TenantLanes<T>>,
    /// Jobs across all lanes (kept in sync so `len` is O(1)).
    total: usize,
    /// `false` once the service is shutting down: no further admissions;
    /// dispatchers drain what is queued and then exit.
    open: bool,
    /// Round-robin position over tenants for the High lane.
    high_cursor: usize,
    /// Deficit-round-robin position over tenants for the Normal lane.
    drr_cursor: usize,
}

impl<T> AdmissionState<T> {
    pub(crate) fn is_open(&self) -> bool {
        self.open
    }

    /// Pops up to `max` jobs for one machine's deque, in scheduling order:
    /// the Deadline lanes drain first (globally earliest expiry across
    /// tenants; jobs already past their expiry go to `shed` instead of
    /// `out`), then the High lanes (strict priority, round-robin across
    /// tenants), then the Normal lanes under weighted deficit round-robin
    /// — each visit banks `weight × QUANTUM` item-credits and serves jobs
    /// (cost `max(1, items)`) while the credit lasts, so a tenant of
    /// weight 2 moves twice the payload of a tenant of weight 1 per pass
    /// and a flooding tenant cannot crowd out the rest.
    ///
    /// The caller resolves `shed` tickets (with
    /// [`super::ServiceError::DeadlineExceeded`]) **after dropping the
    /// admission lock** — completing a ticket may run user callbacks.
    fn refill(
        &mut self,
        max: usize,
        now: Instant,
        shed: &mut Vec<Box<Job<T>>>,
    ) -> Vec<Box<Job<T>>> {
        let mut out = Vec::new();
        let nt = self.tenants.len();
        if nt == 0 {
            return out;
        }

        // Deadline lanes: the most urgent job service-wide goes first.
        // Each lane is expiry-sorted, so the global earliest is the
        // minimum over lane fronts.  Expired fronts are shed as they are
        // encountered — shedding frees buffer slots but hands no work out,
        // so it does not count against `max`.
        while out.len() < max {
            let next = self
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(t, lanes)| {
                    lanes
                        .deadline
                        .front()
                        .map(|job| (job.deadline.expect("deadline lane invariant"), t))
                })
                .min();
            let Some((expiry, t)) = next else { break };
            let job = self.tenants[t]
                .deadline
                .pop_front()
                .expect("front() was Some");
            self.total -= 1;
            if expiry < now {
                shed.push(job);
            } else {
                out.push(job);
            }
        }

        // High lanes: strict priority, one job per tenant per turn.
        while out.len() < max {
            let mut found = false;
            for off in 0..nt {
                let t = (self.high_cursor + off) % nt;
                if let Some(job) = self.tenants[t].high.pop_front() {
                    self.total -= 1;
                    out.push(job);
                    self.high_cursor = (t + 1) % nt;
                    found = true;
                    break;
                }
            }
            if !found {
                break;
            }
        }

        // Normal lanes: weighted deficit round-robin.
        while out.len() < max {
            if self.tenants.iter().all(|l| l.normal.is_empty()) {
                break;
            }
            let t = self.drr_cursor % nt;
            self.drr_cursor = (t + 1) % nt;
            let lane = &mut self.tenants[t];
            if lane.normal.is_empty() {
                // An empty lane banks nothing: deficits must not accrue
                // while a tenant has no work, or it could later burst past
                // its fair share.
                lane.deficit = 0;
                continue;
            }
            lane.deficit = lane.deficit.saturating_add(DRR_QUANTUM * lane.weight);
            while out.len() < max {
                let Some(front) = lane.normal.front() else {
                    lane.deficit = 0;
                    break;
                };
                let cost = (front.data.len() as u64).max(1);
                if cost > lane.deficit {
                    break;
                }
                lane.deficit -= cost;
                let job = lane.normal.pop_front().expect("front() was Some");
                self.total -= 1;
                out.push(job);
            }
        }
        out
    }

    fn lane_depth(&self) -> LaneDepth {
        LaneDepth {
            deadline: self.tenants.iter().map(|l| l.deadline.len()).sum(),
            high: self.tenants.iter().map(|l| l.high.len()).sum(),
            normal: self.tenants.iter().map(|l| l.normal.len()).sum(),
        }
    }
}

/// The bounded, fair admission buffer shared by every handle and
/// dispatcher.
pub(crate) struct Admission<T> {
    state: Mutex<AdmissionState<T>>,
    depth: usize,
    quota: usize,
    /// Dispatchers park here when there is nothing to run anywhere.
    work: Condvar,
    /// Blocked submitters park here until admission space frees up.
    space: Condvar,
}

/// Lock the admission state, surviving a poisoned mutex (a client thread
/// that panicked mid-push leaves consistent state: every critical section
/// below upholds the invariants before touching anything that can panic).
fn lock_state<T>(admission: &Admission<T>) -> MutexGuard<'_, AdmissionState<T>> {
    admission.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Admission<T> {
    pub(crate) fn new(depth: usize, quota: usize) -> Self {
        Admission {
            state: Mutex::new(AdmissionState {
                tenants: Vec::new(),
                total: 0,
                open: true,
                high_cursor: 0,
                drr_cursor: 0,
            }),
            depth: depth.max(1),
            quota: quota.max(1),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Registers a new tenant with the given DRR weight; returns its id.
    pub(crate) fn register_tenant(&self, weight: u64) -> usize {
        let mut st = lock_state(self);
        st.tenants.push(TenantLanes::new(weight));
        st.tenants.len() - 1
    }

    /// Admits a job into its tenant's lane.  `Err((job, true))` means
    /// backpressure (buffer full, or the tenant is at its quota);
    /// `Err((job, false))` means the service shut down.  With `block` the
    /// backpressure case parks instead of failing.
    pub(crate) fn push(&self, job: Box<Job<T>>, block: bool) -> Result<(), (Box<Job<T>>, bool)> {
        let mut st = lock_state(self);
        loop {
            if !st.open {
                return Err((job, false));
            }
            let queued = st.tenants[job.tenant].queued();
            if st.total < self.depth && queued < self.quota {
                let lanes = &mut st.tenants[job.tenant];
                match job.priority {
                    Priority::Deadline(_) => lanes.insert_by_expiry(job),
                    Priority::High => lanes.high.push_back(job),
                    Priority::Normal => lanes.normal.push_back(job),
                }
                st.total += 1;
                self.work.notify_one();
                return Ok(());
            }
            if !block {
                return Err((job, true));
            }
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Locks the state for a dispatcher's refill/steal/park decision.
    pub(crate) fn lock(&self) -> MutexGuard<'_, AdmissionState<T>> {
        lock_state(self)
    }

    /// Refill under an already-held lock; wakes blocked submitters when
    /// slots freed up.  Expired deadline jobs land in `shed` — the caller
    /// resolves their tickets after releasing the lock.
    pub(crate) fn refill_locked(
        &self,
        st: &mut AdmissionState<T>,
        max: usize,
        shed: &mut Vec<Box<Job<T>>>,
    ) -> Vec<Box<Job<T>>> {
        let jobs = st.refill(max, Instant::now(), shed);
        if !jobs.is_empty() || !shed.is_empty() {
            self.space.notify_all();
        }
        jobs
    }

    /// Parks a dispatcher until new work (or shutdown) is signalled.
    pub(crate) fn wait_work<'a>(
        &self,
        guard: MutexGuard<'a, AdmissionState<T>>,
    ) -> MutexGuard<'a, AdmissionState<T>> {
        self.work.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one parked dispatcher (e.g. after a deque gained stealable
    /// surplus).
    pub(crate) fn notify_work(&self) {
        self.work.notify_one();
    }

    /// Wakes every parked dispatcher (shutdown cascade).
    pub(crate) fn notify_work_all(&self) {
        self.work.notify_all();
    }

    /// Stops admission and wakes every parked client and dispatcher.
    /// Already-queued jobs stay queued — dispatchers drain them.
    pub(crate) fn close(&self) {
        let mut st = lock_state(self);
        st.open = false;
        drop(st);
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Jobs currently admitted but not yet moved to a machine deque.
    pub(crate) fn len(&self) -> usize {
        lock_state(self).total
    }

    /// Lane depths for the metrics snapshot.
    pub(crate) fn lane_depth(&self) -> LaneDepth {
        lock_state(self).lane_depth()
    }
}

// ---------------------------------------------------------------------------
// Per-machine deques
// ---------------------------------------------------------------------------

/// Upper bound on jobs per coalesced batch, independent of the byte
/// budget: bounds the damage radius of a mid-batch failure (everything
/// behind the faulting job is requeued) and the latency of the jobs
/// waiting behind the batch.
pub(crate) const COALESCE_MAX_JOBS: usize = 32;

/// One machine's FIFO backlog.  Only its own dispatcher pops the front
/// (and requeues skipped jobs there); idle peers steal from the back.
pub(crate) struct MachineQueue<T> {
    jobs: Mutex<VecDeque<Box<Job<T>>>>,
}

impl<T> MachineQueue<T> {
    pub(crate) fn new() -> Self {
        MachineQueue {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Box<Job<T>>>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    /// Appends refilled or stolen jobs, preserving their order.
    pub(crate) fn push_back_many(&self, jobs: Vec<Box<Job<T>>>) {
        let mut q = self.lock();
        for job in jobs {
            q.push_back(job);
        }
    }

    /// Requeues skipped jobs at the **front**, preserving their order —
    /// they were next in line before their batch aborted, and they keep
    /// that place.
    pub(crate) fn push_front_many(&self, jobs: Vec<Box<Job<T>>>) {
        let mut q = self.lock();
        for job in jobs.into_iter().rev() {
            q.push_front(job);
        }
    }

    /// Pops the front job plus every *consecutive* compatible follower
    /// whose payload still fits the byte budget (and the
    /// [`COALESCE_MAX_JOBS`] cap).  A zero budget disables coalescing
    /// entirely: every batch is a single job.  Deadline jobs always run
    /// solo — as the front they take no followers, as a follower they end
    /// the batch — so a latency-bounded job never waits on batchmates.
    pub(crate) fn take_batch(&self, budget_bytes: usize) -> Vec<Box<Job<T>>> {
        let mut q = self.lock();
        let Some(first) = q.pop_front() else {
            return Vec::new();
        };
        let mut bytes = job_bytes(&first);
        let solo = first.deadline.is_some();
        let mut batch = vec![first];
        if budget_bytes == 0 || solo {
            return batch;
        }
        while batch.len() < COALESCE_MAX_JOBS {
            let Some(next) = q.front() else { break };
            if next.deadline.is_some()
                || bytes + job_bytes(next) > budget_bytes
                || !coalescible(&batch[0].options, &next.options)
            {
                break;
            }
            bytes += job_bytes(next);
            batch.push(q.pop_front().expect("front() was Some"));
        }
        batch
    }

    /// Steals the back half (`⌈len/2⌉` jobs) for an idle peer, preserving
    /// their relative order.  The victim keeps the front half — the oldest
    /// jobs, which it serves next anyway.
    pub(crate) fn steal_half(&self) -> Vec<Box<Job<T>>> {
        let mut q = self.lock();
        let n = q.len();
        if n == 0 {
            return Vec::new();
        }
        q.split_off(n / 2).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn job(tenant: usize, priority: Priority, items: usize) -> Box<Job<u64>> {
        // The ticket side is dropped: these unit tests only exercise
        // queueing order, never completion.
        let (reply, _ticket) = super::super::completion::completion_pair(0, tenant);
        let enqueued_at = Instant::now();
        let deadline = match priority {
            Priority::Deadline(budget) => Some(enqueued_at + budget),
            _ => None,
        };
        Box::new(Job {
            data: vec![0u64; items],
            options: PermuteOptions::default(),
            tenant,
            priority,
            enqueued_at,
            deadline,
            reply,
        })
    }

    fn tenants_of(jobs: &[Box<Job<u64>>]) -> Vec<usize> {
        jobs.iter().map(|j| j.tenant).collect()
    }

    type Jobs = Vec<Box<Job<u64>>>;

    fn refill_all(admission: &Admission<u64>, max: usize) -> (Jobs, Jobs) {
        let mut shed = Vec::new();
        let mut st = admission.lock();
        let jobs = admission.refill_locked(&mut st, max, &mut shed);
        drop(st);
        (jobs, shed)
    }

    #[test]
    fn high_lane_drains_before_normal_round_robin_across_tenants() {
        let admission: Admission<u64> = Admission::new(16, usize::MAX);
        let a = admission.register_tenant(1);
        let b = admission.register_tenant(1);
        admission.push(job(a, Priority::Normal, 1), false).unwrap();
        admission.push(job(a, Priority::High, 1), false).unwrap();
        admission.push(job(b, Priority::High, 1), false).unwrap();
        admission.push(job(b, Priority::Normal, 1), false).unwrap();
        admission.push(job(a, Priority::High, 1), false).unwrap();
        let (jobs, _) = refill_all(&admission, 16);
        // The three High jobs come first, interleaved across tenants; the
        // Normal jobs follow.
        let prios: Vec<Priority> = jobs.iter().map(|j| j.priority).collect();
        assert_eq!(
            prios,
            vec![
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Normal
            ]
        );
        assert_eq!(tenants_of(&jobs[..3]), vec![a, b, a]);
    }

    #[test]
    fn weighted_drr_shares_the_drain_by_weight() {
        let admission: Admission<u64> = Admission::new(64, usize::MAX);
        let light = admission.register_tenant(1);
        let heavy = admission.register_tenant(2);
        // Equal-cost jobs, plenty of both: one DRR pass banks weight×QUANTUM
        // credit per tenant, so the weight-2 tenant drains twice as many.
        for _ in 0..12 {
            admission
                .push(job(light, Priority::Normal, 2048), false)
                .unwrap();
            admission
                .push(job(heavy, Priority::Normal, 2048), false)
                .unwrap();
        }
        let (jobs, _) = refill_all(&admission, 12);
        let heavy_count = jobs.iter().filter(|j| j.tenant == heavy).count();
        let light_count = jobs.iter().filter(|j| j.tenant == light).count();
        assert_eq!(jobs.len(), 12);
        assert_eq!(
            heavy_count,
            2 * light_count,
            "weight 2 drains twice the jobs of weight 1 (got {heavy_count} vs {light_count})"
        );
    }

    #[test]
    fn per_tenant_quota_rejects_the_flooder_but_not_the_peer() {
        let admission: Admission<u64> = Admission::new(16, 3);
        let flooder = admission.register_tenant(1);
        let peer = admission.register_tenant(1);
        for _ in 0..3 {
            admission
                .push(job(flooder, Priority::Normal, 1), false)
                .unwrap();
        }
        let (_, backpressure) = admission
            .push(job(flooder, Priority::Normal, 1), false)
            .unwrap_err();
        assert!(
            backpressure,
            "quota exhaustion is backpressure, not shutdown"
        );
        // The peer still has the whole rest of the buffer.
        admission
            .push(job(peer, Priority::Normal, 1), false)
            .unwrap();
        assert_eq!(admission.len(), 4);
    }

    #[test]
    fn closed_admission_reports_shutdown_not_backpressure() {
        let admission: Admission<u64> = Admission::new(2, usize::MAX);
        let t = admission.register_tenant(1);
        admission.close();
        let (_, backpressure) = admission
            .push(job(t, Priority::Normal, 1), true)
            .unwrap_err();
        assert!(!backpressure);
    }

    #[test]
    fn take_batch_respects_budget_compatibility_and_cap() {
        let q: MachineQueue<u64> = MachineQueue::new();
        // 8-byte items; budget fits exactly three 4-item jobs (96 bytes).
        let mut jobs: Vec<Box<Job<u64>>> = (0..4).map(|_| job(0, Priority::Normal, 4)).collect();
        // Job 3 is incompatible (different backend).
        jobs[3].options = PermuteOptions::with_backend(crate::MatrixBackend::ParallelOptimal);
        q.push_back_many(jobs);
        let batch = q.take_batch(96);
        assert_eq!(batch.len(), 3, "budget cuts the batch at 96 bytes");
        let batch = q.take_batch(96);
        assert_eq!(batch.len(), 1, "the incompatible job runs alone");
        assert!(q.take_batch(96).is_empty());

        // A zero budget disables coalescing outright.
        q.push_back_many((0..3).map(|_| job(0, Priority::Normal, 0)).collect());
        assert_eq!(q.take_batch(0).len(), 1);

        // The job cap holds even under an unlimited budget.
        q.take_batch(0);
        q.take_batch(0);
        q.push_back_many(
            (0..COALESCE_MAX_JOBS + 5)
                .map(|_| job(0, Priority::Normal, 1))
                .collect(),
        );
        assert_eq!(q.take_batch(usize::MAX).len(), COALESCE_MAX_JOBS);
    }

    #[test]
    fn deadline_lane_drains_first_earliest_expiry_across_tenants() {
        use std::time::Duration;
        let admission: Admission<u64> = Admission::new(16, usize::MAX);
        let a = admission.register_tenant(1);
        let b = admission.register_tenant(1);
        admission.push(job(a, Priority::Normal, 1), false).unwrap();
        admission.push(job(a, Priority::High, 1), false).unwrap();
        // b's deadline is tighter than a's even though a submitted first.
        admission
            .push(
                job(a, Priority::Deadline(Duration::from_secs(60)), 1),
                false,
            )
            .unwrap();
        admission
            .push(
                job(b, Priority::Deadline(Duration::from_secs(30)), 1),
                false,
            )
            .unwrap();
        let (jobs, shed) = refill_all(&admission, 16);
        assert!(shed.is_empty(), "nothing expired");
        assert_eq!(tenants_of(&jobs), vec![b, a, a, a]);
        assert!(matches!(jobs[0].priority, Priority::Deadline(_)));
        assert!(matches!(jobs[1].priority, Priority::Deadline(_)));
        assert_eq!(jobs[2].priority, Priority::High);
        assert_eq!(jobs[3].priority, Priority::Normal);
    }

    #[test]
    fn expired_deadline_jobs_are_shed_not_dispatched() {
        use std::time::Duration;
        let admission: Admission<u64> = Admission::new(16, usize::MAX);
        let t = admission.register_tenant(1);
        // A zero budget is expired by the time any refill can run.
        admission
            .push(job(t, Priority::Deadline(Duration::ZERO), 1), false)
            .unwrap();
        admission
            .push(
                job(t, Priority::Deadline(Duration::from_secs(60)), 1),
                false,
            )
            .unwrap();
        admission.push(job(t, Priority::Normal, 1), false).unwrap();
        // The expired job frees its slot without consuming refill capacity:
        // max=2 still moves both live jobs.
        let (jobs, shed) = refill_all(&admission, 2);
        assert_eq!(shed.len(), 1, "the zero-budget job is shed");
        assert_eq!(jobs.len(), 2);
        assert!(matches!(jobs[0].priority, Priority::Deadline(_)));
        assert_eq!(jobs[1].priority, Priority::Normal);
        assert_eq!(admission.len(), 0);
    }

    #[test]
    fn deadline_jobs_never_coalesce() {
        use std::time::Duration;
        let q: MachineQueue<u64> = MachineQueue::new();
        q.push_back_many(vec![
            job(0, Priority::Deadline(Duration::from_secs(60)), 1),
            job(0, Priority::Normal, 1),
            job(0, Priority::Normal, 1),
            job(0, Priority::Deadline(Duration::from_secs(60)), 1),
            job(0, Priority::Normal, 1),
        ]);
        // A deadline front takes no followers.
        assert_eq!(q.take_batch(usize::MAX).len(), 1);
        // A deadline follower ends the batch.
        assert_eq!(q.take_batch(usize::MAX).len(), 2);
        assert_eq!(q.take_batch(usize::MAX).len(), 1);
        assert_eq!(q.take_batch(usize::MAX).len(), 1);
    }

    #[test]
    fn steal_takes_the_back_half_in_order() {
        let q: MachineQueue<u64> = MachineQueue::new();
        q.push_back_many((0..5).map(|t| job(t, Priority::Normal, 1)).collect());
        let stolen = q.steal_half();
        assert_eq!(tenants_of(&stolen), vec![2, 3, 4]);
        assert_eq!(q.len(), 2);
        let rest = q.take_batch(usize::MAX);
        assert_eq!(tenants_of(&rest), vec![0, 1]);
        assert!(q.steal_half().is_empty());
    }
}
