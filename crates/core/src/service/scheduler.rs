//! The dispatcher core of the [`PermutationService`](crate::PermutationService):
//! per-machine deques, work stealing, and small-job coalescing.
//!
//! Each fleet machine is driven by one dispatcher thread running
//! `dispatcher_loop`.  A dispatcher's cycle:
//!
//! 1. **Drain the own deque.**  `MachineQueue::take_batch` pops the front
//!    job plus every consecutive compatible follower under the byte budget
//!    ([`crate::ServiceConfig::coalesce_budget`]); a multi-job batch runs as
//!    one fenced submission to the resident pool
//!    ([`crate::parallel::try_permute_batch_into_with`]), amortizing the
//!    per-job wake/rendezvous cost that dominates tiny payloads.
//! 2. **Refill** from the fair-share admission buffer when the deque is
//!    empty (High lanes first, then weighted deficit-round-robin — see the
//!    queue module).
//! 3. **Steal** the back half of the most-loaded peer's deque when
//!    admission is empty too — an idle machine takes work instead of
//!    parking while a neighbour has backlog.
//! 4. **Park** (or exit, on shutdown) only when there is no work anywhere.
//!
//! Stealing and coalescing are **invisible in the results**: every random
//! stream of a job is derived from the fleet-wide seed per call, so a job
//! produces the byte-identical permutation on its home machine, on a
//! thief, inside a batch, or as a one-shot run.  What moves is only *when
//! and where* the job runs — which the metrics meter
//! ([`crate::ServiceMetrics::steals`],
//! [`crate::ServiceMetrics::coalesced_jobs`]).
//!
//! A mid-batch panic is contained exactly like a solo panic: the faulting
//! job's ticket fails, jobs behind it in the batch are requeued at the
//! front of the deque (their items were never touched) and rerun, and the
//! pool recovers once.
//!
//! ```
//! use cgp_core::{PermuteOptions, Permuter, Priority};
//!
//! let permuter = Permuter::new(2).seed(41);
//! let service = permuter.service_sized::<u64>(2, 16);
//! let handle = service.handle();
//! // A High-priority job jumps every Normal backlog at refill time.
//! let urgent = handle
//!     .submit_with((0..64u64).collect(), PermuteOptions::default(), Priority::High)
//!     .unwrap();
//! let routine: Vec<_> = (0..4)
//!     .map(|_| handle.submit((0..64u64).collect()).unwrap())
//!     .collect();
//! let reference = permuter.permute((0..64u64).collect()).0;
//! assert_eq!(urgent.wait().unwrap().0, reference);
//! for ticket in routine {
//!     // Scheduled, stolen, or coalesced: the permutation is the same.
//!     assert_eq!(ticket.wait().unwrap().0, reference);
//! }
//! let metrics = service.shutdown();
//! assert_eq!(metrics.jobs_served, 5);
//! assert_eq!(metrics.jobs_served, metrics.jobs_total());
//! ```

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use super::metrics::MetricsInner;
use super::queue::{Admission, Job, MachineQueue};
use super::{panic_text, ServiceError};
use crate::config::PermuteOptions;
use crate::parallel::{
    try_permute_batch_into_with, try_permute_vec_into_with, BatchOutcome, PermuteScratch,
};
use cgp_cgm::ResidentCgm;

/// Most jobs one refill moves from admission to a machine's deque.  Far
/// above any sensible batch size, so a refill rarely truncates; bounded so
/// one machine cannot monopolize an enormous admission buffer in a single
/// scan (peers steal the surplus anyway).
const REFILL_MAX: usize = 64;

/// Everything the handles and dispatchers share.
pub(crate) struct SchedShared<T> {
    pub(crate) admission: Admission<T>,
    pub(crate) machines: Vec<MachineQueue<T>>,
    pub(crate) metrics: Mutex<MetricsInner>,
    /// The service-wide options (backend, …) jobs submitted without
    /// explicit options run with.
    pub(crate) default_options: PermuteOptions,
    /// Virtual processors per machine — what admission-time validation of
    /// per-job options checks against.
    pub(crate) procs: usize,
    /// Byte budget for one coalesced batch (0 disables coalescing).
    pub(crate) coalesce_budget: usize,
    pub(crate) next_job: AtomicU64,
    pub(crate) started_at: Instant,
}

pub(crate) fn lock_metrics<T>(shared: &SchedShared<T>) -> MutexGuard<'_, MetricsInner> {
    shared.metrics.lock().unwrap_or_else(|e| e.into_inner())
}

/// One dispatcher: owns a resident machine and its warm scratches, serves
/// its deque in (coalesced) FIFO order, refills from admission, steals
/// when idle, contains failures, meters everything.
pub(crate) fn dispatcher_loop<T: Send + 'static>(
    machine_idx: usize,
    mut pool: ResidentCgm<T>,
    shared: Arc<SchedShared<T>>,
) {
    let mut scratches: Vec<PermuteScratch<T>> = vec![PermuteScratch::new()];
    'serve: loop {
        // Drain the own deque first: the cheapest work source, and the one
        // whose scratches are warm.
        loop {
            let batch = shared.machines[machine_idx].take_batch(shared.coalesce_budget);
            if batch.is_empty() {
                break;
            }
            run_batch(machine_idx, &mut pool, &shared, &mut scratches, batch);
            // Peers parked before this work existed re-check for stealable
            // surplus (and for the shutdown exit condition).
            shared.admission.notify_work();
        }

        let mut st = shared.admission.lock();
        loop {
            // Refill from admission (fair-share order).  Deadline jobs
            // whose budget expired while queued come back in `shed`.
            let mut shed = Vec::new();
            let refill = shared
                .admission
                .refill_locked(&mut st, REFILL_MAX, &mut shed);
            if !refill.is_empty() || !shed.is_empty() {
                drop(st);
                // Resolve shed tickets outside the admission lock:
                // completing a ticket may run a user `on_complete`
                // callback, which must never execute under scheduler
                // locks.
                if !shed.is_empty() {
                    let mut m = lock_metrics(&shared);
                    for job in &shed {
                        m.record_shed(job.tenant);
                    }
                    drop(m);
                    for job in shed {
                        job.reply.complete(Err(ServiceError::DeadlineExceeded));
                    }
                }
                if refill.is_empty() {
                    st = shared.admission.lock();
                    continue;
                }
                shared.machines[machine_idx].push_back_many(refill);
                // More than one batch may have landed: let an idle peer
                // steal the surplus instead of waiting for admission.
                shared.admission.notify_work();
                continue 'serve;
            }

            // Admission is empty: steal the back half of the most-loaded
            // peer's deque instead of parking.
            let victim = (0..shared.machines.len())
                .filter(|&i| i != machine_idx)
                .map(|i| (shared.machines[i].len(), i))
                .max()
                .filter(|&(len, _)| len > 0)
                .map(|(_, i)| i);
            if let Some(victim) = victim {
                let stolen = shared.machines[victim].steal_half();
                if !stolen.is_empty() {
                    lock_metrics(&shared).record_steal(machine_idx, stolen.len() as u64);
                    drop(st);
                    shared.machines[machine_idx].push_back_many(stolen);
                    continue 'serve;
                }
            }

            // Nothing anywhere: exit once the service closed and every
            // deque is drained (in-flight batches are owned by their
            // dispatchers, which drain their own requeues), else park.
            if !st.is_open() && shared.machines.iter().all(|m| m.len() == 0) {
                drop(st);
                // Cascade: peers parked here must observe the same
                // condition and exit too.
                shared.admission.notify_work_all();
                break 'serve;
            }
            st = shared.admission.wait_work(st);
        }
    }
    pool.shutdown();
}

/// Runs one batch (possibly a single job) on this machine's pool and
/// resolves the tickets.  Skipped jobs — staged behind a mid-batch failure
/// — go back to the **front** of the deque with their payloads and
/// admission timestamps intact.
// Jobs stay boxed across every queue hop — see the `queue` module docs.
#[allow(clippy::vec_box)]
fn run_batch<T: Send + 'static>(
    machine_idx: usize,
    pool: &mut ResidentCgm<T>,
    shared: &SchedShared<T>,
    scratches: &mut Vec<PermuteScratch<T>>,
    batch: Vec<Box<Job<T>>>,
) {
    let batch_started = Instant::now();

    if batch.len() == 1 {
        let mut job = batch.into_iter().next().expect("batch of one");
        // Run-time shed: the deadline may have expired between refill (which
        // checked it) and this machine reaching the job in its deque.
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                lock_metrics(shared).record_shed(job.tenant);
                job.reply.complete(Err(ServiceError::DeadlineExceeded));
                return;
            }
        }
        let wait = job.enqueued_at.elapsed();
        // In-worker panics come back as clean Err values (the pool recovers
        // itself); the catch_unwind is defense in depth against *dispatcher
        // thread* panics — admission-time validation makes the known ones
        // unreachable, but no conceivable engine panic may take a machine
        // out of rotation and strand its deque.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_permute_vec_into_with(pool, &mut job.data, &job.options, &mut scratches[0])
        }));
        let run = batch_started.elapsed();
        let ok = matches!(result, Ok(Ok(_)));
        {
            let mut m = lock_metrics(shared);
            m.record_job(job.tenant, wait, run, ok);
            m.record_machine(machine_idx, run, 1, pool.recoveries());
        }
        let outcome = match result {
            Ok(Ok(report)) => Ok((std::mem::take(&mut job.data), report)),
            Ok(Err(e)) => Err(ServiceError::JobFailed(e)),
            Err(payload) => Err(ServiceError::InvalidJob(format!(
                "the job was rejected by the engine: {}",
                panic_text(payload.as_ref())
            ))),
        };
        // A dropped ticket just abandons its result; keep serving.
        job.reply.complete(outcome);
        return;
    }

    // Coalesced path: one fenced submission for the whole batch.
    let count = batch.len() as u32;
    let mut metas = Vec::with_capacity(batch.len());
    let mut inputs = Vec::with_capacity(batch.len());
    for job in batch {
        let job = *job;
        // take_batch never coalesces deadline jobs, so every job here has
        // `deadline: None`; threading it through keeps requeue faithful
        // regardless.
        metas.push((
            job.tenant,
            job.priority,
            job.enqueued_at,
            job.deadline,
            job.options.clone(),
            job.reply,
        ));
        inputs.push((job.data, job.options));
    }
    let waits: Vec<Duration> = metas.iter().map(|m| m.2.elapsed()).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        try_permute_batch_into_with(pool, inputs, scratches)
    }));
    let run = batch_started.elapsed();

    // Ticket resolutions are staged and performed only after the metrics
    // lock drops: completing a ticket may run a user `on_complete`
    // callback, which must never execute under scheduler locks.
    let mut resolutions = Vec::with_capacity(metas.len());
    match result {
        Ok(Ok(outcomes)) => {
            debug_assert_eq!(outcomes.len(), metas.len());
            let mut requeue = Vec::new();
            let mut completed = 0u64;
            let mut m = lock_metrics(shared);
            for ((outcome, meta), wait) in outcomes.into_iter().zip(metas).zip(waits) {
                let (tenant, priority, enqueued_at, deadline, options, reply) = meta;
                match outcome {
                    BatchOutcome::Done { data, report } => {
                        completed += 1;
                        m.record_job(tenant, wait, report.total_elapsed(), true);
                        resolutions.push((reply, Ok((data, *report))));
                    }
                    BatchOutcome::Failed(e) => {
                        completed += 1;
                        m.record_job(tenant, wait, run / count, false);
                        resolutions.push((reply, Err(ServiceError::JobFailed(e))));
                    }
                    BatchOutcome::Skipped { data } => {
                        // Never ran: back to the head of the line, payload
                        // and original admission timestamp intact.
                        requeue.push(Box::new(Job {
                            data,
                            options,
                            tenant,
                            priority,
                            enqueued_at,
                            deadline,
                            reply,
                        }));
                    }
                }
            }
            m.record_machine(machine_idx, run, completed, pool.recoveries());
            m.record_coalesce(machine_idx, completed);
            drop(m);
            if !requeue.is_empty() {
                shared.machines[machine_idx].push_front_many(requeue);
            }
        }
        Ok(Err(e)) => {
            // Executor-level failure: the batch as a whole could not run;
            // every ticket learns the same error.
            let mut m = lock_metrics(shared);
            for (meta, wait) in metas.into_iter().zip(waits) {
                let (tenant, _, _, _, _, reply) = meta;
                m.record_job(tenant, wait, run / count, false);
                resolutions.push((reply, Err(ServiceError::JobFailed(e.clone()))));
            }
            m.record_machine(machine_idx, run, count as u64, pool.recoveries());
        }
        Err(payload) => {
            let text = panic_text(payload.as_ref());
            let mut m = lock_metrics(shared);
            for (meta, wait) in metas.into_iter().zip(waits) {
                let (tenant, _, _, _, _, reply) = meta;
                m.record_job(tenant, wait, run / count, false);
                resolutions.push((
                    reply,
                    Err(ServiceError::InvalidJob(format!(
                        "the job was rejected by the engine: {text}"
                    ))),
                ));
            }
            m.record_machine(machine_idx, run, count as u64, pool.recoveries());
        }
    }
    for (reply, outcome) in resolutions {
        reply.complete(outcome);
    }
}
