//! Metering for the service scheduler: per-tenant, per-machine, and
//! per-lane counters, and the snapshot type callers see.
//!
//! Every dispatcher bills into one shared [`MetricsInner`] behind a mutex;
//! [`ServiceMetrics`] is the immutable snapshot
//! ([`crate::PermutationService::metrics`] live,
//! [`crate::PermutationService::shutdown`] final).  Job-level quantities
//! (served/failed, queue wait, run time) are split from machine-level
//! quantities (busy wall-clock, steal and coalesce counts) so a coalesced
//! batch bills its wall-clock once per machine but its wait/run per job.

use std::time::Duration;

/// Rolling per-tenant counters (one slot per handle lineage).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// The tenant id (as reported by [`crate::ServiceHandle::tenant`]).
    pub tenant: usize,
    /// Jobs served successfully for this tenant.
    pub jobs_served: u64,
    /// Jobs that failed (contained panics) for this tenant.
    pub jobs_failed: u64,
    /// [`crate::Priority::Deadline`] jobs shed unrun because their budget
    /// expired before a machine could start them.  Shed jobs never ran, so
    /// they are **not** counted in [`TenantMetrics::jobs_failed`].
    pub deadline_shed: u64,
    /// Total time this tenant's jobs spent waiting between admission and
    /// the start of their (possibly coalesced) run.
    pub queue_wait: Duration,
    /// Total time this tenant's jobs spent running on a machine.
    pub run_time: Duration,
}

/// Depth of the admission lanes at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneDepth {
    /// Jobs waiting in tenants' [`crate::Priority::Deadline`] lanes.
    pub deadline: usize,
    /// Jobs waiting in tenants' [`crate::Priority::High`] lanes.
    pub high: usize,
    /// Jobs waiting in tenants' [`crate::Priority::Normal`] lanes.
    pub normal: usize,
}

impl LaneDepth {
    /// Jobs waiting across all lanes.
    pub fn total(&self) -> usize {
        self.deadline + self.high + self.normal
    }
}

/// Rolling per-machine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineUtilization {
    /// Jobs this machine completed (including failed ones — they occupied
    /// it; excluding jobs it skipped and requeued).
    pub jobs: u64,
    /// Total wall-clock this machine spent running jobs.
    pub busy: Duration,
    /// Recovery rounds this machine's pool ran (one per contained panic).
    pub recoveries: u64,
    /// Jobs this machine **stole** from peers' deques while otherwise idle.
    pub steals: u64,
    /// Multi-job batches this machine ran (single-job runs don't count).
    pub coalesced_batches: u64,
    /// Jobs this machine completed inside multi-job batches.
    pub coalesced_jobs: u64,
}

impl MachineUtilization {
    /// Fraction of the service's uptime this machine spent busy.
    pub fn utilization(&self, uptime: Duration) -> f64 {
        if uptime.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / uptime.as_secs_f64()
        }
    }
}

/// A snapshot of everything the service has done so far, taken by
/// [`crate::PermutationService::metrics`] (live) or returned by
/// [`crate::PermutationService::shutdown`] (final).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Jobs served successfully, across all tenants.
    pub jobs_served: u64,
    /// Jobs that failed (contained panics), across all tenants.
    pub jobs_failed: u64,
    /// [`crate::Priority::Deadline`] jobs shed unrun (budget expired before
    /// any machine could start them), across all tenants.  Not counted in
    /// [`ServiceMetrics::jobs_failed`] — shed jobs never occupied a
    /// machine.
    pub deadline_shed: u64,
    /// Total queue wait across all jobs.
    pub queue_wait: Duration,
    /// Total machine run time across all jobs.
    pub run_time: Duration,
    /// Wall-clock since the service started (to the snapshot).
    pub uptime: Duration,
    /// Jobs that reached their serving machine by work stealing (sum of
    /// [`MachineUtilization::steals`]).
    pub steals: u64,
    /// Multi-job coalesced batches run, fleet-wide.
    pub coalesced_batches: u64,
    /// Jobs completed inside coalesced batches, fleet-wide.
    pub coalesced_jobs: u64,
    /// Admission-lane depths at the moment of the snapshot.
    pub lane_depth: LaneDepth,
    /// Per-machine rollups, indexed by machine.
    pub per_machine: Vec<MachineUtilization>,
    /// Per-tenant rollups, sorted by tenant id.
    pub per_tenant: Vec<TenantMetrics>,
}

impl ServiceMetrics {
    /// Jobs completed (served or failed).
    pub fn jobs_total(&self) -> u64 {
        self.jobs_served + self.jobs_failed
    }

    /// Mean queue wait per completed job.
    pub fn avg_queue_wait(&self) -> Duration {
        let jobs = self.jobs_total();
        if jobs == 0 {
            Duration::ZERO
        } else {
            self.queue_wait / jobs as u32
        }
    }

    /// Mean machine run time per completed job.
    pub fn avg_run_time(&self) -> Duration {
        let jobs = self.jobs_total();
        if jobs == 0 {
            Duration::ZERO
        } else {
            self.run_time / jobs as u32
        }
    }

    /// Aggregate served-job throughput over the service's uptime, in jobs
    /// per second.
    pub fn throughput(&self) -> f64 {
        if self.uptime.is_zero() {
            0.0
        } else {
            self.jobs_served as f64 / self.uptime.as_secs_f64()
        }
    }
}

/// The dispatchers' shared ledger (behind `SchedShared::metrics`).
#[derive(Default)]
pub(crate) struct MetricsInner {
    pub(crate) jobs_served: u64,
    pub(crate) jobs_failed: u64,
    pub(crate) deadline_shed: u64,
    pub(crate) queue_wait: Duration,
    pub(crate) run_time: Duration,
    pub(crate) per_machine: Vec<MachineUtilization>,
    /// Sparse per-tenant slots: tenants are created in order, so a Vec
    /// indexed by tenant id stays dense in practice.
    pub(crate) per_tenant: Vec<TenantMetrics>,
}

impl MetricsInner {
    pub(crate) fn new(machines: usize) -> Self {
        MetricsInner {
            per_machine: vec![MachineUtilization::default(); machines],
            ..MetricsInner::default()
        }
    }

    /// Bills one completed job to the global and per-tenant ledgers.
    pub(crate) fn record_job(&mut self, tenant: usize, wait: Duration, run: Duration, ok: bool) {
        self.queue_wait += wait;
        self.run_time += run;
        if ok {
            self.jobs_served += 1;
        } else {
            self.jobs_failed += 1;
        }
        if tenant >= self.per_tenant.len() {
            self.per_tenant
                .resize_with(tenant + 1, TenantMetrics::default);
        }
        let t = &mut self.per_tenant[tenant];
        t.tenant = tenant;
        t.queue_wait += wait;
        t.run_time += run;
        if ok {
            t.jobs_served += 1;
        } else {
            t.jobs_failed += 1;
        }
    }

    /// Bills one (possibly coalesced) run to a machine: its busy
    /// wall-clock once, the number of jobs it completed, and the pool's
    /// recovery count (absolute, not a delta).
    pub(crate) fn record_machine(
        &mut self,
        machine: usize,
        busy: Duration,
        jobs: u64,
        recoveries: u64,
    ) {
        let slot = &mut self.per_machine[machine];
        slot.jobs += jobs;
        slot.busy += busy;
        slot.recoveries = recoveries;
    }

    /// Bills one shed [`crate::Priority::Deadline`] job to the global and
    /// per-tenant shed counters (never to the failure counters: a shed job
    /// never ran).
    pub(crate) fn record_shed(&mut self, tenant: usize) {
        self.deadline_shed += 1;
        if tenant >= self.per_tenant.len() {
            self.per_tenant
                .resize_with(tenant + 1, TenantMetrics::default);
        }
        let t = &mut self.per_tenant[tenant];
        t.tenant = tenant;
        t.deadline_shed += 1;
    }

    /// Records that `machine` stole `jobs` jobs from a peer's deque.
    pub(crate) fn record_steal(&mut self, machine: usize, jobs: u64) {
        self.per_machine[machine].steals += jobs;
    }

    /// Records that `machine` completed `jobs` jobs in one coalesced batch.
    pub(crate) fn record_coalesce(&mut self, machine: usize, jobs: u64) {
        let slot = &mut self.per_machine[machine];
        slot.coalesced_batches += 1;
        slot.coalesced_jobs += jobs;
    }
}
