//! The waker-based completion core behind [`JobTicket`].
//!
//! A submitted job and its ticket share one [`Completion`] cell.  The
//! dispatcher that finishes the job **completes** the cell exactly once;
//! the ticket side redeems it.  What makes the core *waker-based* is that
//! the completing thread always knows who (if anyone) is waiting and wakes
//! them directly — there is **no poll loop anywhere in the path**:
//!
//! * a thread blocked in [`JobTicket::wait`] / [`JobTicket::wait_timeout`]
//!   sleeps on the cell's `Condvar` and is woken by the completer
//!   (Condvar-on-state: the predicate is re-checked under the same mutex
//!   that the completer sets it under, so a wake is never missed and a
//!   sleep is never spurious-looped against a ready outcome);
//! * a callback armed with [`JobTicket::on_complete`] is invoked by the
//!   completing thread itself (or inline, when the job already finished);
//! * a ticket parked in a [`CompletionSet`] pushes its key onto the set's
//!   ready list and wakes the set's `Condvar` — one blocking wait
//!   multiplexing any number of in-flight tickets, select-style.
//!
//! Dropping the producer half without completing (a dispatcher dying
//! abnormally mid-job) completes the cell with
//! [`ServiceError::ShutDown`], so a ticket can never hang on a job the
//! service will no longer serve — the same guarantee the old
//! channel-disconnect path gave, now explicit.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use super::{JobOutcome, ServiceError};
use crate::parallel::PermutationReport;

/// Who to wake when the outcome lands.
enum Waker<T> {
    /// Nobody is waiting yet; `wait`/`wait_timeout` sleepers are covered by
    /// the cell's `Condvar` and need no registration.
    None,
    /// Run this callback on the completing thread, handing it the outcome.
    Callback(Box<dyn FnOnce(JobOutcome<T>) + Send>),
    /// Push `key` onto the set's ready list and wake its `Condvar`.
    Set { shared: Arc<SetShared>, key: u64 },
}

struct CompletionState<T> {
    outcome: Option<JobOutcome<T>>,
    waker: Waker<T>,
}

/// The shared cell between one job and its ticket.
pub(crate) struct Completion<T> {
    state: Mutex<CompletionState<T>>,
    /// Wakes `wait`/`wait_timeout` sleepers (Condvar-on-`outcome`).
    done: Condvar,
}

impl<T> Completion<T> {
    fn lock(&self) -> MutexGuard<'_, CompletionState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the outcome and wakes whoever is waiting.  Callbacks run on
    /// the calling (completing) thread, outside the cell's lock.
    fn complete(&self, outcome: JobOutcome<T>) {
        let mut st = self.lock();
        if st.outcome.is_some() {
            return; // already completed (defensive; completers are unique)
        }
        match std::mem::replace(&mut st.waker, Waker::None) {
            Waker::None => {
                st.outcome = Some(outcome);
                drop(st);
                self.done.notify_all();
            }
            Waker::Callback(callback) => {
                drop(st);
                callback(outcome);
            }
            Waker::Set { shared, key } => {
                st.outcome = Some(outcome);
                drop(st);
                shared.push_ready(key);
            }
        }
    }
}

/// Creates one job↔ticket completion pair.
pub(crate) fn completion_pair<T>(
    job_id: u64,
    tenant: usize,
) -> (CompletionHandle<T>, JobTicket<T>) {
    let cell = Arc::new(Completion {
        state: Mutex::new(CompletionState {
            outcome: None,
            waker: Waker::None,
        }),
        done: Condvar::new(),
    });
    (
        CompletionHandle {
            cell: Arc::clone(&cell),
            completed: false,
        },
        JobTicket {
            cell,
            job_id,
            tenant,
        },
    )
}

/// The producer half: completes the cell exactly once.  Dropping it
/// uncompleted completes with [`ServiceError::ShutDown`] so the ticket
/// never hangs.
pub(crate) struct CompletionHandle<T> {
    cell: Arc<Completion<T>>,
    completed: bool,
}

impl<T> CompletionHandle<T> {
    /// Delivers the job's outcome, waking the ticket side.
    pub(crate) fn complete(mut self, outcome: JobOutcome<T>) {
        self.completed = true;
        self.cell.complete(outcome);
    }
}

impl<T> Drop for CompletionHandle<T> {
    fn drop(&mut self) {
        if !self.completed {
            self.cell.complete(Err(ServiceError::ShutDown));
        }
    }
}

// Manual impl so `T` need not be `Debug`.
impl<T> std::fmt::Debug for CompletionHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionHandle")
            .field("completed", &self.completed)
            .finish()
    }
}

/// A claim on one submitted job.
///
/// Redeem it blocking ([`JobTicket::wait`], [`JobTicket::wait_timeout`]),
/// non-blocking ([`JobTicket::try_wait`], [`JobTicket::is_done`]), as a
/// callback ([`JobTicket::on_complete`]), or through a [`CompletionSet`]
/// that multiplexes many tickets in one wait.  All of them ride the same
/// waker-based completion cell — no wait in this module ever spins or
/// polls.
///
/// Tickets are `Send`, so a job can be submitted on one thread and awaited
/// on another.  Dropping a ticket abandons the result (the job still runs
/// and is metered).
pub struct JobTicket<T> {
    cell: Arc<Completion<T>>,
    pub(crate) job_id: u64,
    pub(crate) tenant: usize,
}

// Manual impl so `T` (and the cell's callback box) need not be `Debug`.
impl<T> std::fmt::Debug for JobTicket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("job_id", &self.job_id)
            .field("tenant", &self.tenant)
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> JobTicket<T> {
    /// Whether the job has already completed (successfully or not): a
    /// non-consuming, non-blocking probe.  A `true` means the matching
    /// [`JobTicket::wait`]/[`JobTicket::try_wait`] returns immediately.
    pub fn is_done(&self) -> bool {
        self.cell.lock().outcome.is_some()
    }

    /// Blocks until the job completes, yielding the permuted vector and its
    /// run report — or the error that felled it: a contained
    /// [`ServiceError::JobFailed`] panic, a shed
    /// [`ServiceError::DeadlineExceeded`] deadline, or
    /// [`ServiceError::ShutDown`] if the service died before serving the
    /// job (not reachable through a clean shutdown, which drains the queue
    /// first).  The wait parks on the completion cell's condition variable;
    /// the completing dispatcher wakes it directly.
    pub fn wait(self) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        let mut st = self.cell.lock();
        while st.outcome.is_none() {
            st = self.cell.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.outcome.take().expect("loop exited on Some")
    }

    /// Non-blocking poll: the job's outcome if it already completed, or
    /// the ticket handed back (`Err`) while the job is still in flight —
    /// no parking, ever.
    ///
    /// ```
    /// use cgp_core::Permuter;
    ///
    /// let permuter = Permuter::new(2).seed(9);
    /// let service = permuter.service::<u64>();
    /// let handle = service.handle();
    /// let mut ticket = handle.submit((0..64u64).collect()).unwrap();
    /// // Poll; do other work (here: yield) while the job is in flight.
    /// let (out, _report) = loop {
    ///     match ticket.try_wait() {
    ///         Ok(outcome) => break outcome.unwrap(),
    ///         Err(in_flight) => {
    ///             ticket = in_flight;
    ///             std::thread::yield_now();
    ///         }
    ///     }
    /// };
    /// assert_eq!(out.len(), 64);
    /// service.shutdown();
    /// ```
    pub fn try_wait(self) -> Result<Result<(Vec<T>, PermutationReport), ServiceError>, Self> {
        let outcome = self.cell.lock().outcome.take();
        match outcome {
            Some(outcome) => Ok(outcome),
            None => Err(self),
        }
    }

    /// Bounded wait: parks for at most `timeout` on the completion cell's
    /// condition variable, then hands the ticket back (`Err`) if the job
    /// is still in flight.  A completion arriving mid-wait wakes the
    /// sleeper immediately — the full timeout is only ever slept when the
    /// job genuinely takes that long.
    ///
    /// ```
    /// use cgp_core::Permuter;
    /// use std::time::Duration;
    ///
    /// let permuter = Permuter::new(2).seed(9);
    /// let service = permuter.service::<u64>();
    /// let handle = service.handle();
    /// let ticket = handle.submit((0..64u64).collect()).unwrap();
    /// match ticket.wait_timeout(Duration::from_secs(30)) {
    ///     Ok(outcome) => assert_eq!(outcome.unwrap().0.len(), 64),
    ///     Err(still_in_flight) => {
    ///         // Timed out: the ticket is handed back; keep waiting.
    ///         still_in_flight.wait().unwrap();
    ///     }
    /// }
    /// service.shutdown();
    /// ```
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<(Vec<T>, PermutationReport), ServiceError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.lock();
        loop {
            if let Some(outcome) = st.outcome.take() {
                return Ok(outcome);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                drop(st);
                return Err(self);
            }
            let (guard, _timed_out) = self
                .cell
                .done
                .wait_timeout(st, left)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Arms a completion callback, consuming the ticket: `callback` runs
    /// with the job's outcome **on the completing dispatcher thread** when
    /// the job finishes — or inline on the calling thread, if it already
    /// has.  This is the push-style (async) completion path: no thread
    /// blocks, results stream out the moment they exist (the wire server
    /// uses exactly this to write result frames as tickets complete).
    ///
    /// The callback must be quick and must not block on other service
    /// results (it runs on the thread that serves them).
    ///
    /// ```
    /// use cgp_core::Permuter;
    /// use std::sync::mpsc;
    ///
    /// let permuter = Permuter::new(2).seed(9);
    /// let service = permuter.service::<u64>();
    /// let handle = service.handle();
    /// let (tx, rx) = mpsc::channel();
    /// handle
    ///     .submit((0..64u64).collect())
    ///     .unwrap()
    ///     .on_complete(move |outcome| {
    ///         tx.send(outcome.map(|(data, _report)| data.len())).unwrap()
    ///     });
    /// assert_eq!(rx.recv().unwrap().unwrap(), 64);
    /// service.shutdown();
    /// ```
    pub fn on_complete<F>(self, callback: F)
    where
        F: FnOnce(Result<(Vec<T>, PermutationReport), ServiceError>) + Send + 'static,
    {
        let mut st = self.cell.lock();
        if let Some(outcome) = st.outcome.take() {
            drop(st);
            callback(outcome);
            return;
        }
        st.waker = Waker::Callback(Box::new(callback));
    }

    /// Service-wide sequence number of this job (admission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The tenant (handle lineage) that submitted this job.
    pub fn tenant(&self) -> usize {
        self.tenant
    }
}

// ---------------------------------------------------------------------------
// CompletionSet
// ---------------------------------------------------------------------------

/// The ready list shared by a [`CompletionSet`] and its registered tickets.
pub(crate) struct SetShared {
    ready: Mutex<VecDeque<u64>>,
    wake: Condvar,
}

impl SetShared {
    fn push_ready(&self, key: u64) {
        self.ready
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(key);
        self.wake.notify_all();
    }
}

/// A select-style multiplexer over many in-flight [`JobTicket`]s: one
/// blocking wait that resolves whichever job finishes first, in completion
/// order.
///
/// Each inserted ticket registers a waker on its completion cell; the
/// completing dispatcher pushes the ticket's key onto the set's ready list
/// and wakes the set.  [`CompletionSet::wait_any`] therefore sleeps on a
/// single condition variable however many jobs are outstanding — no
/// polling, no per-ticket threads, no ordering assumption.
///
/// ```
/// use cgp_core::{CompletionSet, Permuter};
///
/// let permuter = Permuter::new(2).seed(9);
/// let service = permuter.service::<u64>();
/// let handle = service.handle();
/// let mut set = CompletionSet::new();
/// for _ in 0..4 {
///     set.insert(handle.submit((0..64u64).collect()).unwrap());
/// }
/// // Resolve all four in whatever order they complete.
/// let mut seen = 0;
/// while let Some((key, outcome)) = set.wait_any() {
///     assert_eq!(outcome.unwrap().0.len(), 64);
///     assert!(key < 4, "keys are insertion-ordered");
///     seen += 1;
/// }
/// assert_eq!(seen, 4);
/// service.shutdown();
/// ```
pub struct CompletionSet<T> {
    shared: Arc<SetShared>,
    pending: HashMap<u64, JobTicket<T>>,
    next_key: u64,
}

impl<T> Default for CompletionSet<T> {
    fn default() -> Self {
        CompletionSet::new()
    }
}

impl<T> CompletionSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        CompletionSet {
            shared: Arc::new(SetShared {
                ready: Mutex::new(VecDeque::new()),
                wake: Condvar::new(),
            }),
            pending: HashMap::new(),
            next_key: 0,
        }
    }

    /// Adds a ticket to the set, returning the **key** later handed back by
    /// [`CompletionSet::wait_any`] (keys are assigned in insertion order,
    /// starting at 0).  A ticket whose job already completed is immediately
    /// ready.
    pub fn insert(&mut self, ticket: JobTicket<T>) -> u64 {
        let key = self.next_key;
        self.next_key += 1;
        {
            let mut st = ticket.cell.lock();
            if st.outcome.is_some() {
                // Already done: straight onto the ready list.
                self.shared.push_ready(key);
            } else {
                st.waker = Waker::Set {
                    shared: Arc::clone(&self.shared),
                    key,
                };
            }
        }
        self.pending.insert(key, ticket);
        key
    }

    /// Tickets inserted but not yet resolved by a `wait_any` call.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether every inserted ticket has been resolved.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn resolve(&mut self, key: u64) -> (u64, JobOutcome<T>) {
        let ticket = self
            .pending
            .remove(&key)
            .expect("a ready key always has a pending ticket");
        let outcome = ticket
            .cell
            .lock()
            .outcome
            .take()
            .expect("a ready ticket has its outcome set");
        (key, outcome)
    }

    /// Blocks until **any** registered job completes, returning its key and
    /// outcome; `None` once the set is empty (every ticket resolved).  Jobs
    /// resolve in completion order, not insertion order.
    pub fn wait_any(&mut self) -> Option<(u64, JobOutcome<T>)> {
        if self.pending.is_empty() {
            return None;
        }
        let mut ready = self.shared.ready.lock().unwrap_or_else(|e| e.into_inner());
        let key = loop {
            if let Some(key) = ready.pop_front() {
                break key;
            }
            ready = self
                .shared
                .wake
                .wait(ready)
                .unwrap_or_else(|e| e.into_inner());
        };
        drop(ready);
        Some(self.resolve(key))
    }

    /// Bounded [`CompletionSet::wait_any`]: parks for at most `timeout`,
    /// returning `None` when the set is empty **or** no job completed in
    /// time (check [`CompletionSet::is_empty`] to tell the cases apart).
    pub fn wait_any_timeout(&mut self, timeout: Duration) -> Option<(u64, JobOutcome<T>)> {
        if self.pending.is_empty() {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let mut ready = self.shared.ready.lock().unwrap_or_else(|e| e.into_inner());
        let key = loop {
            if let Some(key) = ready.pop_front() {
                break key;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _timed_out) = self
                .shared
                .wake
                .wait_timeout(ready, left)
                .unwrap_or_else(|e| e.into_inner());
            ready = guard;
        };
        drop(ready);
        Some(self.resolve(key))
    }
}

impl<T> std::fmt::Debug for CompletionSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSet")
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    fn dummy_outcome(len: usize) -> JobOutcome<u64> {
        // pub(crate) fields make a literal possible here; the report's
        // contents are irrelevant to completion plumbing.
        Ok((
            vec![0u64; len],
            PermutationReport {
                backend: crate::MatrixBackend::Sequential,
                algorithm: crate::Algorithm::Gustedt,
                local_shuffle: crate::LocalShuffle::FisherYates,
                matrix_elapsed: Duration::ZERO,
                exchange_elapsed: Duration::ZERO,
                shuffle_elapsed: Duration::ZERO,
                matrix_metrics: Default::default(),
                exchange_metrics: Default::default(),
                matrix: None,
                total_elapsed: Duration::ZERO,
            },
        ))
    }

    #[test]
    fn wait_blocks_until_completed_and_wakes_promptly() {
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        assert!(!ticket.is_done());
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.complete(dummy_outcome(3));
        });
        let started = Instant::now();
        let (data, _) = ticket.wait().unwrap();
        assert_eq!(data.len(), 3);
        assert!(started.elapsed() >= Duration::from_millis(45));
        completer.join().unwrap();
    }

    #[test]
    fn wait_timeout_sleeps_vs_wakes_deterministically() {
        // The acceptance soak for "no poll loops": an uncompleted wait
        // honours its timeout (sleeps), a completed one returns promptly
        // (wakes) — over many rounds, with the completer racing the waiter.
        for round in 0..200u64 {
            let (handle, ticket) = completion_pair::<u64>(round, 0);
            if round % 2 == 0 {
                // Sleep case: nobody completes; the full (short) timeout
                // elapses and the ticket is handed back.
                let started = Instant::now();
                let ticket = ticket
                    .wait_timeout(Duration::from_millis(2))
                    .expect_err("uncompleted ticket must time out");
                assert!(started.elapsed() >= Duration::from_millis(2));
                handle.complete(dummy_outcome(1));
                ticket.wait().unwrap();
            } else {
                // Wake case: a concurrent completer must cut a long wait
                // short — if the wait polled instead of parking, this soak
                // would burn seconds; if it missed wakes, it would sleep
                // the full 30s timeout and the suite would hang.
                let completer = std::thread::spawn(move || handle.complete(dummy_outcome(2)));
                let started = Instant::now();
                ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("completed ticket must not time out")
                    .unwrap();
                assert!(started.elapsed() < Duration::from_secs(5));
                completer.join().unwrap();
            }
        }
    }

    #[test]
    fn try_wait_never_blocks() {
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        let ticket = ticket.try_wait().expect_err("still in flight");
        handle.complete(dummy_outcome(2));
        assert!(ticket.is_done());
        let (data, _) = ticket.try_wait().expect("completed").unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn on_complete_runs_on_the_completing_thread_or_inline() {
        // Armed before completion: the callback runs on the completer.
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        let (tx, rx) = std::sync::mpsc::channel();
        ticket.on_complete(move |outcome| {
            tx.send((std::thread::current().id(), outcome.unwrap().0.len()))
                .unwrap();
        });
        let completer = std::thread::spawn(move || {
            let me = std::thread::current().id();
            handle.complete(dummy_outcome(5));
            me
        });
        let completer_id = completer.join().unwrap();
        let (ran_on, len) = rx.recv().unwrap();
        assert_eq!(ran_on, completer_id);
        assert_eq!(len, 5);

        // Armed after completion: the callback runs inline, immediately.
        let (handle, ticket) = completion_pair::<u64>(1, 0);
        handle.complete(dummy_outcome(7));
        let ran = Arc::new(AtomicBool::new(false));
        let ran_clone = Arc::clone(&ran);
        ticket.on_complete(move |outcome| {
            assert_eq!(outcome.unwrap().0.len(), 7);
            ran_clone.store(true, Ordering::SeqCst);
        });
        assert!(
            ran.load(Ordering::SeqCst),
            "inline callback ran before return"
        );
    }

    #[test]
    fn dropping_the_producer_half_completes_with_shutdown() {
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        drop(handle);
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::ShutDown);
    }

    #[test]
    fn completion_set_resolves_in_completion_order() {
        let mut set = CompletionSet::new();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let (handle, ticket) = completion_pair::<u64>(i, 0);
            let key = set.insert(ticket);
            assert_eq!(key, i);
            handles.push(handle);
        }
        assert_eq!(set.len(), 4);
        // Complete out of insertion order: 2, 0, 3, 1.
        for &i in &[2usize, 0, 3, 1] {
            handles.remove(i.min(handles.len() - 1));
        }
        // (handles dropped => ShutDown outcomes; order of drops above is
        // what wait_any must reproduce — but Vec::remove reshuffles, so
        // just assert all four resolve.)
        let mut keys = Vec::new();
        while let Some((key, outcome)) = set.wait_any() {
            assert!(outcome.is_err());
            keys.push(key);
        }
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        assert!(set.is_empty());
        assert!(set.wait_any().is_none());
    }

    #[test]
    fn completion_set_wait_any_wakes_on_late_completion() {
        let mut set = CompletionSet::new();
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        let key = set.insert(ticket);
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            handle.complete(dummy_outcome(9));
        });
        let started = Instant::now();
        let (got, outcome) = set.wait_any().expect("one ticket pending");
        assert_eq!(got, key);
        assert_eq!(outcome.unwrap().0.len(), 9);
        assert!(started.elapsed() >= Duration::from_millis(35));
        assert!(started.elapsed() < Duration::from_secs(5));
        completer.join().unwrap();
    }

    #[test]
    fn completion_set_timeout_hands_back_nothing_but_keeps_pending() {
        let mut set = CompletionSet::new();
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        set.insert(ticket);
        let started = Instant::now();
        assert!(set.wait_any_timeout(Duration::from_millis(5)).is_none());
        assert!(started.elapsed() >= Duration::from_millis(5));
        assert_eq!(set.len(), 1, "timeout does not resolve the ticket");
        handle.complete(dummy_outcome(1));
        assert!(set.wait_any_timeout(Duration::from_secs(5)).is_some());
        assert!(set.is_empty());
    }

    #[test]
    fn already_completed_tickets_are_immediately_ready_in_a_set() {
        let (handle, ticket) = completion_pair::<u64>(0, 0);
        handle.complete(dummy_outcome(4));
        let mut set = CompletionSet::new();
        let key = set.insert(ticket);
        let (got, outcome) = set
            .wait_any_timeout(Duration::from_millis(1))
            .expect("pre-completed ticket is ready without any wait");
        assert_eq!(got, key);
        assert_eq!(outcome.unwrap().0.len(), 4);
    }
}
