//! A multi-tenant permutation service: many concurrent clients, one shared
//! fleet of resident machines, a real scheduler in between.
//!
//! A [`crate::PermutationSession`] owns its [`cgp_cgm::ResidentCgm`]
//! exclusively — one caller, one machine.  A [`PermutationService`] is the
//! server-shaped counterpart: it owns a configurable **fleet** of resident
//! machines and multiplexes many independent permutation jobs over them,
//! the work-scheduling shape parallel CP solvers (Bobpp) use to serve many
//! clients from one fixed set of processing elements — per-worker queues
//! with stealing behind fair admission.
//!
//! The scheduler has three moving parts (each in its own module):
//!
//! * **Fair-share admission** (`queue`): a bounded buffer
//!   ([`ServiceConfig::queue_depth`]) where every tenant owns two lanes —
//!   [`Priority::High`] and [`Priority::Normal`] — and a
//!   deficit-round-robin weight ([`PermutationService::handle_weighted`]).
//!   A per-tenant quota ([`ServiceConfig::tenant_quota`]) caps how much of
//!   the buffer one tenant can occupy, so a flooding tenant backpressures
//!   **itself** ([`ServiceError::QueueFull`]) while its neighbours keep
//!   submitting.
//! * **Per-machine deques with work stealing** ([`scheduler`]): each
//!   dispatcher refills its own FIFO deque from admission when empty; an
//!   idle dispatcher steals the back half of the most-loaded peer's deque
//!   instead of parking.  Every machine shares the fleet seed and every
//!   random stream is derived per call, so **which machine serves a job
//!   never changes the result**.
//! * **Small-job coalescing** ([`scheduler`]): consecutive compatible jobs
//!   (same options, payload under [`ServiceConfig::coalesce_budget`])
//!   batch into one fenced submission to the resident pool, amortizing the
//!   per-job worker wake/rendezvous that dominates tiny payloads — with
//!   each job keeping its own derived random streams, so a coalesced job's
//!   output is byte-identical to a solo run.
//!
//! Clients hold cheap, cloneable [`ServiceHandle`]s and either
//! [`ServiceHandle::submit`] (async, returns a [`JobTicket`] backed by the
//! waker-based completion core: await it, poll it with
//! [`JobTicket::try_wait`] / [`JobTicket::is_done`], bound it with
//! [`JobTicket::wait_timeout`], arm a push-style callback with
//! [`JobTicket::on_complete`], or multiplex many tickets through one
//! blocking [`CompletionSet::wait_any`]) or [`ServiceHandle::permute`]
//! (blocking submit-and-wait).  Latency-bounded work rides the
//! [`Priority::Deadline`] lane: deadline jobs drain before everything
//! else, earliest expiry first, and a job whose deadline passes before a
//! machine picks it up is **shed** —
//! [`ServiceError::DeadlineExceeded`] on its ticket, a per-tenant
//! [`TenantMetrics::deadline_shed`] count in the metrics — instead of
//! wasting a machine on an answer nobody is still waiting for.  Malformed
//! per-job options are rejected at admission
//! ([`ServiceError::InvalidJob`], payload handed back), so they never
//! occupy a machine.  [`ServiceMetrics`] meters the whole operation: jobs
//! served and failed, queue-wait vs run time (aggregate and per tenant),
//! steal and coalesce counts, admission-lane depths, and per-machine
//! utilization.
//!
//! # Fault isolation
//!
//! A job that panics inside a virtual processor is contained to its own
//! ticket: [`JobTicket::wait`] returns
//! [`ServiceError::JobFailed`]`(`[`CgmError::ProcessorPanicked`]`)` naming
//! the processor, the machine recovers through the resident pool's existing
//! recovery round, and the dispatcher returns it to rotation — one bad
//! tenant cannot poison the service for the others.  (The failed job's
//! items are lost: they had already been distributed into the machine.)
//! In a coalesced batch the same holds per job: the faulting job's ticket
//! fails, jobs queued behind it in the batch are requeued with their
//! payloads intact and rerun.
//!
//! # Determinism
//!
//! Every machine in the fleet runs the same configuration (seed, processor
//! count), and every random stream of Algorithm 1 is derived from that
//! seed per call — so scheduling decisions (home machine, steal, coalesce)
//! never change the result: a service permutation of `n` items equals the
//! one-shot [`crate::Permuter::permute`] of the same permuter, exactly as
//! sessions do.
//!
//! # One-shot vs. session vs. service
//!
//! | shape | startup | concurrency | use when |
//! |---|---|---|---|
//! | [`crate::Permuter::permute`] | per call | caller-side | a handful of calls |
//! | [`crate::Permuter::session`] | once | one caller | a steady single-caller loop |
//! | [`crate::Permuter::service`] | once | many callers | concurrent clients share a fleet |
//!
//! ```
//! use cgp_core::Permuter;
//!
//! let permuter = Permuter::new(2).seed(7);
//! let service = permuter.service::<u64>();
//! let handle = service.handle();
//! // Submit four jobs; tickets resolve in any order.
//! let tickets: Vec<_> = (0..4)
//!     .map(|_| handle.submit((0..100u64).collect()).unwrap())
//!     .collect();
//! let reference = permuter.permute((0..100u64).collect()).0;
//! for ticket in tickets {
//!     let (out, report) = ticket.wait().unwrap();
//!     assert_eq!(out, reference); // same seed ⇒ same permutation as one-shot
//!     assert!(report.max_exchange_volume() <= 2 * 50);
//! }
//! let metrics = service.shutdown();
//! assert_eq!(metrics.jobs_served, 4);
//! ```

pub(crate) mod completion;
mod metrics;
mod queue;
pub mod scheduler;

pub use completion::{CompletionSet, JobTicket};
pub use metrics::{LaneDepth, MachineUtilization, ServiceMetrics, TenantMetrics};

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{EngineConfig, PermuteOptions};
use crate::parallel::PermutationReport;
use cgp_cgm::{CgmError, ResidentCgm, TransportKind};

use metrics::MetricsInner;
use queue::{Admission, Job, MachineQueue};
use scheduler::{dispatcher_loop, SchedShared};

/// Default byte budget for one coalesced batch (256 KiB).
///
/// Coalescing exists to amortize the fixed per-job cost (worker wake-up,
/// completion rendezvous, generation fences) across jobs whose *payload*
/// work is smaller than that overhead.  256 KiB keeps a whole batch inside
/// a typical per-core L2 slice — jobs big enough to stream through memory
/// don't benefit from batching and shouldn't wait on each other — while
/// still packing hundreds of the paper's small-`n` runs into one wake.
pub const DEFAULT_COALESCE_BUDGET: usize = 256 * 1024;

/// Sizing of a [`PermutationService`]: how many resident machines to run,
/// how many virtual processors each gets, how deep and how fair the
/// admission buffer is, and how aggressively small jobs coalesce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of resident machines in the fleet.  Defaults to one machine
    /// per group of `procs` host threads (`available_parallelism / procs`,
    /// at least one), so the fleet saturates the host without
    /// oversubscribing it.
    pub machines: usize,
    /// The engine-selection core shared with every other front door of the
    /// crate (see [`EngineConfig`]): virtual processors per machine, the
    /// fleet-wide master seed every per-call random stream derives from
    /// (which is what makes the service produce the same permutation
    /// regardless of the serving machine), the permutation algorithm, the
    /// local-shuffle engine and the transport substrate.
    pub engine: EngineConfig,
    /// Capacity of the bounded admission buffer (jobs accepted but not yet
    /// moved to a machine deque).  `try_submit` reports
    /// [`ServiceError::QueueFull`] when it is reached; blocking `submit`
    /// parks instead.  Values below 1 are treated as 1 (a zero-depth
    /// buffer could never admit anything).
    pub queue_depth: usize,
    /// Most admission slots one tenant may occupy at a time.  Exceeding it
    /// is the same backpressure as a full buffer — but only for that
    /// tenant.  Defaults to `usize::MAX` (no quota).
    pub tenant_quota: usize,
    /// Byte budget for one coalesced batch: consecutive compatible jobs
    /// whose payloads sum to at most this many bytes run as a single
    /// submission to the machine.  `0` disables coalescing.  Defaults to
    /// [`DEFAULT_COALESCE_BUDGET`].
    pub coalesce_budget: usize,
}

impl ServiceConfig {
    /// A fleet sized for this host: `procs` virtual processors per machine,
    /// one machine per `procs` host threads (at least one), and an
    /// admission buffer twice the fleet size.
    pub fn new(procs: usize) -> Self {
        ServiceConfig::from_engine(EngineConfig::new(procs))
    }

    /// A fleet of machines all running `engine` — the bridge from the
    /// shared [`EngineConfig`] front door (fleet sizing as in
    /// [`ServiceConfig::new`]).
    pub fn from_engine(engine: EngineConfig) -> Self {
        let host = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let machines = (host / engine.procs.max(1)).max(1);
        ServiceConfig {
            machines,
            engine,
            queue_depth: 2 * machines,
            tenant_quota: usize::MAX,
            coalesce_budget: DEFAULT_COALESCE_BUDGET,
        }
    }

    /// Sets the fleet size.
    pub fn machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the admission-buffer depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Caps the admission slots any one tenant may occupy.
    pub fn tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = quota;
        self
    }

    /// Sets the coalesced-batch byte budget (`0` disables coalescing).
    pub fn coalesce_budget(mut self, bytes: usize) -> Self {
        self.coalesce_budget = bytes;
        self
    }

    /// Sets the fleet-wide master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Sets the transport substrate for every machine of the fleet.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.engine.transport = transport;
        self
    }

    /// Sets the master seed.
    #[deprecated(note = "renamed to `ServiceConfig::seed` when the engine \
                         knobs moved into the shared `EngineConfig`")]
    pub fn with_seed(self, seed: u64) -> Self {
        self.seed(seed)
    }

    /// Sets the transport substrate for every machine of the fleet.
    #[deprecated(note = "renamed to `ServiceConfig::transport` when the \
                         engine knobs moved into the shared `EngineConfig`")]
    pub fn with_transport(self, transport: TransportKind) -> Self {
        self.transport(transport)
    }
}

/// Which admission lane a job enters.
///
/// `High` jobs drain **before any** `Normal` job at refill time (strict
/// priority, round-robin across tenants), so they are for genuinely
/// latency-sensitive submissions — an interactive caller behind batch
/// traffic.  A steady flood of `High` traffic starves the `Normal` lanes
/// by design; keep it for the exceptional jobs, not the steady state.
///
/// `Deadline` sits **above** `High`: a deadline job must start within its
/// budget or not at all.  Deadline lanes drain before everything else,
/// earliest expiry first across tenants; a job whose deadline passes
/// before a machine picks it up is shed with
/// [`ServiceError::DeadlineExceeded`] (and counted in
/// [`TenantMetrics::deadline_shed`]) rather than run late.  Shedding is a
/// feature, not a failure mode: it keeps an overloaded fleet spending its
/// machines on answers someone is still waiting for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// The default lane: weighted deficit-round-robin across tenants.
    #[default]
    Normal,
    /// Jumps every Normal backlog; round-robin among High submitters.
    High,
    /// Start within this budget (measured from admission) or be shed with
    /// [`ServiceError::DeadlineExceeded`].  Drains before High, earliest
    /// expiry first.
    Deadline(Duration),
}

/// Why the service could not serve (or accept) a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission buffer (or this tenant's quota slice of it,
    /// [`ServiceConfig::tenant_quota`]) is at capacity; retry later (the
    /// rejected payload is handed back in [`RejectedJob`]).  Only
    /// `try_submit` reports this — blocking `submit` parks instead.
    QueueFull,
    /// The service has been shut down and accepts no further jobs.
    ShutDown,
    /// The submission was malformed (e.g. per-job `target_sizes` that do
    /// not match the machine): rejected at admission with the payload
    /// handed back, before anything ran.
    InvalidJob(String),
    /// The job panicked inside a virtual processor; the error names it.
    /// The machine it ran on was recovered and returned to rotation — only
    /// this job is affected.
    JobFailed(CgmError),
    /// A [`Priority::Deadline`] job's budget expired before any machine
    /// could start it, so the service shed it without running (the items
    /// are dropped — by the job's own declaration, the answer is stale).
    /// Shed jobs are metered separately from failures
    /// ([`TenantMetrics::deadline_shed`]).
    DeadlineExceeded,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => {
                write!(f, "the service's admission queue is full; retry later")
            }
            ServiceError::ShutDown => {
                write!(f, "the permutation service is shut down")
            }
            ServiceError::InvalidJob(message) => {
                write!(f, "the submission was rejected: {message}")
            }
            ServiceError::JobFailed(e) => write!(f, "the job failed: {e}"),
            ServiceError::DeadlineExceeded => {
                write!(
                    f,
                    "the job's deadline expired before a machine could start it"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::JobFailed(e) => Some(e),
            _ => None,
        }
    }
}

/// A submission the service refused, with the payload handed back so the
/// caller can retry (after backpressure) or dispose of it.
#[derive(Debug)]
pub struct RejectedJob<T> {
    /// Why the submission was refused.
    pub error: ServiceError,
    /// The payload, untouched.
    pub data: Vec<T>,
}

/// What a completed job delivers to its ticket.
pub(crate) type JobOutcome<T> = Result<(Vec<T>, PermutationReport), ServiceError>;

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A multi-tenant permutation scheduler over a fleet of resident machines.
/// See the [module docs](self) for the full picture.
pub struct PermutationService<T: Send + 'static> {
    shared: Arc<SchedShared<T>>,
    dispatchers: Vec<Option<JoinHandle<()>>>,
    config: ServiceConfig,
}

impl<T: Send + 'static> PermutationService<T> {
    /// Builds the fleet and starts one dispatcher per machine.
    ///
    /// # Panics
    /// Panics when the configuration is unservable (zero machines or zero
    /// processors); [`PermutationService::try_new`] reports those as
    /// values.
    pub fn new(config: ServiceConfig, options: PermuteOptions) -> Self {
        PermutationService::try_new(config, options).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: spawns `machines` resident pools and their
    /// dispatcher threads, or reports [`CgmError::NoProcessors`] for an
    /// empty fleet / empty machines and [`CgmError::WorkerSpawnFailed`]
    /// when the OS refuses a thread (already-started machines are shut
    /// down and joined first).
    pub fn try_new(config: ServiceConfig, options: PermuteOptions) -> Result<Self, CgmError> {
        if config.machines == 0 || config.engine.procs == 0 {
            return Err(CgmError::NoProcessors);
        }
        let shared = Arc::new(SchedShared {
            admission: Admission::new(config.queue_depth, config.tenant_quota),
            machines: (0..config.machines).map(|_| MachineQueue::new()).collect(),
            metrics: Mutex::new(MetricsInner::new(config.machines)),
            default_options: options,
            procs: config.engine.procs,
            coalesce_budget: config.coalesce_budget,
            next_job: AtomicU64::new(0),
            started_at: Instant::now(),
        });
        let machine_config = config.engine.try_cgm_config()?;
        let mut dispatchers = Vec::with_capacity(config.machines);
        for machine_idx in 0..config.machines {
            // Spawn the pool on the service thread so spawn failures surface
            // here, then move it into its dispatcher.
            let pool = match ResidentCgm::<T>::try_new(machine_config) {
                Ok(pool) => pool,
                Err(e) => {
                    drop(pool_teardown(&shared, &mut dispatchers));
                    return Err(e);
                }
            };
            let shared_ref = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("cgp-dispatch-{machine_idx}"))
                .spawn(move || dispatcher_loop(machine_idx, pool, shared_ref))
            {
                Ok(handle) => dispatchers.push(Some(handle)),
                Err(e) => {
                    drop(pool_teardown(&shared, &mut dispatchers));
                    return Err(CgmError::WorkerSpawnFailed {
                        proc: machine_idx,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(PermutationService {
            shared,
            dispatchers,
            config,
        })
    }

    /// The service's sizing.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Number of resident machines in the fleet.
    pub fn machines(&self) -> usize {
        self.config.machines
    }

    /// Virtual processors per machine.
    pub fn procs(&self) -> usize {
        self.config.engine.procs
    }

    /// Opens a client handle under a **fresh tenant id** (with DRR
    /// weight 1) — per-tenant metrics accrue to it.  Clone the handle to
    /// share one tenant's identity across threads; call `handle()` again
    /// for a separate tenant.
    pub fn handle(&self) -> ServiceHandle<T> {
        self.handle_weighted(1)
    }

    /// A handle whose tenant carries the given **deficit-round-robin
    /// weight**: per admission pass, a weight-`w` tenant's Normal lane
    /// drains `w` times the payload of a weight-1 tenant.  Weight 0 is
    /// treated as 1.
    pub fn handle_weighted(&self, weight: u64) -> ServiceHandle<T> {
        ServiceHandle {
            tenant: self.shared.admission.register_tenant(weight),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Jobs currently queued: admitted but not yet started on a machine.
    ///
    /// This is a **point-in-time sum** over the admission lanes and every
    /// per-machine deque, taken without a global lock — jobs in flight
    /// between the two tiers (or just popped for execution) may be counted
    /// in neither, so treat it as a load gauge, not an exact invariant.
    pub fn queued_jobs(&self) -> usize {
        self.shared.admission.len() + self.shared.machines.iter().map(|m| m.len()).sum::<usize>()
    }

    /// A live snapshot of the service's metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        snapshot_metrics(&self.shared)
    }

    /// Stops admission, **drains every already-accepted job**, joins the
    /// dispatchers and their pools, and returns the final metrics.  Every
    /// ticket issued before the shutdown still resolves.
    pub fn shutdown(mut self) -> ServiceMetrics {
        let panics = self.close_and_join();
        let metrics = snapshot_metrics(&self.shared);
        if let Some((machine, payload)) = panics.into_iter().next() {
            panic!(
                "service dispatcher {machine} died abnormally: {}",
                panic_text(payload.as_ref())
            );
        }
        metrics
    }

    fn close_and_join(&mut self) -> Vec<(usize, Box<dyn Any + Send>)> {
        self.shared.admission.close();
        let mut panics = Vec::new();
        for (idx, slot) in self.dispatchers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                if let Err(payload) = handle.join() {
                    panics.push((idx, payload));
                }
            }
        }
        panics
    }
}

impl<T: Send + 'static> Drop for PermutationService<T> {
    fn drop(&mut self) {
        let panics = self.close_and_join();
        if let Some((machine, payload)) = panics.into_iter().next() {
            if !std::thread::panicking() {
                panic!(
                    "service dispatcher {machine} died abnormally: {}",
                    panic_text(payload.as_ref())
                );
            }
        }
    }
}

/// Best-effort teardown of a partially-built fleet: close admission so the
/// already-running dispatchers exit, then join them.
fn pool_teardown<T: Send + 'static>(
    shared: &Arc<SchedShared<T>>,
    dispatchers: &mut [Option<JoinHandle<()>>],
) -> Vec<(usize, Box<dyn Any + Send>)> {
    shared.admission.close();
    let mut panics = Vec::new();
    for (idx, slot) in dispatchers.iter_mut().enumerate() {
        if let Some(handle) = slot.take() {
            if let Err(payload) = handle.join() {
                panics.push((idx, payload));
            }
        }
    }
    panics
}

pub(crate) fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn snapshot_metrics<T>(shared: &SchedShared<T>) -> ServiceMetrics {
    let inner = shared.metrics.lock().unwrap_or_else(|e| e.into_inner());
    let mut per_tenant = inner.per_tenant.clone();
    per_tenant.retain(|t| t.jobs_served + t.jobs_failed + t.deadline_shed > 0);
    ServiceMetrics {
        jobs_served: inner.jobs_served,
        jobs_failed: inner.jobs_failed,
        deadline_shed: inner.deadline_shed,
        queue_wait: inner.queue_wait,
        run_time: inner.run_time,
        uptime: shared.started_at.elapsed(),
        steals: inner.per_machine.iter().map(|m| m.steals).sum(),
        coalesced_batches: inner.per_machine.iter().map(|m| m.coalesced_batches).sum(),
        coalesced_jobs: inner.per_machine.iter().map(|m| m.coalesced_jobs).sum(),
        lane_depth: shared.admission.lane_depth(),
        per_machine: inner.per_machine.clone(),
        per_tenant,
    }
}

/// A client's entry point into a [`PermutationService`]: cheap to clone
/// (one `Arc` bump) and `Send + Sync`, so it can be handed to any number
/// of client threads.
///
/// A handle carries a **tenant id**: clones share it (and its metrics
/// slot, quota, and DRR weight); [`PermutationService::handle`] mints
/// fresh ones.
pub struct ServiceHandle<T: Send + 'static> {
    shared: Arc<SchedShared<T>>,
    tenant: usize,
}

impl<T: Send + 'static> Clone for ServiceHandle<T> {
    fn clone(&self) -> Self {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
            tenant: self.tenant,
        }
    }
}

impl<T: Send + 'static> ServiceHandle<T> {
    /// This handle's tenant id (shared by its clones).
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    fn make_job(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
        priority: Priority,
    ) -> (Box<Job<T>>, JobTicket<T>) {
        let job_id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let (reply, ticket) = completion::completion_pair(job_id, self.tenant);
        let enqueued_at = Instant::now();
        let deadline = match priority {
            Priority::Deadline(budget) => Some(enqueued_at + budget),
            Priority::Normal | Priority::High => None,
        };
        let job = Box::new(Job {
            data,
            options,
            tenant: self.tenant,
            priority,
            enqueued_at,
            deadline,
            reply,
        });
        (job, ticket)
    }

    fn admit(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
        priority: Priority,
        block: bool,
    ) -> Result<JobTicket<T>, RejectedJob<T>> {
        if let Err(message) = options.check_target_sizes(self.shared.procs, data.len() as u64) {
            return Err(RejectedJob {
                error: ServiceError::InvalidJob(message),
                data,
            });
        }
        let (job, ticket) = self.make_job(data, options, priority);
        match self.shared.admission.push(job, block) {
            Ok(()) => Ok(ticket),
            Err((job, backpressure)) => Err(RejectedJob {
                error: if backpressure {
                    ServiceError::QueueFull
                } else {
                    ServiceError::ShutDown
                },
                data: job.data,
            }),
        }
    }

    /// Submits a job with the service's default options on the Normal
    /// lane, **blocking while the admission buffer (or this tenant's
    /// quota) is full**.  Fails only once the service is shut down (the
    /// payload comes back in the [`RejectedJob`]).
    pub fn submit(&self, data: Vec<T>) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.submit_with(data, self.shared.default_options.clone(), Priority::Normal)
    }

    /// [`ServiceHandle::submit`] with explicit per-job options (matrix
    /// backend, local-shuffle engine, target sizes, …) and an admission
    /// lane.  The job-level options override the service-wide defaults for
    /// this job only, so one tenant can e.g. pin
    /// [`crate::LocalShuffle::FisherYates`] for a byte-stable permutation
    /// while others ride the default `Auto`.
    ///
    /// Malformed options (e.g. `target_sizes` that do not match the
    /// machine) are rejected **at admission** as
    /// [`ServiceError::InvalidJob`] with the payload handed back — a bad
    /// submission never reaches (let alone kills) a dispatcher.
    pub fn submit_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
        priority: Priority,
    ) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.admit(data, options, priority, true)
    }

    /// Non-blocking submission on the Normal lane: explicit backpressure.
    /// A full buffer (or exhausted tenant quota) hands the payload back
    /// with [`ServiceError::QueueFull`] so the caller can retry, shed
    /// load, or block on [`ServiceHandle::submit`] instead.
    pub fn try_submit(&self, data: Vec<T>) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.try_submit_with(data, self.shared.default_options.clone(), Priority::Normal)
    }

    /// [`ServiceHandle::try_submit`] with explicit per-job options and an
    /// admission lane (malformed options are rejected as
    /// [`ServiceError::InvalidJob`], as in [`ServiceHandle::submit_with`]).
    pub fn try_submit_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
        priority: Priority,
    ) -> Result<JobTicket<T>, RejectedJob<T>> {
        self.admit(data, options, priority, false)
    }

    /// Blocking submit-and-wait: the synchronous client call.
    pub fn permute(&self, data: Vec<T>) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        self.permute_with(data, self.shared.default_options.clone())
    }

    /// [`ServiceHandle::permute`] with explicit per-job options.
    pub fn permute_with(
        &self,
        data: Vec<T>,
        options: PermuteOptions,
    ) -> Result<(Vec<T>, PermutationReport), ServiceError> {
        match self.submit_with(data, options, Priority::Normal) {
            Ok(ticket) => ticket.wait(),
            Err(rejected) => Err(rejected.error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineFault;
    use crate::{MatrixBackend, Permuter};

    #[test]
    fn service_matches_one_shot_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let permuter = Permuter::new(3).seed(29).backend(backend);
            let reference = permuter.permute((0..300u64).collect()).0;
            let service = permuter.service_sized::<u64>(2, 8);
            let handle = service.handle();
            let tickets: Vec<_> = (0..6)
                .map(|_| handle.submit((0..300u64).collect()).unwrap())
                .collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let (out, _) = t.wait().unwrap();
                assert_eq!(out, reference, "{backend:?} diverged on job {i}");
            }
            service.shutdown();
        }
    }

    #[test]
    fn per_job_options_override_the_service_default() {
        let permuter = Permuter::new(2).seed(11).backend(MatrixBackend::Sequential);
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        let opts = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal);
        let (_, report) = handle.permute_with((0..64u64).collect(), opts).unwrap();
        assert_eq!(report.backend, MatrixBackend::ParallelOptimal);
        let (_, report) = handle.permute((0..64u64).collect()).unwrap();
        assert_eq!(report.backend, MatrixBackend::Sequential);
        service.shutdown();
    }

    #[test]
    fn per_job_local_shuffle_override_matches_the_one_shot_path() {
        use crate::cache_aware::LocalShuffle;
        // Service default is Auto (via the Permuter); a tenant pinning an
        // explicit engine per job must get exactly the permutation the
        // one-shot path produces under that engine.
        let engine = LocalShuffle::Bucketed { bucket_items: 16 };
        let permuter = Permuter::new(2).seed(37);
        let reference = permuter
            .clone()
            .local_shuffle(engine)
            .permute((0..200u64).collect())
            .0;
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        let opts = PermuteOptions::new().local_shuffle(engine);
        let (out, report) = handle.permute_with((0..200u64).collect(), opts).unwrap();
        assert_eq!(out, reference);
        assert_eq!(report.local_shuffle, engine);
        // Jobs without the override keep the service-wide default.
        let (_, report) = handle.permute((0..200u64).collect()).unwrap();
        assert_eq!(report.local_shuffle, LocalShuffle::Auto);
        service.shutdown();
    }

    #[test]
    fn per_job_darts_override_matches_the_one_shot_path() {
        use crate::config::Algorithm;
        // The dart engine is selectable per job like any other run-shaping
        // option; an overridden job must reproduce the one-shot darts
        // permutation exactly, and jobs without the override must keep the
        // service-wide Gustedt default.  Darts jobs never coalesce (see
        // `queue::coalescible`), so mixing engines in one burst is safe.
        let permuter = Permuter::new(2).seed(53);
        let darts_reference = permuter
            .clone()
            .algorithm(Algorithm::darts())
            .permute((0..200u64).collect())
            .0;
        let gustedt_reference = permuter.permute((0..200u64).collect()).0;
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let opts = PermuteOptions::new().algorithm(Algorithm::darts());
        let (out, report) = handle.permute_with((0..200u64).collect(), opts).unwrap();
        assert_eq!(out, darts_reference);
        assert_eq!(report.algorithm, Algorithm::darts());
        let (out, report) = handle.permute((0..200u64).collect()).unwrap();
        assert_eq!(out, gustedt_reference);
        assert_eq!(report.algorithm, Algorithm::Gustedt);
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_queue_full_and_hands_the_payload_back() {
        // A service with one machine and a depth-1 buffer: stall the
        // machine with a fat job, fill the admission slot, then observe
        // backpressure.
        let permuter = Permuter::new(2).seed(3);
        let service = permuter.service_sized::<u64>(1, 1);
        let handle = service.handle();
        let stall = handle.submit((0..400_000u64).collect()).unwrap();
        // Saturate admission: with the machine busy, at most the depth (and
        // one refill's worth of deque) can be admitted; keep try-submitting
        // until backpressure appears.
        let mut admitted = Vec::new();
        let rejected = loop {
            match handle.try_submit((0..8u64).collect()) {
                Ok(t) => admitted.push(t),
                Err(r) => break r,
            }
        };
        assert_eq!(rejected.error, ServiceError::QueueFull);
        assert_eq!(
            rejected.data,
            (0..8).collect::<Vec<u64>>(),
            "payload intact"
        );
        // Everything admitted still completes.
        stall.wait().unwrap();
        for t in admitted {
            t.wait().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn a_tenant_quota_backpressures_the_flooder_only() {
        // Deep buffer, tight quota: the flooding tenant hits QueueFull at
        // its quota while the quiet tenant still has the whole rest of the
        // buffer.
        let permuter = Permuter::new(2).seed(23);
        let config = permuter
            .service_config()
            .machines(1)
            .queue_depth(16)
            .tenant_quota(3);
        let service: PermutationService<u64> =
            PermutationService::new(config, PermuteOptions::default());
        let flooder = service.handle();
        let victim = service.handle();
        // Stall the single machine so admission fills deterministically.
        let stall = flooder.submit((0..400_000u64).collect()).unwrap();
        let mut flooded = Vec::new();
        let rejected = loop {
            match flooder.try_submit((0..16u64).collect()) {
                Ok(t) => flooded.push(t),
                Err(r) => break r,
            }
        };
        assert_eq!(rejected.error, ServiceError::QueueFull);
        // The victim is not behind the flooder's backpressure.
        let ticket = victim.try_submit((0..16u64).collect()).unwrap();
        stall.wait().unwrap();
        ticket.wait().unwrap();
        for t in flooded {
            t.wait().unwrap();
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_failed, 0);
    }

    #[test]
    fn malformed_per_job_options_are_rejected_at_admission() {
        // Satellite of the fault-isolation story: a tenant's bad
        // prescription must be a rejected submission with the payload
        // handed back — never a dead dispatcher (which would strand the
        // queue for every other tenant).
        let permuter = Permuter::new(2).seed(19);
        let service = permuter.service_sized::<u64>(1, 4);
        let handle = service.handle();
        for bad in [vec![1u64, 1], vec![4u64, 4, 2]] {
            let opts = PermuteOptions::default().target_sizes(bad);
            let rejected = handle
                .submit_with((0..10u64).collect(), opts.clone(), Priority::Normal)
                .unwrap_err();
            assert!(matches!(rejected.error, ServiceError::InvalidJob(_)));
            assert_eq!(rejected.data, (0..10).collect::<Vec<u64>>());
            let rejected = handle
                .try_submit_with((0..10u64).collect(), opts, Priority::High)
                .unwrap_err();
            assert!(matches!(rejected.error, ServiceError::InvalidJob(_)));
        }
        // The machine never saw any of it and keeps serving.
        let (out, _) = handle.permute((0..10u64).collect()).unwrap();
        assert_eq!(out.len(), 10);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 1);
        assert_eq!(metrics.jobs_failed, 0, "rejections are not failed jobs");
    }

    #[test]
    fn shutdown_drains_accepted_jobs_and_closes_admission() {
        let permuter = Permuter::new(2).seed(13);
        let service = permuter.service_sized::<u64>(1, 16);
        let handle = service.handle();
        let tickets: Vec<_> = (0..8)
            .map(|_| handle.submit((0..500u64).collect()).unwrap())
            .collect();
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 8, "shutdown drains the queue");
        for t in tickets {
            t.wait().unwrap();
        }
        // The surviving handle is refused politely.
        let err = handle.submit((0..4u64).collect()).unwrap_err();
        assert_eq!(err.error, ServiceError::ShutDown);
        assert_eq!(err.data, (0..4).collect::<Vec<u64>>());
        assert_eq!(
            handle.permute((0..4u64).collect()).unwrap_err(),
            ServiceError::ShutDown
        );
    }

    #[test]
    fn a_panicked_job_is_contained_to_its_ticket() {
        let permuter = Permuter::new(3).seed(7);
        let reference = permuter.permute((0..120u64).collect()).0;
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let before = handle.submit((0..120u64).collect()).unwrap();
        let poisoned = handle
            .submit_with(
                (0..120u64).collect(),
                PermuteOptions::default().inject_fault(EngineFault::matrix_phase(1)),
                Priority::Normal,
            )
            .unwrap();
        let after = handle.submit((0..120u64).collect()).unwrap();
        assert_eq!(before.wait().unwrap().0, reference);
        match poisoned.wait().unwrap_err() {
            ServiceError::JobFailed(CgmError::ProcessorPanicked { proc, .. }) => {
                assert_eq!(proc, 1)
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(
            after.wait().unwrap().0,
            reference,
            "the machine recovered and the next job is clean"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 2);
        assert_eq!(metrics.jobs_failed, 1);
        assert_eq!(metrics.per_machine[0].recoveries, 1);
    }

    #[test]
    fn tenants_are_metered_separately() {
        let permuter = Permuter::new(2).seed(5);
        let service = permuter.service_sized::<u64>(2, 8);
        let alice = service.handle();
        let bob = service.handle();
        assert_ne!(alice.tenant(), bob.tenant());
        let alice_twin = alice.clone();
        assert_eq!(alice.tenant(), alice_twin.tenant(), "clones share a tenant");
        for _ in 0..3 {
            alice.permute((0..100u64).collect()).unwrap();
        }
        alice_twin.permute((0..100u64).collect()).unwrap();
        bob.permute((0..100u64).collect()).unwrap();
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 5);
        let slot = |tenant: usize| {
            metrics
                .per_tenant
                .iter()
                .find(|t| t.tenant == tenant)
                .expect("tenant has a metrics slot")
                .clone()
        };
        assert_eq!(slot(alice.tenant()).jobs_served, 4);
        assert_eq!(slot(bob.tenant()).jobs_served, 1);
        assert!(metrics.queue_wait >= slot(alice.tenant()).queue_wait);
        let total_machine_jobs: u64 = metrics.per_machine.iter().map(|m| m.jobs).sum();
        assert_eq!(total_machine_jobs, 5);
    }

    #[test]
    fn ticket_ids_are_admission_ordered() {
        let permuter = Permuter::new(2).seed(1);
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let a = handle.submit((0..10u64).collect()).unwrap();
        let b = handle.submit((0..10u64).collect()).unwrap();
        assert!(a.job_id() < b.job_id());
        assert_eq!(a.tenant(), handle.tenant());
        a.wait().unwrap();
        b.wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn deadline_jobs_complete_within_budget_and_shed_past_it() {
        let permuter = Permuter::new(2).seed(31);
        let reference = permuter.permute((0..100u64).collect()).0;
        let service = permuter.service_sized::<u64>(1, 8);
        let alice = service.handle();
        let bob = service.handle();

        // Within budget: a deadline job is just an urgent job.
        let ticket = alice
            .submit_with(
                (0..100u64).collect(),
                PermuteOptions::default(),
                Priority::Deadline(Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(ticket.wait().unwrap().0, reference);

        // Past budget: stall the single machine, then submit zero-budget
        // jobs — expired before any refill can possibly reach them.
        let stall = alice.submit((0..400_000u64).collect()).unwrap();
        let shed_alice = alice
            .submit_with(
                (0..100u64).collect(),
                PermuteOptions::default(),
                Priority::Deadline(Duration::ZERO),
            )
            .unwrap();
        let shed_bob = bob
            .submit_with(
                (0..100u64).collect(),
                PermuteOptions::default(),
                Priority::Deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(
            shed_alice.wait().unwrap_err(),
            ServiceError::DeadlineExceeded
        );
        assert_eq!(shed_bob.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        stall.wait().unwrap();

        let metrics = service.shutdown();
        assert_eq!(metrics.deadline_shed, 2);
        assert_eq!(metrics.jobs_failed, 0, "shed jobs are not failures");
        assert_eq!(metrics.jobs_served, 2);
        let shed_of = |tenant: usize| {
            metrics
                .per_tenant
                .iter()
                .find(|t| t.tenant == tenant)
                .map(|t| t.deadline_shed)
                .unwrap_or(0)
        };
        assert_eq!(shed_of(alice.tenant()), 1, "shed is metered per tenant");
        assert_eq!(shed_of(bob.tenant()), 1);
    }

    #[test]
    fn completion_set_multiplexes_service_tickets() {
        let permuter = Permuter::new(2).seed(43);
        let reference = permuter.permute((0..80u64).collect()).0;
        let service = permuter.service_sized::<u64>(2, 16);
        let handle = service.handle();
        let mut set = CompletionSet::new();
        for _ in 0..6 {
            set.insert(handle.submit((0..80u64).collect()).unwrap());
        }
        let mut resolved = 0;
        while let Some((_, outcome)) = set.wait_any() {
            assert_eq!(outcome.unwrap().0, reference);
            resolved += 1;
        }
        assert_eq!(resolved, 6);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 6);
    }

    #[test]
    fn zero_machines_or_procs_is_an_error_value() {
        let cfg = ServiceConfig::new(2).machines(0);
        assert!(matches!(
            PermutationService::<u64>::try_new(cfg, PermuteOptions::default()),
            Err(CgmError::NoProcessors)
        ));
        let cfg = ServiceConfig {
            machines: 1,
            engine: EngineConfig::new(0),
            queue_depth: 1,
            tenant_quota: usize::MAX,
            coalesce_budget: DEFAULT_COALESCE_BUDGET,
        };
        assert!(matches!(
            PermutationService::<u64>::try_new(cfg, PermuteOptions::default()),
            Err(CgmError::NoProcessors)
        ));
    }

    #[test]
    fn dropped_tickets_abandon_results_without_harm() {
        let permuter = Permuter::new(2).seed(17);
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        drop(handle.submit((0..200u64).collect()).unwrap());
        let (out, _) = handle.permute((0..200u64).collect()).unwrap();
        assert_eq!(out.len(), 200);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 2, "the abandoned job still ran");
    }
}
