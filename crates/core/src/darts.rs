//! The dart-throwing permutation engine — a compare-exchange alternative
//! to the Gustedt pipeline.
//!
//! Where Algorithm 1 builds a permutation out of local shuffles, a sampled
//! communication matrix and one all-to-all exchange, the dart engine (the
//! approach of Lamellar's `randperm` kernels) builds it by **throwing**:
//! every worker throws its item indices ("darts") at uniformly random
//! slots of a shared target array of `target_factor × n` slots.  A dart
//! that lands on a free slot sticks; a dart that bounces is re-thrown with
//! a fresh draw in the next round, against a board that keeps filling up.
//! When every dart has stuck, reading the occupied slots in slot order
//! yields the permutation — and it is *exactly* uniform:
//!
//! > Condition every dart on the slot it finally sticks in.  Each throw is
//! > uniform over all `T` slots and is accepted iff the slot is free, so
//! > the accepted throw is uniform over the free slots — independently of
//! > how many rounds the dart bounced.  Inductively the sequence of
//! > settled slots is a uniformly random arrangement of the `n` darts
//! > into the `T` slots, and discarding the empty slots (compaction)
//! > preserves uniformity over the `n!` orders.
//!
//! # Deterministic parallelism: rounds, min-id conflicts, sealing
//!
//! A naive CAS free-for-all is uniform but **not reproducible**: which of
//! two racing darts wins a slot would depend on thread interleaving.  This
//! engine makes the winner a pure function of the seed instead:
//!
//! 1. **Rounds.**  All workers advance through synchronized rounds (the
//!    machine's poison-safe barriers).  In each round every still-unplaced
//!    dart gets exactly one fresh slot draw from its worker's per-call
//!    derived stream.
//! 2. **Min-id claims.**  Within a round, racing darts are resolved *by
//!    dart id*, not by arrival order: a dart claims an empty slot with a
//!    CAS, and **displaces** a larger unsealed occupant (slot values only
//!    ever decrease within a claim phase), but bounces off a smaller one.
//! 3. **Seal + verify.**  After a barrier, each worker re-checks its
//!    tentative claims: a dart that still owns its slot is settled and the
//!    slot is sealed (high bit set), so later rounds bounce off it
//!    cheaply; a displaced dart goes back into the pending set.
//!
//! The post-round state is therefore exactly what a *sequential* process
//! throwing the round's darts in increasing id order would produce — so
//! the result is reproducible per `(seed, p, target_factor, n)` on every
//! execution substrate (one-shot machine, resident pool, service fleet,
//! threads or process transport), while the throws themselves run as a
//! lock-free scramble.  The engine runs as one fused job on the existing
//! [`CgmExecutor`], with the target array shared through an `Arc` — the
//! compute stays on the parent's worker threads on every transport.
//!
//! Unlike the Gustedt engine, darts and Gustedt do **not** agree
//! byte-for-byte for the same seed (they consume their derived streams
//! differently); each is reproducible on its own.
//!
//! # The index specialization
//!
//! The engine natively produces an **index** permutation — no payload ever
//! enters the target array.  [`crate::Permuter::sample_permutation`] and
//! [`crate::PermutationSession::sample_permutation_into`] therefore skip
//! payload handling entirely under [`crate::Algorithm::Darts`]; the payload
//! entries ([`crate::permute_vec`] and friends) run one local in-place
//! cycle-walk gather after the throws.  That inverts the Gustedt cost
//! shape: Gustedt moves the payload through the exchange (heavier items
//! cost more), darts pays one gather regardless of how the permutation
//! was made.
//!
//! ```
//! use cgp_core::{Algorithm, Permuter};
//!
//! let permuter = Permuter::new(4).seed(7).algorithm(Algorithm::darts());
//! let perm = permuter.sample_permutation(1_000);
//! let mut sorted = perm.clone();
//! sorted.sort_unstable();
//! assert_eq!(sorted, (0..1_000).collect::<Vec<u64>>());
//! // Deterministic per seed — and different from the Gustedt engine's
//! // (equally uniform) permutation under the same seed.
//! assert_eq!(perm, permuter.sample_permutation(1_000));
//! assert_ne!(perm, Permuter::new(4).seed(7).sample_permutation(1_000));
//! ```
//!
//! # Batched vs. direct index draws (measured)
//!
//! The slot draws are generated a round at a time into a reusable buffer,
//! separated from the CAS traffic.  Two generation strategies were
//! measured on the reference container (single hardware thread, 260 MB
//! LLC) over the round-shaped draw workload of a factor-2 run at
//! `n = 4 × 10⁶` (the `measure_draw_strategies` harness below, release
//! build, best of repeated runs): **direct** [`RandomExt::gen_range_u64`]
//! draws took ~107 ms against ~141 ms for **batched**
//! [`BlockRng::gen_bounded`] draws (Lemire rejection on buffered 32-bit
//! halfwords) — direct wins by ~1.3×, *despite* consuming twice the
//! generator words.  Same verdict as the bucketed-shuffle hot path of
//! PR 6: `Pcg64::next_u64` is cheap enough that the wrapper's block
//! refill, buffer traffic and per-draw bounds bookkeeping cost more than
//! the words it saves.  The engine therefore uses the **direct** path
//! (`BATCHED_DRAWS = false`); the batched generator stays behind the
//! same `fill_round_draws` seam for hosts where words are expensive.  The
//! choice is part of the determinism contract: flipping it would change
//! which (equally uniform) permutation a seed produces.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::PermuteOptions;
use crate::parallel::{PermutationReport, PermuteScratch};
use cgp_cgm::{BlockDistribution, CgmError, CgmExecutor, MachineMetrics, ProcCtx};
use cgp_rng::{BlockRng, RandomExt, RandomSource};

/// Default oversizing factor of the shared target array: `2 × n` slots.
///
/// Factor 2 keeps every round's acceptance probability at ½ or better, so
/// the pending set at least halves per round (~`log₂ n` rounds) while the
/// array stays small enough that the compaction scan does not dominate.
/// Factor 4 buys fewer rounds for twice the memory — measurable via the
/// E14 grid (`exp_darts`); on the reference box the difference is within
/// noise, so the smaller default wins.
pub const DEFAULT_TARGET_FACTOR: u32 = 2;

/// Slot sentinel: no dart has stuck here yet.
const EMPTY: u64 = u64::MAX;

/// High bit marking a slot whose dart is settled (verified a previous
/// round): later darts bounce off it without entering the min-id protocol.
const SEALED: u64 = 1 << 63;

/// Domain constant deriving the darts throw streams from the machine's
/// master seed — its own child sequence, so the draws are statistically
/// independent of the Gustedt engine's shuffle (`0x5AFE_B10C`) and matrix
/// streams under the same seed.
const DARTS_STREAM: u64 = 0xDA27_5EED;

/// Compiled-in draw strategy — see the module docs for the measurement
/// that fixed it.  Part of the determinism contract: the batched halfword
/// stream and the direct full-word stream yield different (equally
/// uniform) permutations for the same seed.
const BATCHED_DRAWS: bool = false;

/// Total slots of the target array: `n × max(target_factor, 1)`.
fn target_len(n: usize, target_factor: u32) -> usize {
    // Factor 0 would make placement impossible; clamp to the degenerate
    // (but correct) factor-1 board.
    let factor = target_factor.max(1) as usize;
    n.checked_mul(factor)
        .expect("target array size overflows usize")
}

/// Fills `out` with `count` fresh slot draws in `[0, bound)` — one per
/// pending dart, drawn *before* the claim loop so the generator runs a
/// tight buffer-to-buffer loop and the CAS traffic runs against an
/// in-cache index list.
fn fill_round_draws<R: RandomSource + ?Sized>(
    rng: &mut R,
    bound: u64,
    count: usize,
    out: &mut Vec<u64>,
) {
    if BATCHED_DRAWS {
        fill_round_draws_batched(rng, bound, count, out);
    } else {
        fill_round_draws_direct(rng, bound, count, out);
    }
}

/// Batched draws through [`BlockRng::gen_bounded`]: ~half a generator word
/// per draw while `bound` fits 32 bits.  The refill block is sized to the
/// round (capped at the L1-resident default), so late, tiny rounds don't
/// pre-draw words they will never consume; the sizing is a deterministic
/// function of `count`, so seeded replay is unaffected.  Measured ~1.3×
/// slower than the direct path on the reference box (see the module docs)
/// — kept behind the [`fill_round_draws`] seam as the word-frugal
/// alternative and the baseline any re-measurement runs against.
fn fill_round_draws_batched<R: RandomSource + ?Sized>(
    rng: &mut R,
    bound: u64,
    count: usize,
    out: &mut Vec<u64>,
) {
    out.clear();
    out.reserve(count);
    let words = (count / 2 + 1).min(cgp_rng::batch::DEFAULT_BLOCK_WORDS);
    let mut block = BlockRng::with_block(rng, words);
    for _ in 0..count {
        out.push(block.gen_bounded(bound));
    }
}

/// Direct draws through [`RandomExt::gen_range_u64`]: one full generator
/// word per draw, no wrapper.  The measured winner on this box (see the
/// module docs) — `Pcg64` words are cheaper than the batching wrapper's
/// buffer management.
fn fill_round_draws_direct<R: RandomSource + ?Sized>(
    rng: &mut R,
    bound: u64,
    count: usize,
    out: &mut Vec<u64>,
) {
    out.clear();
    out.reserve(count);
    for _ in 0..count {
        out.push(rng.gen_range_u64(bound));
    }
}

/// The serial single-thread fallback: the same shrinking-rounds process,
/// minus the atomics (a plain slot array, immediate placement).
///
/// Because a single thread processes its round's darts in increasing id
/// order, "place if free, else bounce" is exactly the parallel engine's
/// min-id protocol at `p = 1` — the engine runs this code inside its job
/// closure on single-processor machines, and the outputs agree draw for
/// draw given the same stream.
///
/// ```
/// use cgp_core::darts::serial_index_permutation;
/// use cgp_rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(3);
/// let perm = serial_index_permutation(&mut rng, 100, 2);
/// let mut sorted = perm.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
/// ```
pub fn serial_index_permutation<R: RandomSource + ?Sized>(
    rng: &mut R,
    n: usize,
    target_factor: u32,
) -> Vec<u64> {
    serial_rounds(rng, n, target_len(n, target_factor))
}

/// Core of the serial fallback over an explicit board size `t ≥ n`.
fn serial_rounds<R: RandomSource + ?Sized>(rng: &mut R, n: usize, t: usize) -> Vec<u64> {
    debug_assert!(t >= n);
    let mut slots: Vec<u64> = vec![EMPTY; t];
    let mut pending: Vec<u64> = (0..n as u64).collect();
    let mut bounced: Vec<u64> = Vec::new();
    let mut draws: Vec<u64> = Vec::new();
    while !pending.is_empty() {
        fill_round_draws(rng, t as u64, pending.len(), &mut draws);
        bounced.clear();
        for (&dart, &slot) in pending.iter().zip(&draws) {
            let slot = &mut slots[slot as usize];
            if *slot == EMPTY {
                *slot = dart;
            } else {
                bounced.push(dart);
            }
        }
        std::mem::swap(&mut pending, &mut bounced);
    }
    slots.retain(|&s| s != EMPTY);
    slots
}

/// One worker's part of the parallel throw: rounds of claim / verify over
/// the shared board, then compaction of its own slot chunk.  See the
/// module docs for why the result is independent of thread interleaving.
///
/// All atomics are `Relaxed`: the only cross-thread data are the slot
/// values themselves (self-contained `u64`s — nothing is published
/// *through* them), and the phase ordering that correctness does need
/// (claims before verifies, verifies before the next round's claims and
/// the final compaction) comes from the machine barriers, which carry the
/// happens-before edges.
fn darts_worker<T: Send + 'static>(
    ctx: &mut ProcCtx<T>,
    n: usize,
    target: &[AtomicU64],
    remaining: &AtomicU64,
) -> (Vec<u64>, Duration) {
    let started = Instant::now();
    let id = ctx.id();
    let p = ctx.procs();
    let t = target.len() as u64;
    let mut rng = ctx.seeds().child_sequence(DARTS_STREAM).proc_stream(id);
    let mut pending: Vec<u64> = BlockDistribution::even(n as u64, p).range(id).collect();
    let mut next_pending: Vec<u64> = Vec::with_capacity(pending.len());
    let mut tentative: Vec<(u64, u64)> = Vec::with_capacity(pending.len());
    let mut draws: Vec<u64> = Vec::new();
    loop {
        // Round gate: claims must not start before every peer finished the
        // previous verify phase, and every worker must read the same
        // settled count (nothing writes `remaining` between this barrier
        // and the claim phase, so the loop-exit decision is global).
        ctx.comm_mut().barrier();
        if remaining.load(Relaxed) == 0 {
            break;
        }

        // Claim phase: one fresh draw per pending dart, then the min-id
        // CAS protocol.  Slot values only ever decrease within a claim
        // phase, so the final occupant is the minimum claimant no matter
        // how the threads interleave.
        fill_round_draws(&mut rng, t, pending.len(), &mut draws);
        tentative.clear();
        next_pending.clear();
        for (&dart, &slot) in pending.iter().zip(&draws) {
            let slot_ref = &target[slot as usize];
            let mut cur = slot_ref.load(Relaxed);
            loop {
                if cur != EMPTY && (cur & SEALED != 0 || cur < dart) {
                    // Settled in an earlier round, or a smaller id holds
                    // it: bounced — re-drawn next round.
                    next_pending.push(dart);
                    break;
                }
                // Empty, or a larger unsealed occupant to displace.
                match slot_ref.compare_exchange_weak(cur, dart, Relaxed, Relaxed) {
                    Ok(_) => {
                        tentative.push((dart, slot));
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }

        ctx.comm_mut().barrier();

        // Verify phase: a tentative claim settled iff it survived every
        // displacement.  Sealing is safe here: the only writers of a slot
        // in this phase are the darts that tentatively own it, and at most
        // one of them still matches the stored value.
        for &(dart, slot) in &tentative {
            let slot_ref = &target[slot as usize];
            if slot_ref.load(Relaxed) == dart {
                slot_ref.store(dart | SEALED, Relaxed);
            } else {
                next_pending.push(dart);
            }
        }
        let settled = (pending.len() - next_pending.len()) as u64;
        if settled > 0 {
            remaining.fetch_sub(settled, Relaxed);
        }
        // Whether a losing dart bounced immediately or was displaced after
        // a tentative claim depends on interleaving, so `next_pending` is
        // only deterministic as a *set*; sorting restores the
        // deterministic dart → draw pairing for the next round.
        next_pending.sort_unstable();
        std::mem::swap(&mut pending, &mut next_pending);
    }

    // Compaction: every slot is now EMPTY or sealed (published by the
    // loop-exit barrier); each worker reads its own chunk in slot order
    // and the engine concatenates the chunks by worker id.
    let chunk: Vec<u64> = BlockDistribution::even(t, p)
        .range(id)
        .filter_map(|s| {
            let v = target[s as usize].load(Relaxed);
            (v != EMPTY).then_some(v & !SEALED)
        })
        .collect();
    (chunk, started.elapsed())
}

/// What one darts run hands back besides the permutation itself.
pub(crate) struct DartsRun {
    /// The machine metrics of the fused job (barrier counts; the board is
    /// shared memory, so no plane words move).
    pub(crate) metrics: MachineMetrics,
    /// Maximum over workers of the in-run throw + compaction time.
    pub(crate) throw_elapsed: Duration,
    /// Wall-clock of the whole run, caller to caller.
    pub(crate) total_elapsed: Duration,
}

/// Runs the dart engine on `exec` and writes the index permutation of
/// `0..n` into `out` (cleared first; capacity reused across calls) — the
/// index specialization behind [`crate::Permuter::sample_permutation`] and
/// the payload entries.
///
/// Reproducible per `(seed, p, target_factor, n)`: the throw streams are
/// derived from the machine's master seed per call, never from executor
/// state, so one-shot machines, resident pools and fleet machines with the
/// same configuration produce the identical permutation.
pub(crate) fn darts_index_into<T, E>(
    exec: &mut E,
    n: usize,
    target_factor: u32,
    out: &mut Vec<u64>,
) -> Result<DartsRun, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    out.clear();
    // The sealed-bit encoding needs ids below the high bit, with headroom
    // so `id | SEALED` can never collide with the EMPTY sentinel.
    assert!(
        (n as u64) < (1 << 62),
        "the dart engine supports at most 2^62 items"
    );
    let run_started = Instant::now();
    if n == 0 {
        return Ok(DartsRun {
            metrics: MachineMetrics {
                per_proc: Vec::new(),
                matrix_plane: Vec::new(),
                elapsed: Duration::ZERO,
            },
            throw_elapsed: Duration::ZERO,
            total_elapsed: run_started.elapsed(),
        });
    }
    let p = exec.procs();
    let t = target_len(n, target_factor);
    let outcome = if p == 1 {
        // Serial fallback: same rounds, no atomics, no barriers — still
        // run as a job so sessions keep their zero-spawn property and the
        // run is metered like any other.
        exec.try_run_job(move |ctx: &mut ProcCtx<T>| {
            let started = Instant::now();
            let mut rng = ctx
                .seeds()
                .child_sequence(DARTS_STREAM)
                .proc_stream(ctx.id());
            (serial_rounds(&mut rng, n, t), started.elapsed())
        })?
    } else {
        let target: Arc<Vec<AtomicU64>> = Arc::new((0..t).map(|_| AtomicU64::new(EMPTY)).collect());
        let remaining = Arc::new(AtomicU64::new(n as u64));
        exec.try_run_job(move |ctx: &mut ProcCtx<T>| darts_worker(ctx, n, &target, &remaining))?
    };
    let (results, metrics) = outcome.into_parts();
    let total_elapsed = run_started.elapsed();
    out.reserve(n);
    let mut throw_elapsed = Duration::ZERO;
    for (chunk, elapsed) in results {
        out.extend_from_slice(&chunk);
        throw_elapsed = throw_elapsed.max(elapsed);
    }
    debug_assert_eq!(out.len(), n, "every dart settles exactly once");
    Ok(DartsRun {
        metrics,
        throw_elapsed,
        total_elapsed,
    })
}

/// Applies an index permutation to `data` **in place** by walking its
/// cycles (`data[i] ← old data[perm[i]]`) — the darts payload gather.
/// `O(n)` swaps, no side buffer of `T`; the `visited` marks are recycled
/// through the scratch across calls.  `perm` must be a permutation of
/// `0..n` (guaranteed by the engine's construction; checked in debug).
fn apply_index_permutation_in_place<T>(perm: &[u64], data: &mut [T], visited: &mut Vec<bool>) {
    debug_assert_eq!(perm.len(), data.len());
    debug_assert!(is_index_permutation(perm));
    visited.clear();
    visited.resize(perm.len(), false);
    for start in 0..perm.len() {
        if visited[start] {
            continue;
        }
        let mut i = start;
        loop {
            visited[i] = true;
            let next = perm[i] as usize;
            if next == start {
                break;
            }
            data.swap(i, next);
            i = next;
        }
    }
}

fn is_index_permutation(perm: &[u64]) -> bool {
    let mut seen = vec![false; perm.len()];
    perm.iter().all(|&x| {
        let i = x as usize;
        i < seen.len() && !std::mem::replace(&mut seen[i], true)
    })
}

/// The darts counterpart of the fused engine entry: throws an index
/// permutation on `exec`, then gathers `data` through it in place.  The
/// index buffer and the cycle-walk marks are recycled through `scratch`
/// across calls, so a warm steady-state call allocates nothing per item.
///
/// Target-size prescriptions are validated for parity with the Gustedt
/// engine, but the *flat* result is independent of them (the blocks API
/// re-splits the flat result by the prescription).  The chaos-testing
/// fault hook never fires here — its phases belong to the Gustedt
/// pipeline.
pub(crate) fn try_darts_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut [T],
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
    target_factor: u32,
) -> Result<PermutationReport, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    options.validate_target_sizes(exec.procs(), data.len() as u64);
    let mut indices = std::mem::take(&mut scratch.indices);
    let run = darts_index_into(exec, data.len(), target_factor, &mut indices)?;
    let gather_started = Instant::now();
    apply_index_permutation_in_place(&indices, data, &mut scratch.visited);
    let gather = gather_started.elapsed();
    scratch.indices = indices;
    Ok(darts_report(options, run, gather))
}

/// Assembles a [`PermutationReport`] for a darts run.  The Gustedt phase
/// fields read as empty — no matrix is sampled and no local shuffle runs;
/// the throw + compaction span is reported as the exchange phase (it is
/// the engine's data phase), and the payload gather counts only toward
/// the total.
pub(crate) fn darts_report(
    options: &PermuteOptions,
    run: DartsRun,
    gather: Duration,
) -> PermutationReport {
    let MachineMetrics {
        per_proc,
        matrix_plane,
        ..
    } = run.metrics;
    PermutationReport {
        backend: options.backend,
        algorithm: options.algorithm,
        local_shuffle: options.local_shuffle,
        matrix_elapsed: Duration::ZERO,
        exchange_elapsed: run.throw_elapsed,
        shuffle_elapsed: Duration::ZERO,
        matrix_metrics: MachineMetrics {
            per_proc: matrix_plane,
            matrix_plane: Vec::new(),
            elapsed: Duration::ZERO,
        },
        exchange_metrics: MachineMetrics {
            per_proc,
            matrix_plane: Vec::new(),
            elapsed: run.throw_elapsed,
        },
        matrix: None,
        total_elapsed: run.total_elapsed + gather,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::{CountingRng, Pcg64, SeedSequence};

    fn assert_is_permutation(perm: &[u64], n: usize) {
        assert_eq!(perm.len(), n);
        assert!(is_index_permutation(perm), "not a permutation: {perm:?}");
    }

    #[test]
    fn serial_produces_permutations_across_factors() {
        for factor in [1, 2, 4, 8] {
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let mut rng = Pcg64::seed_from_u64(n as u64);
                let perm = serial_index_permutation(&mut rng, n, factor);
                assert_is_permutation(&perm, n);
            }
        }
    }

    #[test]
    fn serial_is_deterministic_per_stream() {
        let run = || {
            let mut rng = Pcg64::seed_from_u64(11);
            serial_index_permutation(&mut rng, 500, 2)
        };
        assert_eq!(run(), run());
        let mut other = Pcg64::seed_from_u64(12);
        assert_ne!(run(), serial_index_permutation(&mut other, 500, 2));
    }

    #[test]
    fn zero_factor_clamps_to_one() {
        let mut rng = Pcg64::seed_from_u64(5);
        let clamped = serial_index_permutation(&mut rng, 40, 0);
        let mut rng = Pcg64::seed_from_u64(5);
        let one = serial_index_permutation(&mut rng, 40, 1);
        assert_eq!(clamped, one);
        assert_is_permutation(&clamped, 40);
    }

    #[test]
    fn both_draw_strategies_fill_in_range_and_deterministically() {
        // The engine compiles one of the two in (see BATCHED_DRAWS); this
        // pins down that either would be a sound draw source.
        for batched in [false, true] {
            let fill = if batched {
                fill_round_draws_batched::<Pcg64>
            } else {
                fill_round_draws_direct::<Pcg64>
            };
            let draw = |seed| {
                let mut rng = Pcg64::seed_from_u64(seed);
                let mut out = Vec::new();
                fill(&mut rng, 1000, 5000, &mut out);
                out
            };
            let a = draw(3);
            assert_eq!(a.len(), 5000);
            assert!(a.iter().all(|&x| x < 1000));
            assert_eq!(a, draw(3), "batched={batched} not deterministic");
            assert_ne!(a, draw(4));
        }
    }

    #[test]
    fn batched_draws_halve_the_word_budget() {
        // The point of wiring BlockRng in: ~half a generator word per
        // draw for 32-bit bounds, vs one word each for the direct path.
        let count = 10_000usize;
        let mut counted = CountingRng::new(Pcg64::seed_from_u64(7));
        let mut out = Vec::new();
        fill_round_draws_batched(&mut counted, 1 << 20, count, &mut out);
        assert!(
            counted.count() <= count as u64 / 2 + cgp_rng::batch::DEFAULT_BLOCK_WORDS as u64 + 16
        );

        let mut counted = CountingRng::new(Pcg64::seed_from_u64(7));
        fill_round_draws_direct(&mut counted, 1 << 20, count, &mut out);
        assert!(counted.count() >= count as u64);
    }

    #[test]
    fn serial_word_budget_is_linear() {
        // O(m) random words per processor (the Theorem 1 budget shape):
        // with factor 2 the pending set at least roughly halves per round,
        // so the total draw count is a small multiple of n.
        let n = 50_000usize;
        let mut counted = CountingRng::new(Pcg64::seed_from_u64(21));
        let perm = serial_index_permutation(&mut counted, n, 2);
        assert_is_permutation(&perm, n);
        assert!(
            counted.count() < 3 * n as u64,
            "{} words for {n} darts",
            counted.count()
        );
    }

    #[test]
    fn apply_in_place_matches_apply_permutation() {
        let mut rng = Pcg64::seed_from_u64(9);
        let perm = serial_index_permutation(&mut rng, 257, 2);
        let data: Vec<u64> = (1000..1257).collect();
        let expected = crate::apply_permutation(&perm, data.clone());
        let mut in_place = data;
        let mut visited = Vec::new();
        apply_index_permutation_in_place(&perm, &mut in_place, &mut visited);
        assert_eq!(in_place, expected);
    }

    #[test]
    fn apply_in_place_handles_degenerate_shapes() {
        let mut visited = Vec::new();
        let mut empty: Vec<u8> = Vec::new();
        apply_index_permutation_in_place(&[], &mut empty, &mut visited);
        let mut one = vec![42u8];
        apply_index_permutation_in_place(&[0], &mut one, &mut visited);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn engine_p1_matches_the_serial_fallback_stream_for_stream() {
        // The parallel engine at p = 1 runs the serial code on the derived
        // worker stream; reproducing that stream by hand must reproduce
        // the permutation.
        use cgp_cgm::{CgmConfig, CgmMachine};
        let seed = 77u64;
        let mut machine = CgmMachine::new(CgmConfig::new(1).with_seed(seed));
        let mut out = Vec::new();
        darts_index_into::<u64, _>(&mut machine, 300, 2, &mut out).unwrap();
        let mut stream = SeedSequence::new(seed)
            .child_sequence(DARTS_STREAM)
            .proc_stream(0);
        assert_eq!(out, serial_index_permutation(&mut stream, 300, 2));
    }

    #[test]
    fn parallel_engine_produces_permutations_and_is_substrate_deterministic() {
        use cgp_cgm::{CgmConfig, CgmMachine, ResidentCgm};
        for p in [2usize, 3, 5] {
            for n in [0usize, 1, 2, 50, 1001] {
                let config = CgmConfig::new(p).with_seed(n as u64 + p as u64);
                let mut machine = CgmMachine::new(config);
                let mut one_shot = Vec::new();
                darts_index_into::<u64, _>(&mut machine, n, 2, &mut one_shot).unwrap();
                assert_is_permutation(&one_shot, n);

                let mut pool: ResidentCgm<u64> = ResidentCgm::new(config);
                let mut resident = Vec::new();
                darts_index_into(&mut pool, n, 2, &mut resident).unwrap();
                assert_eq!(one_shot, resident, "p={p} n={n} substrate divergence");
            }
        }
    }

    #[test]
    fn output_buffer_capacity_is_reused_across_calls() {
        use cgp_cgm::{CgmConfig, ResidentCgm};
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3).with_seed(2));
        let mut out = Vec::new();
        darts_index_into(&mut pool, 1000, 2, &mut out).unwrap();
        let cap = out.capacity();
        let first = out.clone();
        darts_index_into(&mut pool, 1000, 2, &mut out).unwrap();
        assert_eq!(out.capacity(), cap, "index buffer must be recycled");
        assert_eq!(out, first);
    }
}

#[cfg(test)]
mod draw_measure {
    use super::*;
    use cgp_rng::Pcg64;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn measure_draw_strategies() {
        // Round-shaped workload: the shrinking pending sets of a factor-2
        // run at n = 4M (bound = 8M slots).
        let n = 4_000_000u64;
        let bound = 2 * n;
        let counts: Vec<usize> =
            std::iter::successors(Some(n as usize), |&c| (c > 1).then_some(c / 2)).collect();
        for _ in 0..2 {
            for (name, f) in [
                (
                    "direct",
                    fill_round_draws_direct::<Pcg64> as fn(&mut Pcg64, u64, usize, &mut Vec<u64>),
                ),
                ("batched", fill_round_draws_batched::<Pcg64>),
            ] {
                let mut rng = Pcg64::seed_from_u64(1);
                let mut out = Vec::new();
                let started = Instant::now();
                for _ in 0..5 {
                    for &c in &counts {
                        f(&mut rng, bound, c, &mut out);
                        std::hint::black_box(&out);
                    }
                }
                println!("{name}: {:?}", started.elapsed());
            }
        }
    }
}
