//! Options controlling the parallel permutation.

use crate::cache_aware::LocalShuffle;
use crate::darts::DEFAULT_TARGET_FACTOR;
use cgp_cgm::{CgmConfig, CgmError, TransportKind};

/// Which permutation algorithm generates the permutation.
///
/// The crate ships two algorithmically different engines behind one API:
///
/// * [`Algorithm::Gustedt`] — the paper's Algorithm 1: local shuffle,
///   communication-matrix sampling, one all-to-all exchange, re-shuffle
///   (see the [`crate::parallel`] module docs).  Work-optimal, perfectly
///   balanced, `O(m)` memory per processor; the payload moves through the
///   exchange.
/// * [`Algorithm::Darts`] — the dart-throwing engine: every worker throws
///   its item indices at random slots of a shared `target_factor × n`
///   array with atomic compare-exchange, retries the bounced darts in
///   shrinking rounds, then compacts the occupied slots (see the
///   [`crate::darts`] module docs).  Natively produces an *index*
///   permutation; payloads are rearranged by one local gather.
///
/// Both engines are exactly uniform and deterministic per seed; they do
/// **not** produce byte-identical permutations for the same seed (they
/// consume their derived random streams differently).  See the README's
/// "Choosing a permutation algorithm" table for when each wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 1 of the paper (the default).
    #[default]
    Gustedt,
    /// Compare-exchange dart throwing into an oversized target array of
    /// `target_factor × n` slots.  Larger factors mean fewer collision
    /// rounds but more memory and a longer compaction scan; `target_factor`
    /// is clamped to at least 1 (`= 1` degenerates to coupon-collector
    /// retry behaviour — correct, but slow).
    Darts {
        /// Oversizing factor of the shared target array.
        target_factor: u32,
    },
}

impl Algorithm {
    /// The dart-throwing engine with the default oversizing factor
    /// ([`DEFAULT_TARGET_FACTOR`]).
    pub fn darts() -> Self {
        Algorithm::Darts {
            target_factor: DEFAULT_TARGET_FACTOR,
        }
    }

    /// Whether this is the dart-throwing engine.
    pub fn is_darts(&self) -> bool {
        matches!(self, Algorithm::Darts { .. })
    }

    /// A short stable name used in benchmark/report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Gustedt => "gustedt",
            Algorithm::Darts { .. } => "darts",
        }
    }
}

/// Which of the paper's matrix-sampling algorithms supplies the communication
/// matrix of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// Algorithm 3: sampled sequentially (on the "front-end"), `O(p·p')`
    /// work.  This is what the paper's own experiments used ("sequential
    /// sampling of the matrix, only").
    #[default]
    Sequential,
    /// Algorithm 4: the recursive halving formulation (same cost, different
    /// constant factors).
    Recursive,
    /// Algorithm 5: parallel sampling with a `log p` factor per processor.
    ParallelLog,
    /// Algorithm 6: cost-optimal parallel sampling, `Θ(p)` per processor
    /// (Theorem 2).
    ParallelOptimal,
}

impl MatrixBackend {
    /// All backends, in the order they appear in the paper — handy for
    /// benchmarks and exhaustive tests.
    pub const ALL: [MatrixBackend; 4] = [
        MatrixBackend::Sequential,
        MatrixBackend::Recursive,
        MatrixBackend::ParallelLog,
        MatrixBackend::ParallelOptimal,
    ];

    /// A short stable name used in benchmark/report tables.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixBackend::Sequential => "alg3-sequential",
            MatrixBackend::Recursive => "alg4-recursive",
            MatrixBackend::ParallelLog => "alg5-parallel-log",
            MatrixBackend::ParallelOptimal => "alg6-parallel-optimal",
        }
    }
}

/// Where in the fused pipeline an [`EngineFault`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Panic at the start of the matrix phase, while peers are inside (or
    /// entering) the word-plane sampling rounds.
    Matrix,
    /// Panic at the start of superstep 2, before the data exchange — peers
    /// end up blocked in the all-to-all and must be woken by the abort
    /// protocol.
    Exchange,
}

/// A chaos-testing hook: makes one virtual processor panic deliberately at
/// a chosen point of the fused pipeline, so fault-containment machinery
/// (pool recovery, per-ticket job isolation in a
/// [`crate::PermutationService`]) can be exercised through the exact code
/// paths a real bug would take.
///
/// A fault whose `proc` is outside the machine (`proc >= p`) never fires —
/// the job completes normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// The virtual processor that will panic.
    pub proc: usize,
    /// Where in the pipeline it panics.
    pub phase: FaultPhase,
}

impl EngineFault {
    /// A fault that panics on virtual processor `proc` mid-matrix-phase.
    pub fn matrix_phase(proc: usize) -> Self {
        EngineFault {
            proc,
            phase: FaultPhase::Matrix,
        }
    }

    /// A fault that panics on virtual processor `proc` entering the data
    /// exchange.
    pub fn exchange_phase(proc: usize) -> Self {
        EngineFault {
            proc,
            phase: FaultPhase::Exchange,
        }
    }
}

/// The engine-selection core shared by every front door of the crate: which
/// permutation a seed produces (`seed`, `algorithm`, `local_shuffle`) and
/// what machine it runs on (`procs`, `transport`).
///
/// [`crate::Permuter`], [`crate::PermutationSession`],
/// [`crate::service::ServiceConfig`] and per-job [`PermuteOptions`] used to
/// hand-copy these knobs with their own setters, which let the copies
/// drift.  They now all embed — or, for per-job options, derive from — one
/// `EngineConfig`, so a configuration built once can be pushed through any
/// surface:
///
/// ```
/// use cgp_core::{Algorithm, EngineConfig, Permuter};
/// use cgp_core::service::ServiceConfig;
///
/// let engine = EngineConfig::new(4).seed(42).algorithm(Algorithm::darts());
/// let one_shot = Permuter::from_engine(engine);       // one-shot / session
/// let fleet = ServiceConfig::from_engine(engine);     // resident service
/// assert_eq!(one_shot.engine(), fleet.engine);
/// ```
///
/// Two deliberate asymmetries:
///
/// * The matrix backend and `keep_matrix` stay *outside* the engine config:
///   they change cost and diagnostics, never which permutation a seed
///   produces, so they remain per-surface options.
/// * [`PermuteOptions`] derives only the per-job half
///   ([`EngineConfig::options`]) — a job carries no seed, processor count
///   or transport of its own, which is what keeps a submitted job from
///   silently disagreeing with the resident fleet it runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of virtual processors per machine.
    pub procs: usize,
    /// Master seed; every derived random stream follows from it.
    pub seed: u64,
    /// Which permutation engine generates the permutation.
    pub algorithm: Algorithm,
    /// Which engine runs the local (per-processor) shuffles.
    pub local_shuffle: LocalShuffle,
    /// Transport substrate the machine fabric is opened on.  Never changes
    /// the permutation a seed produces, only where the mailboxes live.
    pub transport: TransportKind,
}

impl EngineConfig {
    /// An engine over `procs` virtual processors with seed `0` and every
    /// other knob at its default.
    pub fn new(procs: usize) -> Self {
        EngineConfig {
            procs,
            seed: 0,
            algorithm: Algorithm::Gustedt,
            local_shuffle: LocalShuffle::Auto,
            transport: TransportKind::Threads,
        }
    }

    /// Sets the number of virtual processors.
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = procs;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the permutation engine (see [`Algorithm`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the engine for the local shuffles (see [`LocalShuffle`]).
    pub fn local_shuffle(mut self, engine: LocalShuffle) -> Self {
        self.local_shuffle = engine;
        self
    }

    /// Selects the transport substrate (see [`TransportKind`]).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// The per-job half of this engine: [`PermuteOptions`] carrying the
    /// algorithm and local-shuffle choice (and nothing machine-shaped —
    /// see the type docs for why).
    pub fn options(&self) -> PermuteOptions {
        PermuteOptions::new()
            .algorithm(self.algorithm)
            .local_shuffle(self.local_shuffle)
    }

    /// The machine half of this engine: a [`CgmConfig`] carrying the
    /// processor count, seed and transport, or [`CgmError::NoProcessors`]
    /// when `procs == 0`.
    pub fn try_cgm_config(&self) -> Result<CgmConfig, CgmError> {
        Ok(CgmConfig::try_new(self.procs)?
            .with_seed(self.seed)
            .with_transport(self.transport))
    }

    /// Panicking form of [`EngineConfig::try_cgm_config`], for surfaces
    /// whose processor count was validated at construction.
    pub fn cgm_config(&self) -> CgmConfig {
        self.try_cgm_config().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Options for [`crate::permute_blocks`] / [`crate::permute_vec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermuteOptions {
    /// Which permutation algorithm generates the permutation (Gustedt's
    /// Algorithm 1 by default, or the dart-throwing engine).
    pub algorithm: Algorithm,
    /// Which matrix-sampling algorithm to use.  Only meaningful for
    /// [`Algorithm::Gustedt`]; the darts engine samples no matrix.
    pub backend: MatrixBackend,
    /// Which engine runs the local (per-processor) shuffles — the
    /// superstep-1 and superstep-3 passes of Algorithm 1.  Every engine is
    /// exactly uniform; see [`LocalShuffle`] for the byte-compatibility
    /// caveat when changing it.
    pub local_shuffle: LocalShuffle,
    /// Whether to keep a copy of the sampled communication matrix in the
    /// report (costs `O(p·p')` memory; useful for tests and diagnostics).
    pub keep_matrix: bool,
    /// Target block sizes `m'_j`.  `None` means "same as the source blocks".
    pub target_sizes: Option<Vec<u64>>,
    /// Chaos-testing hook: deliberately panic one virtual processor at a
    /// chosen pipeline point (see [`EngineFault`]).  `None` — the default —
    /// costs one branch per processor per job.
    pub fault: Option<EngineFault>,
}

impl Default for PermuteOptions {
    fn default() -> Self {
        PermuteOptions {
            algorithm: Algorithm::Gustedt,
            backend: MatrixBackend::Sequential,
            local_shuffle: LocalShuffle::Auto,
            keep_matrix: false,
            target_sizes: None,
            fault: None,
        }
    }
}

impl PermuteOptions {
    /// Default options — the start of the one builder path every call site
    /// (the `Permuter`, sessions, the service, per-job overrides) goes
    /// through; chain the setters below instead of mutating fields.
    pub fn new() -> Self {
        PermuteOptions::default()
    }

    /// Options with everything default except the matrix backend.
    pub fn with_backend(backend: MatrixBackend) -> Self {
        PermuteOptions::new().backend(backend)
    }

    /// Options carrying the per-job half of an [`EngineConfig`] (its
    /// algorithm and local-shuffle choice).  Alias of
    /// [`EngineConfig::options`], for call sites that start from the
    /// options side.
    pub fn from_engine(engine: &EngineConfig) -> Self {
        engine.options()
    }

    /// Sets the matrix-sampling backend.
    pub fn backend(mut self, backend: MatrixBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the permutation algorithm (see [`Algorithm`]).  Changing the
    /// algorithm changes which (equally uniform) permutation a seed
    /// produces.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the engine for the local shuffles (see [`LocalShuffle`]).
    pub fn local_shuffle(mut self, engine: LocalShuffle) -> Self {
        self.local_shuffle = engine;
        self
    }

    /// Requests the sampled communication matrix to be kept in the report.
    pub fn keep_matrix(mut self) -> Self {
        self.keep_matrix = true;
        self
    }

    /// Sets explicit target block sizes `m'_j`.
    pub fn target_sizes(mut self, sizes: Vec<u64>) -> Self {
        self.target_sizes = Some(sizes);
        self
    }

    /// Arms the chaos-testing hook: the job will panic on `fault.proc` at
    /// `fault.phase` (see [`EngineFault`]).
    pub fn inject_fault(mut self, fault: EngineFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Non-panicking form of [`Self::validate_target_sizes`]: checks any
    /// prescribed target sizes against the processor count `p` and the
    /// total item count `n`, reporting misuse as a descriptive message.
    /// This is the validation a multi-tenant service runs at admission, so
    /// one tenant's bad prescription is a rejected submission — never a
    /// dead dispatcher.
    pub fn check_target_sizes(&self, p: usize, n: u64) -> Result<(), String> {
        if let Some(sizes) = &self.target_sizes {
            let total: u64 = sizes.iter().sum();
            if total != n {
                return Err(format!(
                    "target block sizes must sum to the number of items \
                     (the {} prescribed sizes sum to {total}, but there are {n} items)",
                    sizes.len()
                ));
            }
            if sizes.len() != p {
                return Err(format!(
                    "permute_blocks requires exactly one target block per processor \
                     (p = {p}), but {} target sizes were prescribed; rectangular \
                     redistributions are not supported — re-split the data with \
                     BlockDistribution or sample the matrix with cgp-matrix directly",
                    sizes.len()
                ));
            }
        }
        Ok(())
    }

    /// Validation half of [`Self::resolve_target_sizes`], allocation-free:
    /// checks any prescribed target sizes against the processor count `p`
    /// and the total item count `n`, so misuse fails with a clear message on
    /// the calling thread — never as a cross-thread panic out of a worker.
    ///
    /// # Panics
    /// Panics if the prescribed sizes do not sum to `n`, or if their count
    /// differs from `p` (rectangular redistributions are not supported by
    /// `permute_blocks`; resample with `cgp-matrix` directly or re-split
    /// with `BlockDistribution` instead).  [`Self::check_target_sizes`] is
    /// the value-returning form.
    pub fn validate_target_sizes(&self, p: usize, n: u64) {
        if let Err(message) = self.check_target_sizes(p, n) {
            panic!("{message}");
        }
    }

    /// Resolves the effective target sizes for a machine of `p` processors
    /// holding blocks of `source_sizes`, validating via
    /// [`Self::validate_target_sizes`] first.
    pub fn resolve_target_sizes(&self, p: usize, source_sizes: &[u64]) -> Vec<u64> {
        self.validate_target_sizes(p, source_sizes.iter().sum());
        match &self.target_sizes {
            Some(sizes) => sizes.clone(),
            None => source_sizes.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_sequential() {
        assert_eq!(MatrixBackend::default(), MatrixBackend::Sequential);
        assert_eq!(PermuteOptions::default().backend, MatrixBackend::Sequential);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            MatrixBackend::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), MatrixBackend::ALL.len());
    }

    #[test]
    fn resolve_defaults_to_source_sizes() {
        let opts = PermuteOptions::default();
        assert_eq!(opts.resolve_target_sizes(3, &[4, 0, 2]), vec![4, 0, 2]);
        let opts = opts.target_sizes(vec![1, 2, 3]);
        assert_eq!(opts.resolve_target_sizes(3, &[4, 0, 2]), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "must sum to the number of items")]
    fn resolve_rejects_wrong_total() {
        PermuteOptions::default()
            .target_sizes(vec![1, 1])
            .resolve_target_sizes(2, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "one target block per processor")]
    fn resolve_rejects_rectangular_prescription() {
        PermuteOptions::default()
            .target_sizes(vec![1, 1, 1])
            .resolve_target_sizes(2, &[2, 1]);
    }

    #[test]
    fn builder_style_options() {
        let opts = PermuteOptions::new()
            .backend(MatrixBackend::ParallelOptimal)
            .local_shuffle(LocalShuffle::Bucketed { bucket_items: 64 })
            .keep_matrix()
            .target_sizes(vec![3, 4, 5]);
        assert_eq!(opts.backend, MatrixBackend::ParallelOptimal);
        assert_eq!(
            opts.local_shuffle,
            LocalShuffle::Bucketed { bucket_items: 64 }
        );
        assert!(opts.keep_matrix);
        assert_eq!(opts.target_sizes, Some(vec![3, 4, 5]));
        assert_eq!(
            PermuteOptions::with_backend(MatrixBackend::ParallelOptimal),
            PermuteOptions::new().backend(MatrixBackend::ParallelOptimal)
        );
    }

    #[test]
    fn local_shuffle_defaults_to_auto() {
        assert_eq!(PermuteOptions::default().local_shuffle, LocalShuffle::Auto);
        assert_eq!(PermuteOptions::new(), PermuteOptions::default());
    }

    #[test]
    fn algorithm_defaults_to_gustedt() {
        assert_eq!(Algorithm::default(), Algorithm::Gustedt);
        assert_eq!(PermuteOptions::default().algorithm, Algorithm::Gustedt);
        assert!(!Algorithm::Gustedt.is_darts());
    }

    #[test]
    fn engine_config_splits_into_job_and_machine_halves() {
        let engine = EngineConfig::new(3)
            .seed(99)
            .algorithm(Algorithm::darts())
            .local_shuffle(LocalShuffle::FisherYates)
            .transport(TransportKind::Threads);
        let options = engine.options();
        assert_eq!(options.algorithm, Algorithm::darts());
        assert_eq!(options.local_shuffle, LocalShuffle::FisherYates);
        // The per-job half deliberately resets nothing else.
        assert_eq!(options.backend, MatrixBackend::Sequential);
        assert_eq!(PermuteOptions::from_engine(&engine), options);

        let machine = engine.cgm_config();
        assert_eq!(machine.procs, 3);
        assert_eq!(machine.seed, 99);
        assert!(EngineConfig::new(0).try_cgm_config().is_err());
    }

    #[test]
    fn algorithm_builder_and_names() {
        let opts = PermuteOptions::new().algorithm(Algorithm::darts());
        assert_eq!(
            opts.algorithm,
            Algorithm::Darts {
                target_factor: DEFAULT_TARGET_FACTOR
            }
        );
        assert!(opts.algorithm.is_darts());
        assert_ne!(Algorithm::Gustedt.name(), Algorithm::darts().name());
        assert_eq!(Algorithm::darts().name(), "darts");
    }
}
