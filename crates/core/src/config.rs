//! Options controlling the parallel permutation.

/// Which of the paper's matrix-sampling algorithms supplies the communication
/// matrix of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// Algorithm 3: sampled sequentially (on the "front-end"), `O(p·p')`
    /// work.  This is what the paper's own experiments used ("sequential
    /// sampling of the matrix, only").
    #[default]
    Sequential,
    /// Algorithm 4: the recursive halving formulation (same cost, different
    /// constant factors).
    Recursive,
    /// Algorithm 5: parallel sampling with a `log p` factor per processor.
    ParallelLog,
    /// Algorithm 6: cost-optimal parallel sampling, `Θ(p)` per processor
    /// (Theorem 2).
    ParallelOptimal,
}

impl MatrixBackend {
    /// All backends, in the order they appear in the paper — handy for
    /// benchmarks and exhaustive tests.
    pub const ALL: [MatrixBackend; 4] = [
        MatrixBackend::Sequential,
        MatrixBackend::Recursive,
        MatrixBackend::ParallelLog,
        MatrixBackend::ParallelOptimal,
    ];

    /// A short stable name used in benchmark/report tables.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixBackend::Sequential => "alg3-sequential",
            MatrixBackend::Recursive => "alg4-recursive",
            MatrixBackend::ParallelLog => "alg5-parallel-log",
            MatrixBackend::ParallelOptimal => "alg6-parallel-optimal",
        }
    }
}

/// Options for [`crate::permute_blocks`] / [`crate::permute_vec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermuteOptions {
    /// Which matrix-sampling algorithm to use.
    pub backend: MatrixBackend,
    /// Whether to keep a copy of the sampled communication matrix in the
    /// report (costs `O(p·p')` memory; useful for tests and diagnostics).
    pub keep_matrix: bool,
    /// Target block sizes `m'_j`.  `None` means "same as the source blocks".
    pub target_sizes: Option<Vec<u64>>,
}

impl Default for PermuteOptions {
    fn default() -> Self {
        PermuteOptions {
            backend: MatrixBackend::Sequential,
            keep_matrix: false,
            target_sizes: None,
        }
    }
}

impl PermuteOptions {
    /// Options with everything default except the matrix backend.
    pub fn with_backend(backend: MatrixBackend) -> Self {
        PermuteOptions {
            backend,
            ..Default::default()
        }
    }

    /// Requests the sampled communication matrix to be kept in the report.
    pub fn keep_matrix(mut self) -> Self {
        self.keep_matrix = true;
        self
    }

    /// Sets explicit target block sizes `m'_j`.
    pub fn target_sizes(mut self, sizes: Vec<u64>) -> Self {
        self.target_sizes = Some(sizes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_sequential() {
        assert_eq!(MatrixBackend::default(), MatrixBackend::Sequential);
        assert_eq!(PermuteOptions::default().backend, MatrixBackend::Sequential);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            MatrixBackend::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), MatrixBackend::ALL.len());
    }

    #[test]
    fn builder_style_options() {
        let opts = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal)
            .keep_matrix()
            .target_sizes(vec![3, 4, 5]);
        assert_eq!(opts.backend, MatrixBackend::ParallelOptimal);
        assert!(opts.keep_matrix);
        assert_eq!(opts.target_sizes, Some(vec![3, 4, 5]));
    }
}
