//! Prior approaches to coarse grained random permutation.
//!
//! The introduction of the paper (and the survey of Guérin Lassous & Thierry
//! it cites) classifies earlier methods by which of the three criteria —
//! **uniformity**, **work-optimality**, **balance** — they give up.  One
//! representative of each class is implemented here so that the experiments
//! can reproduce the comparison:
//!
//! | Baseline | Uniform | Work-optimal | Balanced | Reference |
//! |---|---|---|---|---|
//! | [`sort_based`] | yes | no (`Θ(n log n)`) | approximately | Goodrich 1997 |
//! | [`rejection`] | yes | no (restarts blow up with `n`) | yes | "start-over" trick |
//! | [`one_round`] (fixed matrix, `r` rounds) | no for any fixed `r` | yes | yes | "iterate" trick |
//!
//! The main algorithm ([`crate::permute_blocks`]) is the only one achieving
//! all three simultaneously, which is exactly Theorem 1.

pub mod one_round;
pub mod rejection;
pub mod sort_based;

pub use one_round::one_round_permutation;
pub use rejection::{rejection_permutation, RejectionOutcome};
pub use sort_based::sort_based_permutation;
