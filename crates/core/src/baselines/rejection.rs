//! Rejection ("start-over") baseline.
//!
//! Every item independently draws a destination block with probability
//! proportional to the target block sizes.  If the resulting counts match
//! the prescribed `m'_j` *exactly*, the draw is accepted, the items are
//! exchanged and each target block is shuffled locally; otherwise the whole
//! round is thrown away and redrawn.
//!
//! Conditioned on acceptance the assignment of items to target blocks is a
//! uniformly random arrangement of the multiset {block `j` × `m'_j`}, so the
//! resulting permutation is exactly uniform — this baseline keeps
//! *uniformity* and *balance*.  What it gives up is **work-optimality**: the
//! acceptance probability behaves like `Π_j (2π m'_j)^{-1/2}` (a local
//! central limit estimate), so the expected number of restarts grows
//! polynomially with the block sizes and the method is unusable beyond toy
//! sizes.  The paper's introduction calls out exactly this failure mode of
//! "start-over whenever an imbalance is detected" schemes (and additionally
//! notes that with such schemes uniformity is in general hard to prove; the
//! exact-match variant implemented here is the one version where it is
//! easy).

use crate::sequential::fisher_yates_shuffle;
use cgp_cgm::{CgmMachine, MachineMetrics};
use cgp_rng::{RandomExt, RandomSource};

/// Result of a rejection-sampling permutation run.
#[derive(Debug)]
pub struct RejectionOutcome {
    /// The permuted blocks (sizes exactly `m'_j`).
    pub blocks: Vec<Vec<u64>>,
    /// Number of complete draws performed (1 = accepted on the first try).
    pub attempts: u64,
    /// Metered communication (all attempts included).
    pub metrics: MachineMetrics,
}

/// Error returned when no draw was accepted within the attempt budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectionFailure {
    /// The exhausted attempt budget.
    pub attempts: u64,
}

impl std::fmt::Display for RejectionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no destination draw matched the target block sizes within {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for RejectionFailure {}

/// Runs the rejection baseline.
///
/// `target_sizes[j] = m'_j` must sum to the total number of items and have
/// one entry per processor.  `max_attempts` bounds the number of start-overs.
///
/// # Panics
/// Panics on mismatched block counts or totals.
pub fn rejection_permutation(
    machine: &CgmMachine,
    blocks: Vec<Vec<u64>>,
    target_sizes: &[u64],
    max_attempts: u64,
) -> Result<RejectionOutcome, RejectionFailure> {
    let p = machine.procs();
    assert_eq!(blocks.len(), p, "one block per processor is required");
    assert_eq!(
        target_sizes.len(),
        p,
        "one target size per processor is required"
    );
    let n: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    assert_eq!(
        target_sizes.iter().sum::<u64>(),
        n,
        "target block sizes must sum to the number of items"
    );
    assert!(max_attempts > 0, "at least one attempt must be allowed");

    let slots: Vec<parking_lot::Mutex<Option<Vec<u64>>>> = blocks
        .into_iter()
        .map(|b| parking_lot::Mutex::new(Some(b)))
        .collect();

    let outcome = machine.run(|ctx| {
        let id = ctx.id();
        let p = ctx.procs();
        let items = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");

        let mut attempt = 0u64;
        loop {
            attempt += 1;
            ctx.superstep();
            // Draw one destination per item, weighted by the target sizes.
            let mut local_counts = vec![0u64; p];
            let destinations: Vec<usize> = items
                .iter()
                .map(|_| {
                    let dest = weighted_destination(ctx.rng(), target_sizes, n);
                    local_counts[dest] += 1;
                    dest
                })
                .collect();

            // Share the local counts with everybody so that every processor
            // can decide acceptance identically without a separate broadcast
            // round.
            let outgoing: Vec<Vec<u64>> = (0..p).map(|_| local_counts.clone()).collect();
            let all_counts = ctx.comm_mut().all_to_all(outgoing, attempt * 2);
            let mut global = vec![0u64; p];
            for counts in &all_counts {
                for (g, &c) in global.iter_mut().zip(counts) {
                    *g += c;
                }
            }
            let accepted = global == target_sizes;

            if accepted || attempt >= max_attempts {
                if !accepted {
                    // Budget exhausted: report failure through the return
                    // value (processor-uniformly, since all saw the same
                    // counts).
                    return (attempt, None);
                }
                // Perform the exchange prescribed by the accepted draw.
                let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
                for (&item, &dest) in items.iter().zip(&destinations) {
                    outgoing[dest].push(item);
                }
                let incoming = ctx.comm_mut().all_to_all(outgoing, attempt * 2 + 1);
                let mut block: Vec<u64> = incoming.into_iter().flatten().collect();
                fisher_yates_shuffle(ctx.rng(), &mut block);
                return (attempt, Some(block));
            }
        }
    });

    let (results, metrics) = outcome.into_parts();
    let attempts = results[0].0;
    if results.iter().any(|(_, b)| b.is_none()) {
        return Err(RejectionFailure { attempts });
    }
    let blocks = results
        .into_iter()
        .map(|(_, b)| b.expect("checked above"))
        .collect();
    Ok(RejectionOutcome {
        blocks,
        attempts,
        metrics,
    })
}

/// Draws a destination block index with probability `target_sizes[j] / n`.
fn weighted_destination<R: RandomSource + ?Sized>(
    rng: &mut R,
    target_sizes: &[u64],
    n: u64,
) -> usize {
    let mut ticket = rng.gen_range_u64(n);
    for (j, &w) in target_sizes.iter().enumerate() {
        if ticket < w {
            return j;
        }
        ticket -= w;
    }
    target_sizes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformity::{recommended_samples, test_uniformity};
    use cgp_cgm::{BlockDistribution, CgmConfig};

    fn run(
        p: usize,
        seed: u64,
        data: Vec<u64>,
        max_attempts: u64,
    ) -> Result<Vec<u64>, RejectionFailure> {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let dist = BlockDistribution::even(data.len() as u64, p);
        let target = dist.sizes().to_vec();
        let blocks = dist.split_vec(data);
        rejection_permutation(&machine, blocks, &target, max_attempts)
            .map(|o| o.blocks.into_iter().flatten().collect())
    }

    #[test]
    fn accepted_output_is_a_permutation_with_exact_sizes() {
        let n = 64u64;
        let out = run(4, 1, (0..n).collect(), 100_000).expect("should accept eventually");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<u64>>());
    }

    #[test]
    fn attempt_budget_is_respected() {
        // With a single attempt on a moderately large instance the exact
        // match essentially never happens.
        let result = run(4, 2, (0..4096).collect(), 1);
        assert!(matches!(result, Err(RejectionFailure { attempts: 1 })));
    }

    #[test]
    fn attempts_grow_with_problem_size() {
        // The structural weakness: average attempts increase as blocks grow.
        let attempts_for = |n: u64, seeds: std::ops::Range<u64>| -> f64 {
            let mut total = 0u64;
            let mut runs = 0u64;
            for seed in seeds {
                let machine = CgmMachine::new(CgmConfig::new(2).with_seed(seed));
                let dist = BlockDistribution::even(n, 2);
                let target = dist.sizes().to_vec();
                let blocks = dist.split_vec((0..n).collect());
                let out = rejection_permutation(&machine, blocks, &target, 1_000_000)
                    .expect("tiny instances always accept eventually");
                total += out.attempts;
                runs += 1;
            }
            total as f64 / runs as f64
        };
        let small = attempts_for(4, 0..40);
        let large = attempts_for(64, 100..140);
        assert!(
            large > small,
            "expected more restarts for larger blocks (small {small}, large {large})"
        );
    }

    #[test]
    fn tiny_instances_are_uniform() {
        let report = test_uniformity(4, recommended_samples(4, 250), |rep| {
            run(2, 50_000 + rep, (0..4u64).collect(), 1_000_000).expect("accepts")
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
    }

    #[test]
    fn single_processor_always_accepts_immediately() {
        let machine = CgmMachine::new(CgmConfig::new(1).with_seed(5));
        let out = rejection_permutation(&machine, vec![(0..32u64).collect()], &[32], 1).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.blocks[0].len(), 32);
    }

    #[test]
    #[should_panic(expected = "must sum to the number of items")]
    fn bad_target_sizes_panic() {
        let machine = CgmMachine::with_procs(2);
        let _ = rejection_permutation(&machine, vec![vec![1, 2], vec![3]], &[2, 2], 10);
    }
}
