//! Fixed-matrix ("balanced but non-uniform") baseline.
//!
//! The cheapest way to redistribute data is to fix the communication matrix
//! once and for all to the perfectly balanced `a_ij = m / p` and only
//! randomise locally: shuffle each block, deal it out in equal slices,
//! shuffle what arrives.  One such round is perfectly balanced and
//! work-optimal — but it is **not uniform**, because the true communication
//! matrix of a uniform permutation is random (hypergeometric marginals, see
//! Proposition 3), not a point mass.  Permutations whose matrix differs from
//! the fixed one (for example, the identity permutation when `p ∤ m · i`
//! patterns don't line up) can never be produced.
//!
//! Iterating the round brings the distribution closer to uniform — this is
//! the "iterate" trick the paper's introduction mentions, which needs a
//! logarithmic number of rounds and therefore loses work-optimality again.
//! Experiment E7 measures the chi-square distance as a function of the
//! number of rounds.

use crate::sequential::fisher_yates_shuffle;
use cgp_cgm::{CgmMachine, MachineMetrics};

/// Runs `rounds` rounds of the fixed-matrix redistribution.
///
/// Requires the symmetric setting of the paper's parallel algorithms: every
/// processor holds the same number `m` of items and `p` divides `m`, so that
/// the fixed matrix `a_ij = m / p` is integral.
///
/// # Panics
/// Panics if the blocks are not all of equal size, `p` does not divide the
/// block size, or `rounds == 0`.
pub fn one_round_permutation(
    machine: &CgmMachine,
    blocks: Vec<Vec<u64>>,
    rounds: usize,
) -> (Vec<Vec<u64>>, MachineMetrics) {
    let p = machine.procs();
    assert_eq!(blocks.len(), p, "one block per processor is required");
    assert!(rounds > 0, "at least one round is required");
    let m = blocks[0].len();
    assert!(
        blocks.iter().all(|b| b.len() == m),
        "the fixed-matrix baseline needs equal block sizes"
    );
    assert!(
        m.is_multiple_of(p),
        "the fixed matrix a_ij = m/p requires p ({p}) to divide the block size ({m})"
    );
    let slice = m / p;

    let slots: Vec<parking_lot::Mutex<Option<Vec<u64>>>> = blocks
        .into_iter()
        .map(|b| parking_lot::Mutex::new(Some(b)))
        .collect();

    let outcome = machine.run(|ctx| {
        let id = ctx.id();
        let p = ctx.procs();
        let mut block = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");

        for round in 0..rounds {
            ctx.superstep();
            fisher_yates_shuffle(ctx.rng(), &mut block);
            // Deal the shuffled block into p equal slices: the fixed matrix.
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|j| block[j * slice..(j + 1) * slice].to_vec())
                .collect();
            let incoming = ctx.comm_mut().all_to_all(outgoing, round as u64);
            block = incoming.into_iter().flatten().collect();
        }
        // Final local shuffle so that the arrangement inside each block is
        // random even after a single round.
        fisher_yates_shuffle(ctx.rng(), &mut block);
        block
    });

    outcome.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformity::{recommended_samples, test_uniformity};
    use cgp_cgm::CgmConfig;

    fn run(p: usize, seed: u64, n: u64, rounds: usize) -> Vec<u64> {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let m = (n as usize) / p;
        let blocks: Vec<Vec<u64>> = (0..p)
            .map(|i| ((i * m) as u64..((i + 1) * m) as u64).collect())
            .collect();
        let (out, _) = one_round_permutation(&machine, blocks, rounds);
        out.into_iter().flatten().collect()
    }

    #[test]
    fn output_is_a_permutation() {
        let out = run(4, 1, 400, 1);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn volume_is_perfectly_balanced() {
        let p = 8usize;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(2));
        let m = 640usize;
        let blocks: Vec<Vec<u64>> = (0..p)
            .map(|i| ((i * m) as u64..((i + 1) * m) as u64).collect())
            .collect();
        let (_, metrics) = one_round_permutation(&machine, blocks, 1);
        assert!((metrics.comm_balance() - 1.0).abs() < 1e-9);
        for proc in &metrics.per_proc {
            assert_eq!(proc.words_sent, m as u64);
        }
    }

    #[test]
    fn one_round_is_not_uniform() {
        // n = 4, p = 2, m = 2, fixed matrix a_ij = 1: permutations that keep
        // both items of a source block on the same target block are
        // impossible, so uniformity must fail decisively.
        let report = test_uniformity(4, recommended_samples(4, 250), |rep| {
            run(2, 10_000 + rep, 4, 1)
        });
        assert!(
            !report.is_uniform_at(0.001),
            "the fixed-matrix baseline must not look uniform: {:?}",
            report.chi_square
        );
        assert!(!report.covers_all_permutations());
    }

    #[test]
    fn more_rounds_reduce_the_bias() {
        // The chi-square statistic should drop substantially from 1 round to
        // 4 rounds (it cannot reach uniformity exactly, but gets closer).
        let stat = |rounds: usize, base_seed: u64| {
            test_uniformity(4, recommended_samples(4, 250), |rep| {
                run(2, base_seed + rep, 4, rounds)
            })
            .chi_square
            .statistic
        };
        let one = stat(1, 20_000);
        let four = stat(4, 40_000);
        assert!(
            four < one / 2.0,
            "iterating should shrink the bias (1 round: {one}, 4 rounds: {four})"
        );
    }

    #[test]
    #[should_panic(expected = "divide the block size")]
    fn indivisible_block_size_panics() {
        let machine = CgmMachine::with_procs(3);
        let blocks = vec![vec![1u64, 2], vec![3, 4], vec![5, 6]];
        let _ = one_round_permutation(&machine, blocks, 1);
    }

    #[test]
    #[should_panic(expected = "equal block sizes")]
    fn unequal_blocks_panic() {
        let machine = CgmMachine::with_procs(2);
        let blocks = vec![vec![1u64, 2], vec![3]];
        let _ = one_round_permutation(&machine, blocks, 1);
    }
}
