//! Goodrich-style baseline: attach random keys and sort.
//!
//! Goodrich (SODA 1997) obtains a random permutation on the BSP by giving
//! every item an independent random key and sorting the items by key.  The
//! result is uniform (conditioned on the keys being distinct, which happens
//! with overwhelming probability for 64-bit keys) and reasonably balanced,
//! but the total work is `Θ(n log n)` — a logarithmic factor away from the
//! work-optimality the PRO model demands, which is precisely the criticism
//! in the paper's introduction.
//!
//! The implementation is a textbook parallel sample sort on the CGM
//! simulator: local sort by key, regular sampling, splitter selection on
//! processor 0, key-range partitioning, all-to-all, local merge.

use crate::sequential::fisher_yates_shuffle;
use cgp_cgm::{CgmMachine, MachineMetrics};
use cgp_rng::RandomSource;

/// Permutes the block-distributed items by the random-keys-and-sort method.
///
/// Items are `u64` payloads (the baselines fix the item type to keep the
/// key/value message encoding trivial).  Returns the new blocks — whose sizes
/// are only *approximately* balanced, one of the method's structural
/// drawbacks — and the metered communication.
///
/// # Panics
/// Panics if `blocks.len()` differs from the machine's processor count.
pub fn sort_based_permutation(
    machine: &CgmMachine,
    blocks: Vec<Vec<u64>>,
) -> (Vec<Vec<u64>>, MachineMetrics) {
    let p = machine.procs();
    assert_eq!(blocks.len(), p, "one block per processor is required");
    let slots: Vec<parking_lot::Mutex<Option<Vec<u64>>>> = blocks
        .into_iter()
        .map(|b| parking_lot::Mutex::new(Some(b)))
        .collect();

    let outcome = machine.run(|ctx| {
        let id = ctx.id();
        let p = ctx.procs();
        let items = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");

        // Attach independent random keys; the pair is encoded as two u64
        // words (key, value) for the exchanges below.
        ctx.superstep();
        let mut keyed: Vec<(u64, u64)> = items
            .into_iter()
            .map(|v| (ctx.rng().next_u64(), v))
            .collect();
        // Local sort by key: the Θ(m log m) term that breaks work-optimality.
        keyed.sort_unstable();

        // Regular sampling: every processor contributes p−1 equally spaced
        // keys; processor 0 selects the global splitters.
        ctx.superstep();
        let mut samples: Vec<u64> = Vec::with_capacity(p.saturating_sub(1));
        if !keyed.is_empty() {
            for k in 1..p {
                let idx = (k * keyed.len()) / p;
                samples.push(keyed[idx.min(keyed.len() - 1)].0);
            }
        }
        ctx.comm_mut().send(0, 1, samples);
        let splitters: Vec<u64> = if id == 0 {
            let mut all: Vec<u64> = Vec::new();
            for from in 0..p {
                all.extend(ctx.comm_mut().recv(from, 1));
            }
            all.sort_unstable();
            // Pick p−1 evenly spaced splitters out of the gathered samples.
            let splitters: Vec<u64> = if all.is_empty() {
                Vec::new()
            } else {
                (1..p)
                    .map(|k| all[((k * all.len()) / p).max(1) - 1])
                    .collect()
            };
            for to in 0..p {
                ctx.comm_mut().send(to, 2, splitters.clone());
            }
            ctx.comm_mut().recv(0, 2)
        } else {
            ctx.comm_mut().recv(0, 2)
        };

        // Partition the locally sorted items into key ranges and exchange.
        ctx.superstep();
        let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
        for &(key, value) in &keyed {
            let dest = splitters.partition_point(|&s| s < key).min(p - 1);
            outgoing[dest].push(key);
            outgoing[dest].push(value);
        }
        let incoming = ctx.comm_mut().all_to_all(outgoing, 3);

        // Merge the received runs (a full sort keeps the code simple; the
        // asymptotics are unchanged) and strip the keys.
        ctx.superstep();
        let mut merged: Vec<(u64, u64)> = incoming
            .into_iter()
            .flat_map(|words| {
                words
                    .chunks_exact(2)
                    .map(|c| (c[0], c[1]))
                    .collect::<Vec<_>>()
            })
            .collect();
        merged.sort_unstable();
        merged.into_iter().map(|(_, v)| v).collect::<Vec<u64>>()
    });

    outcome.into_parts()
}

/// Sequential reference of the same idea (random keys + comparison sort),
/// used by the work-measurement benchmarks: `Θ(n log n)` instead of the
/// Fisher–Yates `Θ(n)`.
pub fn sort_based_sequential<R: RandomSource + ?Sized>(rng: &mut R, data: &[u64]) -> Vec<u64> {
    let mut keyed: Vec<(u64, u64)> = data.iter().map(|&v| (rng.next_u64(), v)).collect();
    keyed.sort_unstable();
    let mut out: Vec<u64> = keyed.into_iter().map(|(_, v)| v).collect();
    // Guard against the (vanishingly unlikely) duplicate-key case exactly the
    // way a careful implementation would: a final local pass is not needed
    // for uniformity at 64-bit keys, but a cheap shuffle of ties would go
    // here.  We keep the output as-is and rely on key distinctness.
    if out.len() < 2 {
        fisher_yates_shuffle(rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformity::{recommended_samples, test_uniformity};
    use cgp_cgm::{BlockDistribution, CgmConfig};
    use cgp_rng::Pcg64;

    fn permute_flat(p: usize, seed: u64, data: Vec<u64>) -> Vec<u64> {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let dist = BlockDistribution::even(data.len() as u64, p);
        let blocks = dist.split_vec(data);
        let (out, _) = sort_based_permutation(&machine, blocks);
        out.into_iter().flatten().collect()
    }

    #[test]
    fn output_is_a_permutation() {
        let n = 1000u64;
        let out = permute_flat(4, 1, (0..n).collect());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<u64>>());
    }

    #[test]
    fn works_for_single_processor() {
        let out = permute_flat(1, 2, (0..64).collect());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn blocks_are_approximately_balanced() {
        let p = 8usize;
        let n = 16_000u64;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
        let dist = BlockDistribution::even(n, p);
        let blocks = dist.split_vec((0..n).collect());
        let (out, _) = sort_based_permutation(&machine, blocks);
        let sizes: Vec<usize> = out.iter().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), n as usize);
        let ideal = n as f64 / p as f64;
        for (i, &s) in sizes.iter().enumerate() {
            assert!(
                (s as f64) < 2.5 * ideal && (s as f64) > 0.2 * ideal,
                "block {i} has size {s}, ideal {ideal} — sample sort grossly unbalanced"
            );
        }
    }

    #[test]
    fn small_instances_are_uniform() {
        // The sort-based method is uniform; verify on n = 4 exhaustively.
        // (Block sizes vary run to run, so rank the flattened output.)
        let report = test_uniformity(4, recommended_samples(4, 300), |rep| {
            permute_flat(2, 10_000 + rep, (0..4u64).collect())
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
    }

    #[test]
    fn sequential_variant_is_a_permutation_and_uniform() {
        let mut rng = Pcg64::seed_from_u64(5);
        let out = sort_based_sequential(&mut rng, &(0..500).collect::<Vec<u64>>());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<u64>>());

        let mut rng = Pcg64::seed_from_u64(6);
        let report = test_uniformity(4, recommended_samples(4, 300), |_| {
            sort_based_sequential(&mut rng, &[0, 1, 2, 3])
        });
        assert!(report.is_uniform_at(0.001));
    }

    #[test]
    fn communication_volume_is_linear_but_work_is_not() {
        // The exchange itself is one h-relation (O(m) words per processor);
        // the extra key words double the volume relative to Algorithm 1.
        let p = 4usize;
        let n = 4000u64;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(9));
        let dist = BlockDistribution::even(n, p);
        let blocks = dist.split_vec((0..n).collect());
        let (_, metrics) = sort_based_permutation(&machine, blocks);
        // Every item travels once as a (key, value) pair => ~2 words sent per
        // item plus the sampling traffic.
        let sent: u64 = metrics.per_proc.iter().map(|m| m.words_sent).sum();
        assert!(sent >= 2 * n);
        assert!(sent < 3 * n + (p * p * p) as u64);
    }
}
