//! Empirical uniformity testing of permutation generators.
//!
//! The paper's central quality criterion is *uniformity*: every permutation
//! must appear with probability `1/n!`.  For small `n` this can be tested
//! exhaustively — generate many permutations, bucket each by its Lehmer rank
//! and run a chi-square goodness-of-fit test against the uniform law.  This
//! module packages that procedure so that the main algorithm, the baselines
//! and the experiments (E5/E7) all share one implementation.

use cgp_stats::chi_square::chi_square_uniform;
use cgp_stats::{factorial, permutation_rank, ChiSquareOutcome};

/// The outcome of an empirical uniformity check.
#[derive(Debug, Clone)]
pub struct UniformityReport {
    /// Number of distinct permutations (`n!`).
    pub buckets: u64,
    /// Number of generated permutations.
    pub samples: u64,
    /// How many distinct permutations were observed at least once.
    pub observed_distinct: u64,
    /// The chi-square test against the uniform distribution over all `n!`
    /// permutations.
    pub chi_square: ChiSquareOutcome,
}

impl UniformityReport {
    /// Whether the generator is consistent with uniformity at level `alpha`.
    pub fn is_uniform_at(&self, alpha: f64) -> bool {
        self.chi_square.is_consistent_at(alpha)
    }

    /// Whether every possible permutation was observed at least once — a
    /// much weaker necessary condition that even non-uniform but "complete"
    /// generators pass, and that rejection/restart schemes may fail.
    pub fn covers_all_permutations(&self) -> bool {
        self.observed_distinct == self.buckets
    }
}

/// Empirically tests a permutation generator for uniformity.
///
/// `generate(rep)` must return a permutation of `0..n` (as the image
/// positions of items `0..n`); it is called `samples` times with `rep` = 0,
/// 1, ….  `n` must be at most 8 so that `n!` buckets stay manageable.
///
/// # Panics
/// Panics if `n > 8`, `samples == 0`, or a returned vector is not a
/// permutation of `0..n`.
pub fn test_uniformity(
    n: usize,
    samples: u64,
    mut generate: impl FnMut(u64) -> Vec<u64>,
) -> UniformityReport {
    assert!(
        n <= 8,
        "exhaustive uniformity testing beyond n = 8 is impractical"
    );
    assert!(samples > 0, "at least one sample is required");
    let buckets = factorial(n);
    let mut counts = vec![0u64; buckets as usize];
    for rep in 0..samples {
        let perm = generate(rep);
        assert_eq!(
            perm.len(),
            n,
            "generator returned a vector of the wrong length"
        );
        let as_u32: Vec<u32> = perm.iter().map(|&x| x as u32).collect();
        let rank = permutation_rank(&as_u32);
        counts[rank as usize] += 1;
    }
    let observed_distinct = counts.iter().filter(|&&c| c > 0).count() as u64;
    let chi_square = chi_square_uniform(&counts);
    UniformityReport {
        buckets,
        samples,
        observed_distinct,
        chi_square,
    }
}

/// Recommended number of samples for an exhaustive uniformity test at size
/// `n`: enough for an expected count of roughly `target_per_bucket` in every
/// bucket.
pub fn recommended_samples(n: usize, target_per_bucket: u64) -> u64 {
    factorial(n) * target_per_bucket
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::random_index_permutation;
    use cgp_rng::Pcg64;

    #[test]
    fn fisher_yates_is_uniform() {
        let mut rng = Pcg64::seed_from_u64(1);
        let report = test_uniformity(4, recommended_samples(4, 400), |_| {
            random_index_permutation(&mut rng, 4)
        });
        assert!(report.is_uniform_at(0.001), "{report:?}");
        assert!(report.covers_all_permutations());
    }

    #[test]
    fn a_biased_generator_is_detected() {
        // "Shuffle" that never moves element 0: cannot be uniform.
        let mut rng = Pcg64::seed_from_u64(2);
        let report = test_uniformity(4, recommended_samples(4, 200), |_| {
            let mut tail = random_index_permutation(&mut rng, 3);
            for t in &mut tail {
                *t += 1;
            }
            let mut perm = vec![0u64];
            perm.extend(tail);
            perm
        });
        assert!(!report.is_uniform_at(0.001));
        assert!(!report.covers_all_permutations());
    }

    #[test]
    fn identity_generator_is_maximally_non_uniform() {
        let report = test_uniformity(3, 600, |_| vec![0, 1, 2]);
        assert!(!report.is_uniform_at(0.05));
        assert_eq!(report.observed_distinct, 1);
    }

    #[test]
    fn recommended_samples_scales_with_factorial() {
        assert_eq!(recommended_samples(3, 10), 60);
        assert_eq!(recommended_samples(5, 2), 240);
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn large_n_rejected() {
        test_uniformity(9, 10, |_| (0..9).collect());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_length_rejected() {
        test_uniformity(3, 10, |_| vec![0, 1]);
    }
}
