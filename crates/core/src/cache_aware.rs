//! The bucketed local-shuffle engine — the paper's §6 outlook, grown up.
//!
//! The closing section of the paper observes that, because the gap between
//! CPU and memory speed keeps growing, the coarse grained decomposition can
//! also pay off *sequentially*: treat the machine's cache hierarchy like the
//! processors of a CGM, split the permutation into (a) a random
//! redistribution between `k` buckets governed by a communication matrix and
//! (b) independent local shuffles of buckets small enough to stay
//! cache-resident.  Phase (a) shuffles one cache-sized *window* of the
//! input at a time and streams consecutive runs of it into the buckets with
//! bulk moves (instead of the Fisher–Yates random writes over the whole
//! array), and phase (b) only ever touches one cache-sized bucket at a
//! time.
//!
//! The construction mirrors Algorithm 1 exactly, with "virtual processors" =
//! buckets, so uniformity follows from the same argument (Propositions 1–2):
//! the bucket sizes follow the multivariate hypergeometric law a uniform
//! permutation induces, the assignment of items to buckets given those sizes
//! is uniform, and each bucket is shuffled uniformly.  [`bucketed_shuffle`]
//! is the engine; [`LocalShuffle`] is the policy knob every layer of the
//! stack (options, `Permuter`, sessions, the service) carries.
//!
//! Whether buckets beat plain Fisher–Yates depends on the machine's
//! cache/memory ratio and on the working-set size — that crossover is
//! measured by experiment E12 (`cgp-bench`, `exp_shuffle`) and baked into
//! [`LocalShuffle::Auto`] as [`AUTO_CROSSOVER_BYTES`].

use cgp_rng::RandomSource;

use crate::sequential::fisher_yates_shuffle;

/// Byte budget one bucket may occupy, sized so that the phase-(b) shuffle of
/// a bucket runs against fast cache instead of main memory.
///
/// 256 KiB: comfortably inside a typical L2 (the E12 calibration box carries
/// 2 MiB of L2 and 48 KiB of L1d; a quarter-megabyte bucket leaves room for
/// the scatter chunk, the draw buffer and the bucket cursors next to it).
pub const BUCKET_L2_BUDGET_BYTES: usize = 256 * 1024;

/// Payload size (bytes of `n · size_of::<T>()`) past which
/// [`LocalShuffle::Auto`] flips from plain Fisher–Yates to the bucketed
/// engine.
///
/// Below this the whole working set is cache-resident and the bucket
/// machinery is pure overhead; above it the Fisher–Yates random accesses
/// start missing and the two streaming passes win.  The value is the
/// empirically measured crossover of experiment E12 (`exp_shuffle`,
/// BENCH_shuffle.json) on the reference box, whose last-level cache is an
/// unusually large 260 MiB: for `u64` payloads Fisher–Yates wins outright
/// at 32 MiB (buckets at 0.73x), the engines are within a few percent of
/// each other around 46–61 MiB, and buckets pull ahead past that — 1.2x
/// at 92 MiB, 1.4x at 122 MiB, 1.6x at 512 MiB.  Machines with ordinary
/// (single-digit-MiB) last-level caches cross over far earlier; pin
/// `LocalShuffle::Bucketed` explicitly — or recalibrate with
/// `exp_shuffle` — when targeting one.
///
/// The fused pipeline resolves `Auto` against the **whole job's** payload
/// (`n` total items), not each worker's block: the per-worker blocks of one
/// job are live simultaneously, so their combined footprint is what the
/// cache actually sees (E12's session grid confirms the job-level split
/// predicts the win where the per-block sizes do not).
pub const AUTO_CROSSOVER_BYTES: usize = 64 * 1024 * 1024;

/// Item size (bytes of one `T`) past which [`LocalShuffle::Auto`] stays on
/// Fisher–Yates regardless of the payload size.
///
/// The scatter moves every item ~3 times (window shuffle, run drain,
/// bucket shuffle + concat) where Fisher–Yates moves it ~2 times; for wide
/// records the extra bulk copies dominate the latency the buckets save —
/// E12 measures 64-byte and 512-byte records losing ~2x with buckets even
/// at DRAM-resident sizes, because a Fisher–Yates swap of a multi-line
/// record is prefetch-friendly (sequential within the record).  Buckets
/// only pay off for word-sized items, where the cost is pointer-chase
/// latency, not copy bandwidth.
pub const AUTO_MAX_ITEM_BYTES: usize = 16;

/// Upper bound on the number of buckets one scatter pass fans out to.
///
/// Bounding the fan-out keeps the per-window bookkeeping (the
/// hypergeometric row, the sinks' headers and cursors) cache-resident and
/// the total row-sampling work at `O(k²) ≤ 64k` draws per pass.  For
/// payloads beyond `256 · BUCKET_L2_BUDGET_BYTES` (64 MiB at the default
/// budget) buckets therefore grow past the L2 budget to `total / 256` —
/// still two orders of magnitude below the working set, so the
/// cache-residency argument degrades gracefully instead of the bookkeeping
/// blowing up.
pub const MAX_SCATTER_BUCKETS: usize = 256;

/// Default bucket size **in items, for `u64` payloads** — the
/// [`BUCKET_L2_BUDGET_BYTES`] budget divided by `size_of::<u64>()`.
///
/// Prefer [`default_bucket_items`], which derives the item count from the
/// actual payload type instead of assuming 8-byte items.
pub const DEFAULT_BUCKET_ITEMS: usize = BUCKET_L2_BUDGET_BYTES / std::mem::size_of::<u64>();

/// Number of items of type `T` that fit the [`BUCKET_L2_BUDGET_BYTES`]
/// bucket budget, clamped to at least 1.
///
/// Zero-sized types get the clamp too: one-item buckets are degenerate but
/// harmless (a ZST permutation has no observable order anyway).
pub fn default_bucket_items<T>() -> usize {
    (BUCKET_L2_BUDGET_BYTES / std::mem::size_of::<T>().max(1)).max(1)
}

/// Which algorithm the engine uses for its **local** (per-processor)
/// shuffles — the superstep-1 and superstep-3 passes of Algorithm 1, and
/// the sequential entry points.
///
/// Every variant produces an exactly uniform permutation; they differ only
/// in memory behaviour.  **Engines need not agree byte-for-byte**: for the
/// same seed, [`LocalShuffle::FisherYates`] and [`LocalShuffle::Bucketed`]
/// consume the random stream differently and emit different (equally
/// uniform) permutations, and `Auto` emits whatever the engine it resolves
/// to emits.  Pin an explicit engine if a stored permutation must be
/// reproduced across configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalShuffle {
    /// The classic single-pass Fisher–Yates (Durstenfeld) shuffle — one
    /// bounded draw and one random-access swap per item.  Optimal while the
    /// working set is cache-resident; memory-latency-bound beyond that.
    FisherYates,
    /// The two-phase bucketed scatter shuffle of [`bucketed_shuffle`]:
    /// stream the items into `ceil(n / bucket_items)` buckets (sizes
    /// governed by the multivariate hypergeometric law), then Fisher–Yates
    /// each cache-resident bucket.  `bucket_items` is clamped to at least 1;
    /// use [`LocalShuffle::bucketed_for`] for the payload-aware default.
    Bucketed {
        /// Target bucket size in items.
        bucket_items: usize,
    },
    /// Picks per call: Fisher–Yates while the payload
    /// (`n · size_of::<T>()`) is at most [`AUTO_CROSSOVER_BYTES`] or the
    /// item is wider than [`AUTO_MAX_ITEM_BYTES`]; the bucketed engine with
    /// [`default_bucket_items`] buckets otherwise.  Both thresholds are
    /// E12-measured (see their docs).  This is the default everywhere
    /// ([`crate::PermuteOptions`], the `Permuter` builder, sessions, the
    /// service).
    #[default]
    Auto,
}

impl LocalShuffle {
    /// The payload-aware bucketed engine: buckets sized by
    /// [`default_bucket_items::<T>()`](default_bucket_items).
    pub fn bucketed_for<T>() -> LocalShuffle {
        LocalShuffle::Bucketed {
            bucket_items: default_bucket_items::<T>(),
        }
    }

    /// A short stable name used in benchmark/report tables.
    pub fn name(&self) -> &'static str {
        match self {
            LocalShuffle::FisherYates => "fisher-yates",
            LocalShuffle::Bucketed { .. } => "bucketed",
            LocalShuffle::Auto => "auto",
        }
    }

    /// Resolves the policy for a concrete call — `n` items of type `T` —
    /// to the engine that will actually run.  Never returns `Auto`.
    pub fn resolve_for<T>(&self, n: usize) -> LocalShuffle {
        match *self {
            LocalShuffle::Auto => {
                let item = std::mem::size_of::<T>();
                if item <= AUTO_MAX_ITEM_BYTES && n.saturating_mul(item) > AUTO_CROSSOVER_BYTES {
                    LocalShuffle::bucketed_for::<T>()
                } else {
                    LocalShuffle::FisherYates
                }
            }
            LocalShuffle::Bucketed { bucket_items } => LocalShuffle::Bucketed {
                bucket_items: bucket_items.max(1),
            },
            LocalShuffle::FisherYates => LocalShuffle::FisherYates,
        }
    }

    /// Uniformly permutes `data` in place with the selected engine.
    ///
    /// Allocates the bucketed engine's staging buffers per call; loops
    /// should hold a [`BucketScratch`] and use
    /// [`LocalShuffle::shuffle_vec_with`] (the fused pipeline workers do).
    pub fn shuffle_vec<T, R: RandomSource + ?Sized>(&self, rng: &mut R, data: &mut Vec<T>) {
        self.shuffle_vec_with(rng, data, &mut BucketScratch::new());
    }

    /// Scratch-reusing form of [`LocalShuffle::shuffle_vec`]: the bucketed
    /// engine's staging capacity lives in `scratch` and is retained across
    /// calls.  The Fisher–Yates engine ignores the scratch (and leaves it
    /// untouched), so one scratch per call site serves every policy.
    pub fn shuffle_vec_with<T, R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        data: &mut Vec<T>,
        scratch: &mut BucketScratch<T>,
    ) {
        match self.resolve_for::<T>(data.len()) {
            LocalShuffle::FisherYates => fisher_yates_shuffle(rng, data),
            LocalShuffle::Bucketed { bucket_items } => {
                bucketed_shuffle_with(rng, data, bucket_items, scratch)
            }
            LocalShuffle::Auto => unreachable!("resolve_for never returns Auto"),
        }
    }

    /// Draws a uniformly random permutation of `0..n` as a `Vec<u64>`.
    ///
    /// This is the index-vector specialization behind `sample_permutation`:
    /// the bucketed engine fills its scatter chunks straight from the
    /// integer range, so the identity vector is never materialized and the
    /// input pass of [`bucketed_shuffle`] disappears.
    pub fn sample_permutation<R: RandomSource + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        match self.resolve_for::<u64>(n) {
            LocalShuffle::FisherYates => {
                let mut out: Vec<u64> = (0..n as u64).collect();
                fisher_yates_shuffle(rng, &mut out);
                out
            }
            LocalShuffle::Bucketed { bucket_items } => {
                bucketed_index_permutation(rng, n, bucket_items)
            }
            LocalShuffle::Auto => unreachable!("resolve_for never returns Auto"),
        }
    }
}

/// Fixed output split for `n` items into buckets of `bucket_items`: every
/// bucket holds exactly `bucket_items` except a short last one.
pub(crate) fn bucket_sizes(n: usize, bucket_items: usize) -> Vec<u64> {
    let buckets = n.div_ceil(bucket_items).max(1);
    let mut sizes = vec![bucket_items as u64; buckets];
    *sizes.last_mut().expect("at least one bucket") = (n - (buckets - 1) * bucket_items) as u64;
    sizes
}

/// The bucket size a pass actually runs with: the requested size, clamped
/// to at least 1 and raised so the fan-out never exceeds
/// [`MAX_SCATTER_BUCKETS`].
pub(crate) fn effective_bucket_items(n: usize, bucket_items: usize) -> usize {
    bucket_items.max(1).max(n.div_ceil(MAX_SCATTER_BUCKETS))
}

/// The scatter kernel every bucketed pass shares: drain `source` from its
/// tail in windows of `window_items`, Fisher–Yates each (cache-resident)
/// window in place, split it across the sinks by the multivariate
/// hypergeometric law (Algorithm 2 against the sinks' `remaining` demand),
/// and move the resulting **consecutive runs** with bulk tail drains.
///
/// A uniformly shuffled window cut into consecutive runs of
/// hypergeometric lengths is exactly the Proposition 1–2 construction of
/// the paper's superstep 2, applied to buckets: the set of items each sink
/// receives is a uniform subset of the window, and composing windows
/// left-to-right is the conditional-split argument of Algorithm 2.  The
/// within-sink order that the runs arrive in does not matter, because the
/// engine's phase (b) re-shuffles every sink uniformly.
///
/// Moving whole runs instead of dealing single items is what makes the
/// scatter stream: per window, one in-cache shuffle plus `k` bulk
/// `extend(drain(..))` copies — no per-item random sink writes.
///
/// `remaining` may carry more total demand than `source` holds (the
/// multi-window caller, e.g. the index specialization's chunk refills);
/// each call consumes exactly `source.len()` demand.  `row` is
/// caller-provided scratch of length `sinks.len()`.
pub(crate) fn scatter_windows<T, R: RandomSource + ?Sized>(
    rng: &mut R,
    source: &mut Vec<T>,
    window_items: usize,
    remaining: &mut [u64],
    row: &mut [u64],
    sinks: &mut [Vec<T>],
) {
    debug_assert_eq!(remaining.len(), sinks.len());
    debug_assert_eq!(row.len(), sinks.len());
    debug_assert!(remaining.iter().sum::<u64>() >= source.len() as u64);
    let window_items = window_items.max(1);
    while !source.is_empty() {
        let take = window_items.min(source.len());
        let start = source.len() - take;
        fisher_yates_shuffle(rng, &mut source[start..]);
        cgp_hypergeom::multivariate_hypergeometric_into(rng, take as u64, remaining, row);
        for (s, &count) in row.iter().enumerate() {
            if count == 0 {
                continue;
            }
            remaining[s] -= count;
            let cut = source.len() - count as usize;
            sinks[s].extend(source.drain(cut..));
        }
        debug_assert_eq!(source.len(), start, "the row sums to the window size");
    }
}

/// Reusable buffers for the bucketed engine: the per-bucket staging vectors
/// plus the `O(k)` bookkeeping rows.
///
/// A fresh scratch warms up on the first call (each bucket buffer is sized
/// by the demand it serves) and retains every capacity afterwards — the
/// allocation discipline that makes the engine viable inside the fused
/// pipeline, where a worker shuffles every call and a quarter-megabyte of
/// fresh pages per pass would cost more than the shuffle itself.
#[derive(Debug)]
pub struct BucketScratch<T> {
    buckets: Vec<Vec<T>>,
    remaining: Vec<u64>,
    row: Vec<u64>,
}

impl<T> BucketScratch<T> {
    /// An empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        BucketScratch {
            buckets: Vec::new(),
            remaining: Vec::new(),
            row: Vec::new(),
        }
    }

    /// Total item capacity currently retained across the bucket buffers.
    pub fn retained_capacity(&self) -> usize {
        self.buckets.iter().map(|b| b.capacity()).sum()
    }

    /// Readies the scratch for `k` buckets with the given demands: bucket
    /// buffers exist, are empty, hold at least their demand's capacity (so
    /// the scatter's bulk drains never reallocate mid-pass), and
    /// `remaining` holds the demand vector.
    fn prepare(&mut self, demands: &[u64]) {
        let k = demands.len();
        if self.buckets.len() < k {
            self.buckets.resize_with(k, Vec::new);
        }
        for (bucket, &demand) in self.buckets[..k].iter_mut().zip(demands) {
            bucket.clear();
            bucket.reserve(demand as usize);
        }
        self.remaining.clear();
        self.remaining.extend_from_slice(demands);
        self.row.clear();
        self.row.resize(k, 0);
    }
}

impl<T> Default for BucketScratch<T> {
    fn default() -> Self {
        BucketScratch::new()
    }
}

/// Uniformly permutes `data` with the two-phase bucketed scatter shuffle.
///
/// `bucket_items` is the target bucket size (clamped to at least 1 and
/// raised so at most [`MAX_SCATTER_BUCKETS`] buckets result); the number of
/// buckets is `ceil(n / bucket_items)`.  With a single bucket the algorithm
/// degenerates to one plain Fisher–Yates pass, byte-identical to
/// [`fisher_yates_shuffle`] under the same generator state.
///
/// Phase (a) drains the input from its tail in windows of `bucket_items`,
/// shuffles each (cache-resident) window in place, samples the window's
/// bucket counts from the multivariate hypergeometric law and moves the
/// resulting consecutive runs into the per-bucket buffers with bulk drains;
/// phase (b) shuffles each bucket in cache and concatenates into the
/// emptied source allocation.  Random accesses therefore never span more
/// than one window or one bucket at a time — everything else is streaming.
/// (An earlier variant batched halfword bounded draws through
/// [`cgp_rng::BlockRng::gen_bounded`]; E12 measured the generator's direct
/// stream faster on the reference box, so the engine draws directly and the
/// batched primitive remains available in `cgp-rng` for narrower loops.)
///
/// The permutation is exactly uniform for every choice of `bucket_items`
/// (see the module docs for the proof sketch).
///
/// This convenience form allocates its staging buffers per call; steady-state
/// callers should reuse a scratch via [`bucketed_shuffle_with`] (the fused
/// pipeline and the session API do this internally).
pub fn bucketed_shuffle<T, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &mut Vec<T>,
    bucket_items: usize,
) {
    bucketed_shuffle_with(rng, data, bucket_items, &mut BucketScratch::new());
}

/// Scratch-reusing form of [`bucketed_shuffle`]: all staging capacity lives
/// in `scratch` and is retained across calls, so a warm steady state makes
/// no per-item allocations.
pub fn bucketed_shuffle_with<T, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &mut Vec<T>,
    bucket_items: usize,
    scratch: &mut BucketScratch<T>,
) {
    let n = data.len();
    let bucket_items = effective_bucket_items(n, bucket_items);
    if n <= bucket_items {
        fisher_yates_shuffle(rng, data);
        return;
    }
    let sizes = bucket_sizes(n, bucket_items);
    let k = sizes.len();
    scratch.prepare(&sizes);

    scatter_windows(
        rng,
        data,
        bucket_items,
        &mut scratch.remaining,
        &mut scratch.row,
        &mut scratch.buckets[..k],
    );

    // Phase (b), reusing the emptied source allocation as the output.
    for bucket in &mut scratch.buckets[..k] {
        fisher_yates_shuffle(rng, bucket);
        data.append(bucket);
    }
}

/// Draws a uniformly random permutation of `0..n` with the bucketed engine,
/// without ever materializing the identity vector: scatter windows are
/// filled straight from the integer range.  See
/// [`LocalShuffle::sample_permutation`].
pub fn bucketed_index_permutation<R: RandomSource + ?Sized>(
    rng: &mut R,
    n: usize,
    bucket_items: usize,
) -> Vec<u64> {
    let bucket_items = effective_bucket_items(n, bucket_items);
    if n <= bucket_items {
        let mut out: Vec<u64> = (0..n as u64).collect();
        fisher_yates_shuffle(rng, &mut out);
        return out;
    }
    let sizes = bucket_sizes(n, bucket_items);
    let k = sizes.len();
    let mut scratch: BucketScratch<u64> = BucketScratch::new();
    scratch.prepare(&sizes);

    let mut chunk: Vec<u64> = Vec::with_capacity(bucket_items);
    let mut next = 0u64;
    while (next as usize) < n {
        let take = bucket_items.min(n - next as usize) as u64;
        chunk.extend(next..next + take);
        next += take;
        scatter_windows(
            rng,
            &mut chunk,
            bucket_items,
            &mut scratch.remaining,
            &mut scratch.row,
            &mut scratch.buckets[..k],
        );
    }

    let mut out = Vec::with_capacity(n);
    for bucket in &mut scratch.buckets[..k] {
        fisher_yates_shuffle(rng, bucket);
        out.append(bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformity::{recommended_samples, test_uniformity};
    use cgp_rng::{CountingRng, Pcg64};

    #[test]
    fn output_is_a_permutation_for_various_bucket_sizes() {
        let mut rng = Pcg64::seed_from_u64(1);
        for n in [0usize, 1, 7, 100, 10_000] {
            for bucket in [1usize, 3, 64, 100_000] {
                let mut data: Vec<u64> = (0..n as u64).collect();
                bucketed_shuffle(&mut rng, &mut data, bucket);
                let mut sorted = data.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..n as u64).collect::<Vec<u64>>(),
                    "n={n} bucket={bucket}"
                );
            }
        }
    }

    #[test]
    fn single_bucket_degenerates_to_fisher_yates() {
        // Same seed, bucket >= n: identical output to the plain shuffle.
        let n = 256usize;
        let mut a = Pcg64::seed_from_u64(9);
        let mut b = Pcg64::seed_from_u64(9);
        let mut x: Vec<u64> = (0..n as u64).collect();
        let mut y: Vec<u64> = (0..n as u64).collect();
        bucketed_shuffle(&mut a, &mut x, n);
        fisher_yates_shuffle(&mut b, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn uniform_with_multiple_buckets() {
        // n = 4 split into buckets of 2: exhaustive chi-square.
        let mut rng = Pcg64::seed_from_u64(3);
        let report = test_uniformity(4, recommended_samples(4, 300), |_| {
            let mut data: Vec<u64> = (0..4).collect();
            bucketed_shuffle(&mut rng, &mut data, 2);
            data
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
        assert!(report.covers_all_permutations());
    }

    #[test]
    fn uniform_with_uneven_last_bucket() {
        // n = 5 with bucket size 2 -> buckets of 2, 2, 1.
        let mut rng = Pcg64::seed_from_u64(4);
        let report = test_uniformity(5, recommended_samples(5, 60), |_| {
            let mut data: Vec<u64> = (0..5).collect();
            bucketed_shuffle(&mut rng, &mut data, 2);
            data
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
    }

    #[test]
    fn index_permutation_is_uniform_and_matches_the_range() {
        let mut rng = Pcg64::seed_from_u64(12);
        let perm = bucketed_index_permutation(&mut rng, 10_000, 64);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10_000).collect::<Vec<u64>>());

        let report = test_uniformity(4, recommended_samples(4, 300), |_| {
            bucketed_index_permutation(&mut rng, 4, 2)
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
        assert!(report.covers_all_permutations());
    }

    #[test]
    fn random_number_budget_stays_linear() {
        // One window-shuffle draw + one bucket-shuffle draw per item plus
        // the per-window hypergeometric rows: comfortably below 3 draws
        // per item.
        let n = 40_000usize;
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(5));
        let mut data: Vec<u64> = (0..n as u64).collect();
        bucketed_shuffle(&mut rng, &mut data, 4_096);
        assert!(
            rng.count() < 3 * n as u64,
            "used {} draws for {n} items",
            rng.count()
        );
    }

    #[test]
    fn bucket_fanout_is_capped() {
        // A degenerate bucket size may not explode into n single-item
        // buckets: the effective size is raised so at most
        // MAX_SCATTER_BUCKETS sinks exist, and the output is still a
        // permutation.
        assert_eq!(effective_bucket_items(100_000, 1), 391);
        assert_eq!(bucket_sizes(100_000, 391).len(), MAX_SCATTER_BUCKETS);
        // Small inputs are unaffected by the cap.
        assert_eq!(effective_bucket_items(4, 2), 2);

        let mut rng = Pcg64::seed_from_u64(44);
        let mut data: Vec<u64> = (0..100_000).collect();
        let mut scratch = BucketScratch::new();
        bucketed_shuffle_with(&mut rng, &mut data, 1, &mut scratch);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100_000).collect::<Vec<u64>>());
    }

    #[test]
    fn scratch_capacity_converges_across_calls() {
        // The allocation discipline the fused pipeline relies on: after the
        // first call the scratch retains every staging buffer, so repeated
        // same-shaped shuffles report a stable capacity.
        let mut rng = Pcg64::seed_from_u64(45);
        let mut scratch = BucketScratch::new();
        let mut caps = Vec::new();
        for _ in 0..3 {
            let mut data: Vec<u64> = (0..50_000).collect();
            bucketed_shuffle_with(&mut rng, &mut data, 4_096, &mut scratch);
            caps.push(scratch.retained_capacity());
        }
        assert!(caps[0] >= 50_000, "staging covers the whole payload");
        assert_eq!(caps[1], caps[2], "capacities converge after warm-up");

        // And the scratch-reusing form emits exactly what the allocating
        // form emits under the same seed.
        let mut a = Pcg64::seed_from_u64(46);
        let mut b = Pcg64::seed_from_u64(46);
        let mut x: Vec<u64> = (0..20_000).collect();
        let mut y = x.clone();
        bucketed_shuffle(&mut a, &mut x, 1_024);
        bucketed_shuffle_with(&mut b, &mut y, 1_024, &mut scratch);
        assert_eq!(x, y);
    }

    #[test]
    fn out_of_place_multiset_is_preserved_by_bucketed_shuffle() {
        let mut rng = Pcg64::seed_from_u64(6);
        let data: Vec<u32> = (0..1000).map(|i| i % 13).collect();
        let mut out = data.clone();
        bucketed_shuffle(&mut rng, &mut out, default_bucket_items::<u32>());
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn default_bucket_items_is_payload_aware() {
        assert_eq!(default_bucket_items::<u64>(), DEFAULT_BUCKET_ITEMS);
        assert_eq!(
            default_bucket_items::<u8>(),
            8 * default_bucket_items::<u64>()
        );
        assert_eq!(
            default_bucket_items::<[u64; 4]>(),
            default_bucket_items::<u64>() / 4
        );
        // Oversized payloads and ZSTs clamp to one item per bucket.
        assert_eq!(default_bucket_items::<[u8; 1 << 20]>(), 1);
        assert_eq!(
            default_bucket_items::<()>(),
            (BUCKET_L2_BUDGET_BYTES).max(1)
        );
    }

    #[test]
    fn auto_resolves_by_payload_bytes() {
        let auto = LocalShuffle::Auto;
        assert_eq!(
            auto.resolve_for::<u64>(1000),
            LocalShuffle::FisherYates,
            "small payloads stay on Fisher-Yates"
        );
        let big = AUTO_CROSSOVER_BYTES / std::mem::size_of::<u64>() + 1;
        assert_eq!(
            auto.resolve_for::<u64>(big),
            LocalShuffle::bucketed_for::<u64>(),
            "past the crossover Auto flips to payload-aware buckets"
        );
        // The crossover is measured in bytes, not items.
        assert_eq!(
            auto.resolve_for::<u8>(big),
            LocalShuffle::FisherYates,
            "the same item count in u8 is 8x smaller and stays below"
        );
        // Wide records stay on Fisher-Yates at any size: the scatter's
        // extra bulk copies lose to prefetch-friendly record swaps (E12).
        assert_eq!(
            auto.resolve_for::<[u64; 8]>(big),
            LocalShuffle::FisherYates,
            "items wider than AUTO_MAX_ITEM_BYTES never bucket"
        );
        // Explicit engines resolve to themselves (with the >= 1 clamp).
        assert_eq!(
            LocalShuffle::Bucketed { bucket_items: 0 }.resolve_for::<u64>(10),
            LocalShuffle::Bucketed { bucket_items: 1 }
        );
        assert_eq!(
            LocalShuffle::FisherYates.resolve_for::<u64>(usize::MAX),
            LocalShuffle::FisherYates
        );
    }

    #[test]
    fn auto_below_crossover_is_byte_identical_to_fisher_yates() {
        let mut a = Pcg64::seed_from_u64(21);
        let mut b = Pcg64::seed_from_u64(21);
        let mut x: Vec<u64> = (0..4096).collect();
        let mut y = x.clone();
        LocalShuffle::Auto.shuffle_vec(&mut a, &mut x);
        LocalShuffle::FisherYates.shuffle_vec(&mut b, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn engine_names_are_distinct_and_stable() {
        assert_eq!(LocalShuffle::FisherYates.name(), "fisher-yates");
        assert_eq!(
            LocalShuffle::Bucketed { bucket_items: 7 }.name(),
            "bucketed"
        );
        assert_eq!(LocalShuffle::Auto.name(), "auto");
        assert_eq!(LocalShuffle::default(), LocalShuffle::Auto);
    }

    #[test]
    fn sample_permutation_dispatches_per_engine() {
        // Fisher-Yates: identical to collect-then-shuffle.
        let mut a = Pcg64::seed_from_u64(31);
        let mut b = Pcg64::seed_from_u64(31);
        let via_engine = LocalShuffle::FisherYates.sample_permutation(&mut a, 100);
        let mut direct: Vec<u64> = (0..100).collect();
        fisher_yates_shuffle(&mut b, &mut direct);
        assert_eq!(via_engine, direct);

        // Bucketed: identical to the free index specialization.
        let mut a = Pcg64::seed_from_u64(32);
        let mut b = Pcg64::seed_from_u64(32);
        let engine = LocalShuffle::Bucketed { bucket_items: 32 };
        assert_eq!(
            engine.sample_permutation(&mut a, 1000),
            bucketed_index_permutation(&mut b, 1000, 32)
        );
    }

    #[test]
    fn bucketed_handles_non_copy_payloads() {
        let mut rng = Pcg64::seed_from_u64(40);
        let mut data: Vec<String> = (0..3000).map(|i| i.to_string()).collect();
        bucketed_shuffle(&mut rng, &mut data, 128);
        let mut sorted: Vec<u64> = data.iter().map(|s| s.parse().unwrap()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..3000).collect::<Vec<u64>>());
    }
}
