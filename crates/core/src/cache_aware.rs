//! Cache-aware sequential permutation — the paper's §6 outlook.
//!
//! The closing section of the paper observes that, because the gap between
//! CPU and memory speed keeps growing, the coarse grained decomposition can
//! also pay off *sequentially*: treat the machine's cache hierarchy like the
//! processors of a CGM, split the permutation into (a) a random
//! redistribution between `k` buckets governed by a communication matrix and
//! (b) independent local shuffles of buckets small enough to fit in cache.
//! Phase (a) writes each bucket sequentially (streaming writes instead of the
//! Fisher–Yates random writes over the whole array), and phase (b) only ever
//! touches one cache-sized bucket at a time.
//!
//! The construction mirrors Algorithm 1 exactly, with "virtual processors" =
//! buckets, so uniformity follows from the same argument (Propositions 1–2):
//! the bucket sizes are sampled from the multivariate hypergeometric law a
//! uniform permutation induces, the assignment of items to buckets given
//! those sizes is uniform, and each bucket is shuffled uniformly.
//!
//! Whether it actually beats plain Fisher–Yates depends on the machine's
//! cache/memory ratio — that is an ablation, benchmarked in
//! `cgp-bench/benches/seq_shuffle.rs` and reported in EXPERIMENTS.md.

use cgp_rng::{RandomExt, RandomSource};

use crate::sequential::fisher_yates_shuffle;

/// Default bucket size in items, chosen so that a bucket of `u64`s fits
/// comfortably in a typical L2 cache (256 KiB of payload).
pub const DEFAULT_BUCKET_ITEMS: usize = 32 * 1024;

/// Uniformly permutes `data` with the cache-aware two-phase algorithm.
///
/// `bucket_items` is the target bucket size (clamped to at least 1); the
/// number of buckets is `ceil(n / bucket_items)`.  With a single bucket the
/// algorithm degenerates to one Fisher–Yates pass.
///
/// The permutation is uniform for every choice of `bucket_items`.
pub fn cache_aware_shuffle<T, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &mut Vec<T>,
    bucket_items: usize,
) {
    let n = data.len();
    let bucket_items = bucket_items.max(1);
    let buckets = n.div_ceil(bucket_items).max(1);
    if buckets <= 1 {
        fisher_yates_shuffle(rng, data);
        return;
    }

    // Phase 0: how many items of the *output* land in each bucket — fixed by
    // the output layout (contiguous buckets covering 0..n).
    let mut target_sizes = vec![bucket_items as u64; buckets];
    *target_sizes.last_mut().expect("at least one bucket") =
        (n - (buckets - 1) * bucket_items) as u64;

    // Phase 1 (the "communication matrix" step, collapsed to a single source
    // block): the number of input items that go to each bucket *is* the
    // target size; what has to be random is which items.  Walking the input
    // once and assigning each item to a bucket with probability proportional
    // to the bucket's remaining demand realises exactly the uniform
    // assignment (this is the sequential specialisation of Algorithm 2: the
    // conditional distribution of the destination of the next item given the
    // remaining demands).
    let mut remaining = target_sizes.clone();
    let mut remaining_total = n as u64;
    // Destination bucket of every input position.
    let mut destination = vec![0u32; n];
    for dest in destination.iter_mut() {
        let mut ticket = rng.gen_range_u64(remaining_total);
        // Find the bucket owning this ticket.  `buckets` is small (n /
        // bucket_items), so a linear scan is fine and branch-predictable;
        // a Fenwick tree would shave the constant for extreme bucket counts.
        let mut chosen = buckets - 1;
        for (j, &r) in remaining.iter().enumerate() {
            if ticket < r {
                chosen = j;
                break;
            }
            ticket -= r;
        }
        *dest = chosen as u32;
        remaining[chosen] -= 1;
        remaining_total -= 1;
    }

    // Phase 2: scatter the items into their buckets with sequential writes
    // per bucket (streaming stores), then shuffle each bucket locally.
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        offsets[b + 1] = offsets[b] + target_sizes[b] as usize;
    }
    let mut cursors = offsets[..buckets].to_vec();
    let mut scratch: Vec<Option<T>> = data.drain(..).map(Some).collect();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (pos, item) in scratch.iter_mut().enumerate() {
        let b = destination[pos] as usize;
        out[cursors[b]] = item.take();
        cursors[b] += 1;
    }
    let mut result: Vec<T> = out
        .into_iter()
        .map(|slot| slot.expect("every output slot is written exactly once"))
        .collect();

    for b in 0..buckets {
        fisher_yates_shuffle(rng, &mut result[offsets[b]..offsets[b + 1]]);
    }
    *data = result;
}

/// Out-of-place convenience wrapper with the default bucket size.
pub fn cache_aware_random_permutation<T: Clone, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &[T],
) -> Vec<T> {
    let mut out = data.to_vec();
    cache_aware_shuffle(rng, &mut out, DEFAULT_BUCKET_ITEMS);
    out
}

/// The same two-phase structure, but transcribing Algorithm 1 even more
/// literally: the *input* is also split into chunks, each chunk is shuffled
/// locally first (so that "which items of the chunk go to which output
/// bucket" can be read off as consecutive runs), a row of the communication
/// matrix is sampled per chunk with the multivariate hypergeometric law, and
/// the runs are copied out with sequential writes per destination bucket.
/// Finally every output bucket is shuffled locally.
///
/// Exposed as the second point of the ablation benchmark ("row-of-matrix
/// dealing" versus the per-item ticket scatter of [`cache_aware_shuffle`]);
/// both are exactly uniform.
pub fn blocked_two_phase_shuffle<T, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &mut Vec<T>,
    bucket_items: usize,
) {
    let n = data.len();
    let bucket_items = bucket_items.max(1);
    let buckets = n.div_ceil(bucket_items).max(1);
    if buckets <= 1 {
        fisher_yates_shuffle(rng, data);
        return;
    }
    let mut target_sizes = vec![bucket_items as u64; buckets];
    *target_sizes.last_mut().expect("at least one bucket") =
        (n - (buckets - 1) * bucket_items) as u64;
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        offsets[b + 1] = offsets[b] + target_sizes[b] as usize;
    }

    let mut remaining = target_sizes;
    let mut cursors = offsets[..buckets].to_vec();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();

    let drained: Vec<T> = std::mem::take(data);
    let mut chunk: Vec<T> = Vec::with_capacity(bucket_items);
    let mut row = vec![0u64; buckets];
    let mut iter = drained.into_iter();
    loop {
        chunk.clear();
        chunk.extend(iter.by_ref().take(bucket_items));
        if chunk.is_empty() {
            break;
        }
        // Local shuffle of the source chunk, then one row of the matrix.
        fisher_yates_shuffle(rng, &mut chunk);
        cgp_hypergeom::multivariate_hypergeometric_into(
            rng,
            chunk.len() as u64,
            &remaining,
            &mut row,
        );
        // Deal consecutive runs of the shuffled chunk to the output buckets.
        let mut items = chunk.drain(..);
        for (b, &count) in row.iter().enumerate() {
            for _ in 0..count {
                let item = items.next().expect("row sums to the chunk length");
                out[cursors[b]] = Some(item);
                cursors[b] += 1;
            }
            remaining[b] -= count;
        }
    }

    let mut result: Vec<T> = out
        .into_iter()
        .map(|slot| slot.expect("every output slot is written exactly once"))
        .collect();
    for b in 0..buckets {
        fisher_yates_shuffle(rng, &mut result[offsets[b]..offsets[b + 1]]);
    }
    *data = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformity::{recommended_samples, test_uniformity};
    use cgp_rng::{CountingRng, Pcg64};

    #[test]
    fn output_is_a_permutation_for_various_bucket_sizes() {
        let mut rng = Pcg64::seed_from_u64(1);
        for n in [0usize, 1, 7, 100, 10_000] {
            for bucket in [1usize, 3, 64, 100_000] {
                let mut data: Vec<u64> = (0..n as u64).collect();
                cache_aware_shuffle(&mut rng, &mut data, bucket);
                let mut sorted = data.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..n as u64).collect::<Vec<u64>>(),
                    "n={n} bucket={bucket}"
                );
            }
        }
    }

    #[test]
    fn single_bucket_degenerates_to_fisher_yates() {
        // Same seed, bucket >= n: identical output to the plain shuffle.
        let n = 256usize;
        let mut a = Pcg64::seed_from_u64(9);
        let mut b = Pcg64::seed_from_u64(9);
        let mut x: Vec<u64> = (0..n as u64).collect();
        let mut y: Vec<u64> = (0..n as u64).collect();
        cache_aware_shuffle(&mut a, &mut x, n);
        fisher_yates_shuffle(&mut b, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn uniform_with_multiple_buckets() {
        // n = 4 split into buckets of 2: exhaustive chi-square.
        let mut rng = Pcg64::seed_from_u64(3);
        let report = test_uniformity(4, recommended_samples(4, 300), |_| {
            let mut data: Vec<u64> = (0..4).collect();
            cache_aware_shuffle(&mut rng, &mut data, 2);
            data
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
        assert!(report.covers_all_permutations());
    }

    #[test]
    fn uniform_with_uneven_last_bucket() {
        // n = 5 with bucket size 2 -> buckets of 2, 2, 1.
        let mut rng = Pcg64::seed_from_u64(4);
        let report = test_uniformity(5, recommended_samples(5, 60), |_| {
            let mut data: Vec<u64> = (0..5).collect();
            cache_aware_shuffle(&mut rng, &mut data, 2);
            data
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
    }

    #[test]
    fn random_number_budget_stays_linear() {
        // One ticket per item + one draw per item inside the bucket shuffles
        // (plus Lemire rejections): comfortably below 3 draws per item.
        let n = 40_000usize;
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(5));
        let mut data: Vec<u64> = (0..n as u64).collect();
        cache_aware_shuffle(&mut rng, &mut data, 4_096);
        assert!(
            rng.count() < 3 * n as u64,
            "used {} draws for {n} items",
            rng.count()
        );
    }

    #[test]
    fn out_of_place_wrapper_matches_multiset() {
        let mut rng = Pcg64::seed_from_u64(6);
        let data: Vec<u32> = (0..1000).map(|i| i % 13).collect();
        let out = cache_aware_random_permutation(&mut rng, &data);
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn blocked_variant_is_a_permutation_and_uniform() {
        let mut rng = Pcg64::seed_from_u64(7);
        let mut data: Vec<u64> = (0..500).collect();
        blocked_two_phase_shuffle(&mut rng, &mut data, 64);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<u64>>());

        let report = test_uniformity(4, recommended_samples(4, 200), |_| {
            let mut d: Vec<u64> = (0..4).collect();
            blocked_two_phase_shuffle(&mut rng, &mut d, 2);
            d
        });
        assert!(report.is_uniform_at(0.001), "{:?}", report.chi_square);
    }
}
