//! The reference sequential algorithm.
//!
//! The PRO model measures a parallel algorithm against a fixed sequential
//! reference; for random permutations that reference is the Fisher–Yates
//! (Knuth) shuffle: one pass, one bounded random integer per position,
//! `O(n)` time and `O(1)` extra space.  Its only weakness — and the paper's
//! opening motivation — is its unpredictable memory access pattern, which
//! makes it memory-bandwidth bound (experiment E1 measures the cycles per
//! item).

use cgp_rng::{RandomExt, RandomSource};

/// In-place Fisher–Yates shuffle (Durstenfeld variant).
///
/// Uses exactly one bounded random integer per position beyond the first.
pub fn fisher_yates_shuffle<T, R: RandomSource + ?Sized>(rng: &mut R, data: &mut [T]) {
    rng.shuffle(data);
}

/// Out-of-place uniform random permutation: returns a new vector containing
/// the elements of `data` in uniformly random order.
///
/// This is the operation whose cost per item the paper reports (60–100
/// cycles per `long int` on year-2002 hardware); the out-of-place variant is
/// also the natural shape for the "permute into differently-sized target
/// blocks" generalisation.
pub fn sequential_random_permutation<T: Clone, R: RandomSource + ?Sized>(
    rng: &mut R,
    data: &[T],
) -> Vec<T> {
    let mut out: Vec<T> = data.to_vec();
    fisher_yates_shuffle(rng, &mut out);
    out
}

/// Generates a uniformly random permutation of `0..n` as indices — the
/// "permutation as data" view used by uniformity tests.
pub fn random_index_permutation<R: RandomSource + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    let mut idx: Vec<u64> = (0..n as u64).collect();
    fisher_yates_shuffle(rng, &mut idx);
    idx
}

/// Applies an index permutation to owned data by *moving* every item to its
/// target position: `out[i] = data[perm[i]]`.
///
/// This is the local gather of the index-permutation fast path: sample a
/// permutation of `0..n` once (e.g. with
/// [`crate::Permuter::sample_permutation`], which runs the parallel
/// algorithm on the indices), then rearrange any same-length payload locally
/// — no `Clone` and no `Send` required.  `O(n)` time; the items pass through
/// a transient `n`-slot side buffer (which also detects duplicate indices).
///
/// # Panics
/// Panics if `perm` and `data` have different lengths, or if `perm` is not a
/// permutation of `0..n` (an out-of-range or duplicate index).
pub fn apply_permutation<T>(perm: &[u64], data: Vec<T>) -> Vec<T> {
    assert_eq!(
        perm.len(),
        data.len(),
        "the permutation length must match the data length"
    );
    let n = data.len();
    let mut slots: Vec<Option<T>> = data.into_iter().map(Some).collect();
    perm.iter()
        .map(|&idx| {
            assert!((idx as usize) < n, "index {idx} out of range for {n} items");
            slots[idx as usize]
                .take()
                .unwrap_or_else(|| panic!("duplicate index {idx}: not a permutation"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_rng::{CountingRng, Pcg64};
    use cgp_stats::chi_square::chi_square_uniform;
    use cgp_stats::{factorial, permutation_rank};

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut v: Vec<u32> = (0..500).map(|i| i % 7).collect();
        let mut expected = v.clone();
        fisher_yates_shuffle(&mut rng, &mut v);
        let mut got = v.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn out_of_place_leaves_input_untouched() {
        let mut rng = Pcg64::seed_from_u64(2);
        let data: Vec<u64> = (0..100).collect();
        let permuted = sequential_random_permutation(&mut rng, &data);
        assert_eq!(data, (0..100).collect::<Vec<u64>>());
        let mut sorted = permuted.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, data);
    }

    #[test]
    fn random_number_budget_is_linear() {
        let n = 50_000usize;
        let mut rng = CountingRng::new(Pcg64::seed_from_u64(3));
        let _ = random_index_permutation(&mut rng, n);
        assert!(rng.count() >= (n - 1) as u64);
        assert!(rng.count() < (n as u64 * 11) / 10);
    }

    #[test]
    fn small_permutations_are_uniform() {
        // Exhaustive chi-square over all 4! = 24 permutations.
        let n = 4usize;
        let reps = 48_000u64;
        let mut rng = Pcg64::seed_from_u64(4);
        let mut counts = vec![0u64; factorial(n) as usize];
        for _ in 0..reps {
            let perm = random_index_permutation(&mut rng, n);
            let as_u32: Vec<u32> = perm.iter().map(|&x| x as u32).collect();
            counts[permutation_rank(&as_u32) as usize] += 1;
        }
        let outcome = chi_square_uniform(&counts);
        assert!(
            outcome.is_consistent_at(0.001),
            "Fisher-Yates failed uniformity: {outcome:?}"
        );
    }

    #[test]
    fn apply_permutation_gathers_without_clone() {
        #[derive(Debug, PartialEq)]
        struct Heavy(Box<u64>);
        let data: Vec<Heavy> = (0..6).map(|i| Heavy(Box::new(i))).collect();
        let perm = [2u64, 0, 5, 1, 4, 3];
        let out = apply_permutation(&perm, data);
        let values: Vec<u64> = out.iter().map(|h| *h.0).collect();
        assert_eq!(values, vec![2, 0, 5, 1, 4, 3]);
    }

    #[test]
    fn apply_permutation_matches_index_semantics() {
        // Applying a permutation to the identity reproduces the permutation.
        let mut rng = Pcg64::seed_from_u64(9);
        let perm = random_index_permutation(&mut rng, 64);
        let identity: Vec<u64> = (0..64).collect();
        assert_eq!(apply_permutation(&perm, identity), perm);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn apply_permutation_rejects_duplicates() {
        let _ = apply_permutation(&[0, 0], vec!['a', 'b']);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_permutation_rejects_out_of_range() {
        let _ = apply_permutation(&[0, 7], vec!['a', 'b']);
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = Pcg64::seed_from_u64(5);
        assert!(random_index_permutation(&mut rng, 0).is_empty());
        assert_eq!(random_index_permutation(&mut rng, 1), vec![0]);
        let empty: Vec<u8> = sequential_random_permutation(&mut rng, &[]);
        assert!(empty.is_empty());
    }
}
