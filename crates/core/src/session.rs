//! Steady-state permutation sessions over a resident CGM worker pool.
//!
//! A [`crate::Permuter`] is a *configuration*; every call to its one-shot
//! methods builds a fresh [`cgp_cgm::CgmMachine`], which spawns `p` OS
//! threads and wires up the `p²` channel fabric per call.  A
//! [`PermutationSession`] is the *steady-state* counterpart: it owns a
//! [`ResidentCgm`] (threads spawned once, parked between jobs) **and** a
//! [`PermuteScratch`] (block and exchange buffers recycled across calls), so
//! repeated permutations make
//!
//! * no thread spawns,
//! * no channel construction, and
//! * no per-item allocations once the scratch is warm —
//!
//! only the `O(p)` bookkeeping, the sampled `p × p` matrix and the channel
//! envelopes of each call remain.
//!
//! # When to use one-shot vs. session
//!
//! * **One-shot** ([`crate::Permuter::permute`] and friends): a handful of
//!   permutations, or permutations of types `T` that differ per call.  The
//!   startup cost is paid per call but nothing stays resident.
//! * **Session** ([`crate::Permuter::session`]): a loop or service that
//!   permutes many vectors of one payload type.  Startup is paid once;
//!   per-call latency drops accordingly (experiment E9 / `exp_resident`
//!   measures the gap).  The pool's worker threads stay parked (blocking
//!   channel receives, no spin) between calls, so an idle session costs no
//!   CPU.
//!
//! # Determinism
//!
//! A session produces **exactly** the permutations the one-shot path
//! produces for the same configuration: every random stream of Algorithm 1
//! is derived from the machine seed per call, never from pool state.  (The
//! resident workers' private `ctx.rng()` streams do advance across jobs,
//! but the permutation engine deliberately draws from per-call derived
//! streams — see `exchange_engine` and `MatrixCtx::sampling_rng` —
//! precisely so substrate and history cannot change the sampled
//! permutation.)  The same argument covers the transport substrate: a
//! session over [`cgp_cgm::TransportKind::Process`] (set via
//! [`crate::Permuter::transport`]) emits the byte-identical permutations,
//! with the pool's mailboxes living in child processes.
//!
//! # One job, zero spawns — for every backend
//!
//! Algorithm 1 runs **fused**: matrix sampling happens in-context on the
//! word plane of the same resident workers that shuffle and exchange the
//! data (see the [`crate::parallel`] module docs), so a steady-state
//! session permutation makes zero thread spawns and zero channel-fabric
//! constructions for *all four* matrix backends — including
//! `ParallelLog`/`ParallelOptimal`, which used to sample on a freshly
//! spawned one-shot machine per call.  The `cgp_cgm::diag` startup
//! counters make this assertable in tests.

use crate::cache_aware::LocalShuffle;
use crate::config::{Algorithm, EngineConfig, PermuteOptions};
use crate::parallel::{permute_vec_into_with, PermutationReport, PermuteScratch};
use cgp_cgm::{CgmError, ResidentCgm};

/// A resident permutation session: a worker pool plus recycled buffers,
/// produced by [`crate::Permuter::session`].
///
/// ```
/// use cgp_core::Permuter;
///
/// let permuter = Permuter::new(4).seed(9);
/// let mut session = permuter.session::<u64>();
/// let reference = permuter.permute((0..1_000u64).collect()).0;
/// for _ in 0..3 {
///     let mut data: Vec<u64> = (0..1_000).collect();
///     session.permute_into(&mut data);
///     // Same seed ⇒ the session matches the one-shot path exactly.
///     assert_eq!(data, reference);
/// }
/// ```
pub struct PermutationSession<T: Send + 'static> {
    pool: ResidentCgm<T>,
    scratch: PermuteScratch<T>,
    options: PermuteOptions,
    engine: EngineConfig,
}

impl<T: Send + 'static> PermutationSession<T> {
    /// Builds a session: spawns the resident workers for `engine` (or
    /// reports [`CgmError::NoProcessors`]) and starts with a cold scratch.
    /// `options` carries the per-surface extras (matrix backend,
    /// `keep_matrix`) on top of the engine's own per-job half.
    pub(crate) fn create(engine: EngineConfig, options: PermuteOptions) -> Result<Self, CgmError> {
        Ok(PermutationSession {
            pool: ResidentCgm::try_new(engine.try_cgm_config()?)?,
            scratch: PermuteScratch::new(),
            options,
            engine,
        })
    }

    /// The engine-selection core this session's pool was opened with —
    /// push it through [`crate::Permuter::from_engine`] or
    /// [`crate::service::ServiceConfig::from_engine`] to stand up another
    /// surface producing the identical permutations.
    pub fn engine(&self) -> EngineConfig {
        self.engine
    }

    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.pool.procs()
    }

    /// The master seed every per-call random stream is derived from.
    pub fn seed(&self) -> u64 {
        self.engine.seed
    }

    /// The local-shuffle engine this session's jobs run with (set via
    /// [`crate::Permuter::local_shuffle`] before opening the session).
    pub fn local_shuffle(&self) -> LocalShuffle {
        self.options.local_shuffle
    }

    /// The permutation engine this session's jobs run with (set via
    /// [`crate::Permuter::algorithm`] before opening the session).
    pub fn algorithm(&self) -> Algorithm {
        self.options.algorithm
    }

    /// Uniformly permutes `data` in place on the resident pool, recycling
    /// the session's buffers.  Produces exactly the same permutation as
    /// [`crate::Permuter::permute`] for the same configuration.
    pub fn permute_into(&mut self, data: &mut Vec<T>) -> PermutationReport {
        permute_vec_into_with(&mut self.pool, data, &self.options, &mut self.scratch)
    }

    /// Owned-vector convenience over [`PermutationSession::permute_into`].
    pub fn permute(&mut self, mut data: Vec<T>) -> (Vec<T>, PermutationReport) {
        let report = self.permute_into(&mut data);
        (data, report)
    }

    /// Total buffer capacity (in items) currently retained by the session's
    /// scratch — converges after the warm-up calls (see [`PermuteScratch`]).
    pub fn retained_capacity(&self) -> usize {
        self.scratch.retained_capacity()
    }

    /// Shuts the resident pool down, joining every worker thread (also
    /// happens on drop; this form makes the join point explicit).
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl PermutationSession<u64> {
    /// Generates a uniformly random permutation of `0..n` (as indices) on
    /// the resident pool — the session counterpart of
    /// [`crate::Permuter::sample_permutation`], producing the identical
    /// permutation for the same configuration.  Pair with
    /// [`crate::apply_permutation`] to rearrange non-`Send` payloads.
    pub fn sample_permutation(&mut self, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        self.sample_permutation_into(n, &mut out);
        out
    }

    /// Buffer-reusing variant of
    /// [`PermutationSession::sample_permutation`]: writes the index
    /// permutation into `out` (cleared first), so a steady-state sampling
    /// loop reuses one allocation across calls.
    ///
    /// Under [`Algorithm::Darts`] the indices come straight off the dart
    /// board — the engine's native mode, with no identity vector staged
    /// through the payload plumbing.  Under [`Algorithm::Gustedt`] the
    /// identity is built in `out` and permuted in place through the
    /// session's recycled scratch.  Either way the result is byte-identical
    /// to the one-shot [`crate::Permuter::sample_permutation`] for the same
    /// configuration.
    pub fn sample_permutation_into(&mut self, n: usize, out: &mut Vec<u64>) {
        if let Algorithm::Darts { target_factor } = self.options.algorithm {
            crate::darts::darts_index_into(&mut self.pool, n, target_factor, out)
                .unwrap_or_else(|e| panic!("{e}"));
            return;
        }
        out.clear();
        out.extend(0..n as u64);
        permute_vec_into_with(&mut self.pool, out, &self.options, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use crate::{MatrixBackend, Permuter};

    #[test]
    fn session_matches_one_shot_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let permuter = Permuter::new(3).seed(17).backend(backend);
            let reference = permuter.permute((0..300u64).collect()).0;
            let mut session = permuter.session::<u64>();
            for round in 0..3 {
                let (out, _) = session.permute((0..300u64).collect());
                assert_eq!(out, reference, "{backend:?} diverged in round {round}");
            }
        }
    }

    #[test]
    fn session_sample_permutation_matches_permuter() {
        let permuter = Permuter::new(4).seed(23);
        let mut session = permuter.session::<u64>();
        assert_eq!(
            session.sample_permutation(257),
            permuter.sample_permutation(257)
        );
    }

    #[test]
    fn session_matches_one_shot_for_every_local_shuffle_engine() {
        use crate::cache_aware::LocalShuffle;
        for engine in [
            LocalShuffle::FisherYates,
            LocalShuffle::Bucketed { bucket_items: 32 },
            LocalShuffle::Auto,
        ] {
            let permuter = Permuter::new(3).seed(29).local_shuffle(engine);
            let reference = permuter.permute((0..300u64).collect()).0;
            let mut session = permuter.session::<u64>();
            assert_eq!(session.local_shuffle(), engine);
            let (out, report) = session.permute((0..300u64).collect());
            assert_eq!(out, reference, "{} diverged", engine.name());
            assert_eq!(report.local_shuffle, engine);
        }
    }

    #[test]
    fn session_reports_meter_each_call() {
        let permuter = Permuter::new(4).seed(3);
        let mut session = permuter.session::<u64>();
        for _ in 0..3 {
            let mut data: Vec<u64> = (0..800).collect();
            let report = session.permute_into(&mut data);
            assert_eq!(
                report.max_exchange_volume(),
                2 * 800 / 4,
                "per-job metrics must not accumulate across session calls"
            );
        }
    }

    #[test]
    fn session_shutdown_is_clean() {
        let permuter = Permuter::new(2).seed(1);
        let mut session = permuter.session::<String>();
        let (out, _) = session.permute(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(out.len(), 2);
        session.shutdown();
    }
}
