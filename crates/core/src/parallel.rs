//! Algorithm 1 — the parallel random permutation.
//!
//! ```text
//! foreach P_i:  permute B_i locally                     (superstep 1)
//! choose A = (a_ij) according to Problem 2              (matrix phase)
//! foreach P_i:  send a_ij items to P'_j for every j     (superstep 2)
//! foreach P'_j: receive a_ij items from every P_i
//! foreach P'_j: permute B'_j locally                    (superstep 3)
//! ```
//!
//! Correctness (Propositions 1–2): the first local shuffle makes the choice
//! of *which* items travel from `B_i` to `B'_j` uniform among all
//! `a_ij`-subsets, the final local shuffle makes the arrangement inside every
//! target block uniform, and the matrix `A` is sampled with the probability
//! a uniform permutation would induce — so every permutation is equally
//! likely.
//!
//! Balance and work-optimality (Proposition 1): every processor touches only
//! its own `m_i` (resp. `m'_j`) items plus the `O(p)` row of `A`, and the
//! exchange is a single h-relation whose per-processor volume is exactly
//! `m_i + m'_j`.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::config::{MatrixBackend, PermuteOptions};
use crate::sequential::fisher_yates_shuffle;
use cgp_cgm::{BlockDistribution, CgmMachine, MachineMetrics};
use cgp_matrix::{
    sample_parallel_log, sample_parallel_optimal, sample_recursive, sample_sequential, CommMatrix,
};
use cgp_rng::SeedSequence;

/// What happened during one parallel permutation: timings, metered
/// communication, and (optionally) the sampled communication matrix.
#[derive(Debug)]
pub struct PermutationReport {
    /// Which matrix-sampling backend was used.
    pub backend: MatrixBackend,
    /// Wall-clock time spent sampling the communication matrix.
    pub matrix_elapsed: Duration,
    /// Wall-clock time of the shuffle + exchange + shuffle phase.
    pub exchange_elapsed: Duration,
    /// Metered communication of the matrix phase (parallel backends only;
    /// the sequential backends run outside the machine).
    pub matrix_metrics: Option<MachineMetrics>,
    /// Metered communication of the data-exchange phase.
    pub exchange_metrics: MachineMetrics,
    /// The sampled communication matrix, if `keep_matrix` was requested.
    pub matrix: Option<CommMatrix>,
}

impl PermutationReport {
    /// Total wall-clock time (matrix sampling + exchange).
    pub fn total_elapsed(&self) -> Duration {
        self.matrix_elapsed + self.exchange_elapsed
    }

    /// Maximum communication volume (words sent + received) over all
    /// processors during the data exchange — the quantity Theorem 1 bounds
    /// by `O(m)`.
    pub fn max_exchange_volume(&self) -> u64 {
        self.exchange_metrics.max_comm_volume()
    }
}

/// Permutes a block-distributed vector.
///
/// `blocks[i]` is the block `B_i` held by processor `i` (so `blocks.len()`
/// must equal the machine's processor count).  The result is the permuted
/// vector in the same block structure unless `options.target_sizes`
/// prescribes different target block sizes `m'_j`.
///
/// Every permutation of the `n` input items into the target blocks is
/// equally likely (Theorem 1), provided the underlying generator is sound.
///
/// # Panics
/// Panics if `blocks.len()` differs from the machine size or the target
/// sizes do not sum to `n`.
pub fn permute_blocks<T: Send + Clone>(
    machine: &CgmMachine,
    blocks: Vec<Vec<T>>,
    options: &PermuteOptions,
) -> (Vec<Vec<T>>, PermutationReport) {
    let p = machine.procs();
    assert_eq!(blocks.len(), p, "one block per processor is required");
    let source_sizes: Vec<u64> = blocks.iter().map(|b| b.len() as u64).collect();
    let n: u64 = source_sizes.iter().sum();
    let target_sizes: Vec<u64> = match &options.target_sizes {
        Some(sizes) => {
            assert_eq!(
                sizes.iter().sum::<u64>(),
                n,
                "target block sizes must sum to the number of items"
            );
            sizes.clone()
        }
        None => source_sizes.clone(),
    };
    let p_prime = target_sizes.len();

    // ----- Phase A: sample the communication matrix --------------------
    let matrix_started = Instant::now();
    let seeds = SeedSequence::new(machine.config().seed);
    let mut matrix_rng = seeds.named_stream("communication-matrix");
    let (matrix, matrix_metrics) = match options.backend {
        MatrixBackend::Sequential => (
            sample_sequential(&mut matrix_rng, &source_sizes, &target_sizes),
            None,
        ),
        MatrixBackend::Recursive => (
            sample_recursive(&mut matrix_rng, &source_sizes, &target_sizes),
            None,
        ),
        MatrixBackend::ParallelLog => {
            let (m, metrics) = sample_parallel_log(machine, &source_sizes, &target_sizes);
            (m, Some(metrics))
        }
        MatrixBackend::ParallelOptimal => {
            let (m, metrics) = sample_parallel_optimal(machine, &source_sizes, &target_sizes);
            (m, Some(metrics))
        }
    };
    let matrix_elapsed = matrix_started.elapsed();
    debug_assert!(matrix.check_marginals(&source_sizes, &target_sizes).is_ok());

    // ----- Phase B: local shuffle, all-to-all exchange, local shuffle ---
    let exchange_started = Instant::now();
    // Hand each virtual processor ownership of its block through a slot
    // vector (the closure is shared between threads, so interior mutability
    // with exclusive take() per processor id is the simplest safe hand-off).
    let slots: Vec<Mutex<Option<Vec<T>>>> =
        blocks.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let matrix_ref = &matrix;

    let outcome = machine.run(|ctx| {
        let id = ctx.id();
        let p = ctx.procs();
        // The parallel matrix backends already consumed the processors'
        // default streams inside their own machine.run; the local shuffles
        // must be statistically independent of the sampled matrix, so this
        // phase derives its own per-processor streams from the master seed.
        let mut shuffle_rng = ctx.seeds().child_sequence(0x5AFE_B10C).proc_stream(id);

        // Superstep 1: local shuffle of the own block.
        ctx.superstep();
        let mut block = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");
        fisher_yates_shuffle(&mut shuffle_rng, &mut block);

        // Superstep 2: cut the shuffled block according to row `id` of A and
        // exchange.  Because the block was just shuffled, taking consecutive
        // runs of length a_ij is a uniformly random choice of which items go
        // where.
        ctx.superstep();
        let mut outgoing: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut cursor = 0usize;
        let row = matrix_ref.row(id);
        // When there are more target blocks than processors, the extra
        // columns are folded onto the processors round-robin; the common case
        // p' == p sends column j to processor j.
        assert_eq!(
            row.len(),
            p,
            "permute_blocks requires as many target blocks as processors; \
             use cgp-matrix directly for rectangular redistributions"
        );
        for &count in row {
            let next = cursor + count as usize;
            outgoing.push(block[cursor..next].to_vec());
            cursor = next;
        }
        debug_assert_eq!(cursor, block.len());
        drop(block);
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);

        // Superstep 3: concatenate what was received and shuffle it locally.
        ctx.superstep();
        let mut new_block: Vec<T> =
            Vec::with_capacity(incoming.iter().map(|v| v.len()).sum::<usize>());
        for part in incoming {
            new_block.extend(part);
        }
        fisher_yates_shuffle(&mut shuffle_rng, &mut new_block);
        new_block
    });

    let (new_blocks, exchange_metrics) = outcome.into_parts();
    let exchange_elapsed = exchange_started.elapsed();

    // Sanity: the produced blocks have the prescribed target sizes.
    debug_assert_eq!(
        new_blocks
            .iter()
            .map(|b| b.len() as u64)
            .collect::<Vec<_>>(),
        target_sizes[..p_prime.min(p)].to_vec()
    );

    let report = PermutationReport {
        backend: options.backend,
        matrix_elapsed,
        exchange_elapsed,
        matrix_metrics,
        exchange_metrics,
        matrix: if options.keep_matrix {
            Some(matrix)
        } else {
            None
        },
    };
    (new_blocks, report)
}

/// Convenience wrapper: splits `data` evenly over the machine's processors,
/// permutes, and concatenates the result back into a single vector.
pub fn permute_vec<T: Send + Clone>(
    machine: &CgmMachine,
    data: Vec<T>,
    options: &PermuteOptions,
) -> (Vec<T>, PermutationReport) {
    let p = machine.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    let blocks = dist.split_vec(data);
    let mut options = options.clone();
    if options.target_sizes.is_none() {
        options.target_sizes = Some(dist.sizes().to_vec());
    }
    let (blocks, report) = permute_blocks(machine, blocks, &options);
    let out_dist = BlockDistribution::from_sizes(blocks.iter().map(|b| b.len() as u64).collect());
    (out_dist.concat_vec(blocks), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::CgmConfig;

    fn is_permutation_of_identity(v: &[u64]) -> bool {
        let mut seen = vec![false; v.len()];
        for &x in v {
            if x as usize >= v.len() || seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn output_is_always_a_permutation_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let machine = CgmMachine::new(CgmConfig::new(6).with_seed(42));
            let data: Vec<u64> = (0..600).collect();
            let (out, report) = permute_vec(&machine, data, &PermuteOptions::with_backend(backend));
            assert!(
                is_permutation_of_identity(&out),
                "{backend:?} did not produce a permutation"
            );
            assert_eq!(report.backend, backend);
        }
    }

    #[test]
    fn uneven_blocks_and_different_target_sizes() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(7));
        let blocks = vec![
            (0..10u64).collect::<Vec<_>>(),
            (10..15u64).collect::<Vec<_>>(),
            (15..30u64).collect::<Vec<_>>(),
        ];
        let options = PermuteOptions::default()
            .keep_matrix()
            .target_sizes(vec![12, 12, 6]);
        let (out, report) = permute_blocks(&machine, blocks, &options);
        assert_eq!(out[0].len(), 12);
        assert_eq!(out[1].len(), 12);
        assert_eq!(out[2].len(), 6);
        let mut all: Vec<u64> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<u64>>());
        let matrix = report.matrix.expect("matrix was requested");
        matrix.check_marginals(&[10, 5, 15], &[12, 12, 6]).unwrap();
    }

    #[test]
    fn exchange_volume_is_balanced_and_linear_in_m() {
        // Theorem 1: O(m) communication volume per processor.  Each processor
        // sends its m items and receives its m' items (plus nothing else).
        let p = 8usize;
        let m = 500usize;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
        let data: Vec<u64> = (0..(p * m) as u64).collect();
        let (_, report) = permute_vec(&machine, data, &PermuteOptions::default());
        for proc in &report.exchange_metrics.per_proc {
            assert_eq!(proc.words_sent, m as u64);
            assert_eq!(proc.words_received, m as u64);
        }
        assert!((report.exchange_metrics.comm_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_machine_seed() {
        let run = |seed: u64| {
            let machine = CgmMachine::new(CgmConfig::new(4).with_seed(seed));
            let data: Vec<u64> = (0..256).collect();
            permute_vec(&machine, data, &PermuteOptions::default()).0
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn single_processor_reduces_to_a_local_shuffle() {
        let machine = CgmMachine::new(CgmConfig::new(1).with_seed(5));
        let data: Vec<u64> = (0..100).collect();
        let (out, report) = permute_vec(&machine, data, &PermuteOptions::default());
        assert!(is_permutation_of_identity(&out));
        assert_eq!(report.exchange_metrics.total_messages(), 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(1));
        let (out, _) = permute_vec(&machine, Vec::<u64>::new(), &PermuteOptions::default());
        assert!(out.is_empty());
        let (out, _) = permute_vec(&machine, vec![42u64], &PermuteOptions::default());
        assert_eq!(out, vec![42]);
        let (out, _) = permute_vec(&machine, vec![1u64, 2], &PermuteOptions::default());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn clone_heavy_payload_type() {
        // The item type only needs Clone + Send; use a String payload to make
        // sure nothing assumes Copy.
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(9));
        let data: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, _) = permute_vec(&machine, data.clone(), &PermuteOptions::default());
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one block per processor")]
    fn wrong_block_count_panics() {
        let machine = CgmMachine::with_procs(3);
        let _ = permute_blocks(
            &machine,
            vec![vec![1u64], vec![2u64]],
            &PermuteOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "must sum to the number of items")]
    fn bad_target_sizes_panic() {
        let machine = CgmMachine::with_procs(2);
        let options = PermuteOptions::default().target_sizes(vec![1, 1]);
        let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64]], &options);
    }
}
