//! Algorithm 1 — the parallel random permutation, fused into **one job on
//! one executor**.
//!
//! ```text
//! foreach P_i:  permute B_i locally                     (superstep 1)
//! choose A = (a_ij) according to Problem 2              (matrix phase)
//! foreach P_i:  send a_ij items to P'_j for every j     (superstep 2)
//! foreach P'_j: receive a_ij items from every P_i
//! foreach P'_j: permute B'_j locally                    (superstep 3)
//! ```
//!
//! Correctness (Propositions 1–2): the first local shuffle makes the choice
//! of *which* items travel from `B_i` to `B'_j` uniform among all
//! `a_ij`-subsets, the final local shuffle makes the arrangement inside every
//! target block uniform, and the matrix `A` is sampled with the probability
//! a uniform permutation would induce — so every permutation is equally
//! likely.
//!
//! Balance and work-optimality (Proposition 1): every processor touches only
//! its own `m_i` (resp. `m'_j`) items plus the `O(p)` row of `A`, and the
//! exchange is a single h-relation whose per-processor volume is exactly
//! `m_i + m'_j`.
//!
//! # The fused single-program pipeline
//!
//! In the paper Algorithm 1 is *one* CGM program: the same `p` processors
//! shuffle, sample the communication matrix (Algorithms 3–6), exchange, and
//! shuffle again.  This engine runs it the same way: a **single**
//! [`CgmExecutor::run_job`] in which every worker
//!
//! 1. shuffles its own block (superstep 1) — the shuffle is independent of
//!    the matrix, so on the workers that are not (yet) involved in matrix
//!    rounds it *overlaps* the sampling instead of serializing behind it;
//! 2. participates in **in-context matrix sampling** on the machine's word
//!    plane ([`cgp_cgm::MatrixCtx`]): the two front-end backends
//!    (`Sequential`/`Recursive`) sample the full matrix on processor 0 and
//!    scatter the rows, as the paper prescribes; the parallel backends run
//!    Algorithms 5/6 across all workers — each worker ends up holding its
//!    own row of `A`;
//! 3. cuts its shuffled block along that row, runs the all-to-all exchange
//!    on the data plane, concatenates and re-shuffles (supersteps 2–3).
//!
//! No second machine is ever built: on a [`cgp_cgm::ResidentCgm`]-backed
//! [`crate::PermutationSession`] a steady-state permutation therefore makes
//! **zero thread spawns and zero channel-fabric constructions** for *every*
//! backend, including `ParallelLog`/`ParallelOptimal` (which previously
//! sampled on a freshly spawned one-shot machine per call).  The two
//! transport planes keep the phases separately metered:
//! [`PermutationReport::matrix_metrics`] carries the word-plane (matrix)
//! traffic, [`PermutationReport::exchange_metrics`] the data-plane
//! (payload) traffic.
//!
//! The engine is transport-generic by construction: it speaks only through
//! [`CgmExecutor`], and the fabric underneath is opened on whatever
//! [`cgp_cgm::TransportKind`] the machine's config selects — in-process
//! channels (the zero-overhead default) or per-processor mailbox child
//! processes over Unix domain sockets.  Both substrates produce the
//! byte-identical permutation for the same seed (every random stream is
//! derived from the machine seed per call); the process substrate
//! additionally meters the frame bytes it put on the wire
//! ([`cgp_cgm::MachineMetrics::wire_volume`]).
//!
//! ## Backend selection at a glance
//!
//! The matrix phase only ever handles `O(p·p')` words, so at small `p` the
//! default `Sequential` backend (what the paper's own experiments used) is
//! usually fastest: one worker samples a tiny matrix while the others
//! overlap their superstep-1 shuffle, and no matrix-phase envelopes beyond
//! the row scatter are exchanged.  The parallel backends pay `⌈log₂ p⌉`
//! word-plane rounds of latency to cut the *head's* work from `O(p²)`
//! (`Sequential`) to `Θ(p log p)` (`ParallelLog`, Algorithm 5) or the
//! cost-optimal `Θ(p)` (`ParallelOptimal`, Algorithm 6) — they win once
//! `p²` work on one processor rivals `m = n/p` work on all of them, i.e.
//! for large machines or small blocks.  Measure with `exp_crossover` /
//! `exp_fused` on your host when in doubt.
//!
//! # Zero-copy exchange
//!
//! The data-exchange phase is **move-based end to end**: the shuffled block
//! is cut into the `a_ij` runs by draining its tail (each item is moved
//! exactly once, never cloned), the payload vectors travel through
//! [`cgp_cgm::Communicator::all_to_all`] by value, and the receive side
//! concatenates with `Vec::append` into a buffer pre-sized from the
//! prescribed target size `m'_j` — so `O(m)` memory per processor holds with
//! a constant factor of one, matching Theorem 1's cost model.  Consequently
//! the item type only needs to be `Send`; `Clone` is *not* required.
//!
//! Callers that permute repeatedly can go further and recycle every
//! intermediate allocation across calls with [`permute_vec_into`] and a
//! [`PermuteScratch`]; callers whose payloads are not `Send` (or are too
//! heavy to ship through channels) can permute indices once with
//! [`crate::Permuter::sample_permutation`] and gather locally with
//! [`crate::apply_permutation`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::cache_aware::{BucketScratch, LocalShuffle};
use crate::config::{FaultPhase, MatrixBackend, PermuteOptions};
use cgp_cgm::{BlockDistribution, CgmError, CgmExecutor, CgmMachine, MachineMetrics};
use cgp_matrix::{
    sample_parallel_log_ctx, sample_parallel_optimal_ctx, sample_recursive_ctx,
    sample_sequential_ctx, CommMatrix,
};

/// What happened during one parallel permutation: timings, per-phase
/// metered communication, and (optionally) the sampled communication
/// matrix.
///
/// Since the pipeline is fused into one run, the phase timings are
/// measured **in-run** (each worker clocks its own phases; the report
/// carries the maximum over workers) and the phases can overlap — the
/// superstep-1 shuffle of an idle worker proceeds while the head still
/// samples.  [`PermutationReport::total_elapsed`] is therefore the
/// *measured wall-clock of the whole run*, not the sum of the phase
/// durations (which could double-count overlap).
#[derive(Debug)]
pub struct PermutationReport {
    /// Which matrix-sampling backend was used.
    pub backend: MatrixBackend,
    /// Which local-shuffle engine the options requested (possibly
    /// [`LocalShuffle::Auto`]; the engine resolves it once against the
    /// job's total payload size and type — see
    /// [`crate::cache_aware::AUTO_CROSSOVER_BYTES`]).
    pub local_shuffle: LocalShuffle,
    /// In-run wall-clock time of the matrix phase: the maximum over
    /// workers of the time spent inside the in-context sampler.
    pub matrix_elapsed: Duration,
    /// In-run wall-clock time of the data phase: the maximum over workers
    /// of the time spent in the shuffle + cut + exchange + shuffle steps.
    pub exchange_elapsed: Duration,
    /// In-run wall-clock time of the local shuffles alone: the maximum
    /// over workers of superstep-1 plus superstep-3 shuffle time.  This is
    /// a *subset* of [`PermutationReport::exchange_elapsed`] (the data
    /// phase contains both shuffle passes), split out so benches can
    /// attribute engine wins per phase.
    pub shuffle_elapsed: Duration,
    /// Metered word-plane communication of the matrix phase.  Every
    /// backend gets a meter: the parallel backends record their
    /// `⌈log₂ p⌉` rounds, the front-end backends the row scatter from
    /// processor 0 (at `p = 1` that scatter degenerates to one metered
    /// self-send; the parallel backends move nothing at all there).
    pub matrix_metrics: MachineMetrics,
    /// Metered data-plane communication of the exchange phase.
    pub exchange_metrics: MachineMetrics,
    /// The sampled communication matrix, if `keep_matrix` was requested.
    pub matrix: Option<CommMatrix>,
    /// Measured wall-clock of the whole fused run (see
    /// [`PermutationReport::total_elapsed`]).
    total_elapsed: Duration,
}

impl PermutationReport {
    /// Measured wall-clock time of the whole permutation, caller to
    /// caller.  Because the fused phases overlap, this is at least
    /// `max(matrix_elapsed, exchange_elapsed)` but may be **less than
    /// their sum**.
    pub fn total_elapsed(&self) -> Duration {
        self.total_elapsed
    }

    /// Maximum communication volume (words sent + received) over all
    /// processors during the data exchange — the quantity Theorem 1 bounds
    /// by `O(m)`.
    pub fn max_exchange_volume(&self) -> u64 {
        self.exchange_metrics.max_comm_volume()
    }

    /// Maximum communication volume over all processors during the matrix
    /// phase — the quantity Theorem 2 bounds by `Θ(p)` for the
    /// cost-optimal backend.
    pub fn max_matrix_volume(&self) -> u64 {
        self.matrix_metrics.max_comm_volume()
    }

    /// Number of word-plane rounds the matrix phase used (`⌈log₂ p⌉` for
    /// the parallel backends, 1 for the front-end scatter).
    pub fn matrix_rounds(&self) -> u64 {
        self.matrix_metrics.supersteps()
    }
}

/// Reusable buffers for [`permute_vec_into`]: the per-processor block
/// vectors and the per-processor outgoing payload vectors of the exchange.
///
/// A fresh scratch starts empty and warms up over the first couple of
/// calls: the block buffers are sized by the first call, and each exchange
/// buffer ratchets up once to the larger of the two run lengths it carries
/// (buffers ping-pong between the `i → j` and `j → i` directions).  From
/// then on, same-shaped calls retain every capacity and make no per-item
/// allocations — only `O(p)` bookkeeping, the sampled matrix and the
/// channel envelopes remain.
#[derive(Debug)]
pub struct PermuteScratch<T> {
    /// Per-processor block buffers (emptied, capacity retained).
    blocks: Vec<Vec<T>>,
    /// Per-processor recycled outgoing payload buffers.
    outgoing: Vec<Vec<Vec<T>>>,
    /// Per-processor staging buffers for the bucketed local-shuffle engine
    /// (empty — and never touched — while the resolved engine is
    /// Fisher–Yates).
    buckets: Vec<BucketScratch<T>>,
}

impl<T> PermuteScratch<T> {
    /// An empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        PermuteScratch {
            blocks: Vec::new(),
            outgoing: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// Total capacity (in items) currently retained across the block,
    /// exchange and bucket-staging buffers — a cheap observability hook for
    /// allocation-reuse tests (a converged scratch reports the same value
    /// call after call).
    pub fn retained_capacity(&self) -> usize {
        self.blocks.iter().map(|b| b.capacity()).sum::<usize>()
            + self
                .outgoing
                .iter()
                .flatten()
                .map(|b| b.capacity())
                .sum::<usize>()
            + self
                .buckets
                .iter()
                .map(|b| b.retained_capacity())
                .sum::<usize>()
    }
}

impl<T> Default for PermuteScratch<T> {
    fn default() -> Self {
        PermuteScratch::new()
    }
}

/// Fail-fast check that one block per processor was supplied, phrased for
/// the calling thread (same policy as
/// [`PermuteOptions::validate_target_sizes`]): misuse must never surface as
/// an opaque cross-thread panic out of a worker, and must fire before any
/// caller data has been moved.
fn validate_block_count(p: usize, blocks: usize) {
    assert!(
        blocks == p,
        "permute_blocks requires exactly one block per processor (p = {p}), \
         but {blocks} blocks were provided; re-split the data with \
         BlockDistribution or adjust the machine's processor count"
    );
}

/// What one virtual processor takes into the exchange: its block plus the
/// recycled outgoing payload buffers and bucketed-shuffle staging from a
/// previous call (both possibly empty).
type ProcPayload<T> = (Vec<T>, Vec<Vec<T>>, BucketScratch<T>);

/// What one virtual processor hands back from the fused run: its permuted
/// block, the emptied payload shells, its bucket staging, its row of `A`,
/// and its in-run phase timings (matrix, data, local shuffles).
type ProcResult<T> = (
    Vec<T>,
    Vec<Vec<T>>,
    BucketScratch<T>,
    Vec<u64>,
    Duration,
    Duration,
    Duration,
);

/// What the engine hands back: the permuted blocks, the emptied payload
/// shells and bucket staging (capacities retained, ready to be the next
/// call's scratch), and the run report.
type EngineOutput<T> = (
    Vec<Vec<T>>,
    Vec<Vec<Vec<T>>>,
    Vec<BucketScratch<T>>,
    PermutationReport,
);

/// The fused, move-based engine behind [`permute_blocks`] and
/// [`permute_vec_into`]: the whole of Algorithm 1 — superstep-1 shuffle,
/// in-context matrix sampling, cut, all-to-all exchange, superstep-3
/// shuffle — as **one job on one executor**.
///
/// Generic over the execution substrate: the same engine runs one-shot on a
/// [`CgmMachine`] (threads spawned per call) or on a [`cgp_cgm::ResidentCgm`]
/// worker pool (threads spawned once, per the session API) — shared state
/// travels in `Arc`s so the job closure is `'static` either way.  No second
/// machine is built for the matrix phase; the samplers run in-context on the
/// word plane of the same workers (see the module docs).
///
/// Consumes the blocks and a set of recycled outgoing buffers (padded with
/// empty vectors when the scratch is shorter than `p`).
fn exchange_engine<T, E>(
    exec: &mut E,
    blocks: Vec<Vec<T>>,
    mut outgoing_scratch: Vec<Vec<Vec<T>>>,
    mut bucket_scratch: Vec<BucketScratch<T>>,
    options: &PermuteOptions,
) -> Result<EngineOutput<T>, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    validate_block_count(p, blocks.len());
    let source_sizes: Vec<u64> = blocks.iter().map(|b| b.len() as u64).collect();
    // All misuse is rejected here, before the job starts, so failures
    // surface as a clean panic on the calling thread instead of a
    // cross-thread panic out of a worker.
    let target_sizes = options.resolve_target_sizes(p, &source_sizes);
    let backend = options.backend;
    // Auto resolves against the *job's* total payload, not each worker's
    // block: all `p` blocks are live at once, so the combined working set
    // is what decides whether the local shuffles are cache-miss-bound (see
    // `AUTO_CROSSOVER_BYTES`).  Resolving here also keeps every worker on
    // the same engine.
    let total_items: u64 = source_sizes.iter().sum();
    let local_shuffle = options.local_shuffle.resolve_for::<T>(total_items as usize);
    let fault = options.fault;
    let run_started = Instant::now();

    // Hand each virtual processor ownership of its block (and its recycled
    // outgoing buffers) through a slot vector: the closure is shared between
    // threads, so interior mutability with an exclusive take() per processor
    // id is the simplest safe hand-off.
    outgoing_scratch.resize_with(p, Vec::new);
    bucket_scratch.resize_with(p, BucketScratch::new);
    let slots: Arc<Vec<Mutex<Option<ProcPayload<T>>>>> = Arc::new(
        blocks
            .into_iter()
            .zip(outgoing_scratch)
            .zip(bucket_scratch)
            .map(|((block, outgoing), buckets)| Mutex::new(Some((block, outgoing, buckets))))
            .collect(),
    );
    let source_sizes = Arc::new(source_sizes);
    let target_sizes = Arc::new(target_sizes);
    let source_ref = Arc::clone(&source_sizes);
    let target_ref = Arc::clone(&target_sizes);

    let outcome = exec.try_run_job(move |ctx| -> ProcResult<T> {
        let id = ctx.id();
        let p = ctx.procs();
        // The in-context matrix samplers draw from their own per-call
        // derived streams (`MatrixCtx::sampling_rng` / the named front-end
        // stream); the local shuffles must be statistically independent of
        // the sampled matrix, so this phase derives its own per-processor
        // streams from the master seed.
        let mut shuffle_rng = ctx.seeds().child_sequence(0x5AFE_B10C).proc_stream(id);

        // Superstep 1: local shuffle of the own block.  Independent of the
        // matrix, so on workers that are not (yet) involved in a sampling
        // round it overlaps the matrix phase instead of waiting for it.
        ctx.superstep();
        let (mut block, mut outgoing, mut buckets) = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");
        let shuffle_started = Instant::now();
        local_shuffle.shuffle_vec_with(&mut shuffle_rng, &mut block, &mut buckets);
        let mut shuffle_elapsed = shuffle_started.elapsed();

        // Matrix phase, in-context on the word plane: this worker ends up
        // holding its own row of `A`.
        if let Some(f) = fault {
            if f.proc == id && f.phase == FaultPhase::Matrix {
                panic!("injected engine fault (matrix phase)");
            }
        }
        let matrix_started = Instant::now();
        let row: Vec<u64> = {
            let mut mctx = ctx.matrix_ctx();
            match backend {
                MatrixBackend::Sequential => {
                    sample_sequential_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::Recursive => {
                    sample_recursive_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::ParallelLog => {
                    sample_parallel_log_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::ParallelOptimal => {
                    sample_parallel_optimal_ctx(&mut mctx, &source_ref, &target_ref)
                }
            }
        };
        let matrix_elapsed = matrix_started.elapsed();
        let data_started = Instant::now();

        // Superstep 2: cut the shuffled block according to row `id` of A and
        // exchange.  Because the block was just shuffled, taking consecutive
        // runs of length a_ij is a uniformly random choice of which items go
        // where.  The cut *moves* the items — no clone: the highest column
        // is carved off first, so each run is the then-current tail of the
        // block.  A cold piece is carved with `split_off` (one bulk memmove);
        // a warm recycled piece is refilled by draining the tail into it,
        // keeping its allocation alive across calls.
        ctx.superstep();
        if let Some(f) = fault {
            if f.proc == id && f.phase == FaultPhase::Exchange {
                panic!("injected engine fault (exchange phase)");
            }
        }
        debug_assert_eq!(row.len(), p, "resolve_target_sizes guarantees p' == p");
        outgoing.resize_with(p, Vec::new);
        for j in (0..p).rev() {
            let count = row[j] as usize;
            let tail = block.len() - count;
            let piece = &mut outgoing[j];
            if piece.capacity() == 0 {
                *piece = block.split_off(tail);
            } else {
                piece.clear();
                piece.reserve(count);
                piece.extend(block.drain(tail..));
            }
        }
        debug_assert!(block.is_empty());
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);

        // Superstep 3: concatenate what was received and shuffle it locally.
        // The emptied source block becomes the receive buffer (its capacity
        // is reused; `reserve` tops it up to the prescribed m'_j), and the
        // drained payload vectors are kept as shells for the next call.
        ctx.superstep();
        let mut new_block = block;
        new_block.reserve(target_ref[id] as usize);
        let mut shells: Vec<Vec<T>> = Vec::with_capacity(p);
        for mut part in incoming {
            new_block.append(&mut part);
            shells.push(part);
        }
        let reshuffle_started = Instant::now();
        local_shuffle.shuffle_vec_with(&mut shuffle_rng, &mut new_block, &mut buckets);
        let reshuffle_elapsed = reshuffle_started.elapsed();
        // The data phase ran from the end of the matrix phase and contains
        // the cut, the exchange, the concat and the reshuffle; superstep 1
        // overlapped the matrix phase and is added on top.
        let data_elapsed = shuffle_elapsed + data_started.elapsed();
        shuffle_elapsed += reshuffle_elapsed;
        (
            new_block,
            shells,
            buckets,
            row,
            matrix_elapsed,
            data_elapsed,
            shuffle_elapsed,
        )
    });

    let (results, metrics) = outcome?.into_parts();
    let total_elapsed = run_started.elapsed();
    let mut new_blocks = Vec::with_capacity(p);
    let mut shells = Vec::with_capacity(p);
    let mut stagings = Vec::with_capacity(p);
    let mut rows = Vec::with_capacity(p);
    let mut matrix_elapsed = Duration::ZERO;
    let mut exchange_elapsed = Duration::ZERO;
    let mut shuffle_elapsed = Duration::ZERO;
    for (block, shell, staging, row, matrix_dur, data_dur, shuffle_dur) in results {
        new_blocks.push(block);
        shells.push(shell);
        stagings.push(staging);
        rows.push(row);
        matrix_elapsed = matrix_elapsed.max(matrix_dur);
        exchange_elapsed = exchange_elapsed.max(data_dur);
        shuffle_elapsed = shuffle_elapsed.max(shuffle_dur);
    }

    // Sanity: the produced blocks have exactly the prescribed target sizes
    // (all of them — resolve_target_sizes guarantees one per processor).
    debug_assert_eq!(
        new_blocks
            .iter()
            .map(|b| b.len() as u64)
            .collect::<Vec<_>>(),
        *target_sizes
    );
    // The rows every worker brought back assemble into the sampled matrix;
    // in debug builds verify its marginals unconditionally, in release only
    // pay the assembly when the caller asked to keep it.
    let assemble = |rows: Vec<Vec<u64>>| {
        let matrix = CommMatrix::from_rows(rows);
        debug_assert!(matrix.check_marginals(&source_sizes, &target_sizes).is_ok());
        matrix
    };
    let matrix = if options.keep_matrix || cfg!(debug_assertions) {
        Some(assemble(rows))
    } else {
        None
    };

    let report = PermutationReport {
        backend: options.backend,
        local_shuffle: options.local_shuffle,
        matrix_elapsed,
        exchange_elapsed,
        shuffle_elapsed,
        matrix_metrics: MachineMetrics {
            per_proc: metrics.matrix_plane,
            matrix_plane: Vec::new(),
            elapsed: matrix_elapsed,
        },
        exchange_metrics: MachineMetrics {
            per_proc: metrics.per_proc,
            matrix_plane: Vec::new(),
            elapsed: exchange_elapsed,
        },
        matrix: if options.keep_matrix { matrix } else { None },
        total_elapsed,
    };
    Ok((new_blocks, shells, stagings, report))
}

/// Permutes a block-distributed vector.
///
/// `blocks[i]` is the block `B_i` held by processor `i` (so `blocks.len()`
/// must equal the machine's processor count).  The result is the permuted
/// vector in the same block structure unless `options.target_sizes`
/// prescribes different target block sizes `m'_j` (one per processor).
///
/// Every permutation of the `n` input items into the target blocks is
/// equally likely (Theorem 1), provided the underlying generator is sound.
///
/// Items are moved, never cloned: `T` only needs to be `Send`.
///
/// # Panics
/// Panics if `blocks.len()` differs from the machine size, the target sizes
/// do not sum to `n`, or their count differs from the processor count
/// (rectangular redistributions and wrong block counts are rejected up
/// front, on the calling thread, with a clear message rather than failing
/// inside worker threads).
pub fn permute_blocks<T: Send + 'static>(
    machine: &CgmMachine,
    blocks: Vec<Vec<T>>,
    options: &PermuteOptions,
) -> (Vec<Vec<T>>, PermutationReport) {
    let mut exec = machine.clone();
    let (new_blocks, _shells, _stagings, report) =
        exchange_engine(&mut exec, blocks, Vec::new(), Vec::new(), options)
            .unwrap_or_else(|e| panic!("{e}"));
    (new_blocks, report)
}

/// Convenience wrapper: splits `data` evenly over the machine's processors,
/// permutes, and concatenates the result back into a single vector.
pub fn permute_vec<T: Send + 'static>(
    machine: &CgmMachine,
    data: Vec<T>,
    options: &PermuteOptions,
) -> (Vec<T>, PermutationReport) {
    let p = machine.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    let blocks = dist.split_vec(data);
    let mut options = options.clone();
    // The output distribution is exactly what the options prescribe (or the
    // even split when nothing was prescribed) — no need to recompute it from
    // the returned block lengths.
    let out_dist = match options.target_sizes.take() {
        Some(sizes) => BlockDistribution::from_sizes(sizes),
        None => dist,
    };
    options.target_sizes = Some(out_dist.sizes().to_vec());
    let (blocks, report) = permute_blocks(machine, blocks, &options);
    (out_dist.concat_vec(blocks), report)
}

/// Allocation-reusing variant of [`permute_vec`]: permutes `data` in place,
/// recycling every intermediate buffer (per-processor blocks and outgoing
/// payload vectors) through `scratch` across calls.
///
/// Produces exactly the same permutation as [`permute_vec`] for the same
/// machine seed and options; only the allocation behaviour differs.  Intended
/// for steady-state callers that permute many same-shaped vectors — once the
/// scratch is warm (see [`PermuteScratch`]) no per-item allocation remains.
///
/// To also amortize the machine startup itself (thread spawns, channel
/// fabric), pair a scratch with a resident pool via
/// [`permute_vec_into_with`] — or use the bundled session API,
/// [`crate::Permuter::session`].
pub fn permute_vec_into<T: Send + 'static>(
    machine: &CgmMachine,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> PermutationReport {
    let mut exec = machine.clone();
    permute_vec_into_with(&mut exec, data, options, scratch)
}

/// Executor-generic core of [`permute_vec_into`]: permutes `data` in place
/// on any [`CgmExecutor`] — the one-shot [`CgmMachine`] or a resident
/// [`cgp_cgm::ResidentCgm`] pool.
///
/// For a fixed configuration (processor count, seed, options) every
/// substrate produces the **identical** permutation: all random streams are
/// derived from the machine seed per call, never from substrate state.
pub fn permute_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> PermutationReport
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    try_permute_vec_into_with(exec, data, options, scratch).unwrap_or_else(|e| panic!("{e}"))
}

/// Fail-fast variant of [`permute_vec_into_with`]: a job that panics inside
/// a virtual processor is reported as [`CgmError::ProcessorPanicked`]
/// (naming the processor, exactly as the panic of the infallible variant
/// would) instead of unwinding the caller.
///
/// On a [`cgp_cgm::ResidentCgm`] the pool recovers its fabric before this
/// returns, so the executor stays usable for further jobs — this is the
/// engine entry a multi-tenant [`crate::PermutationService`] dispatches
/// through, where one tenant's failure must be contained to its own ticket.
///
/// # Data loss on failure
/// By the time a worker panics the input has already been distributed into
/// the machine, so on `Err` the items are gone: `data` is left empty and
/// the scratch cold (it rebuilds on the next call).  Misuse that is
/// detected *before* any item moves (bad prescriptions, see
/// [`PermuteOptions::validate_target_sizes`]) still panics on the calling
/// thread with `data` untouched, as in the infallible variant.
pub fn try_permute_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> Result<PermutationReport, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    // Validate the prescription BEFORE draining the caller's vector: a bad
    // prescription must panic with `data` and `scratch` untouched, not after
    // the items have been moved out (and lost to the unwind).
    options.validate_target_sizes(p, data.len() as u64);
    let mut options = options.clone();
    let out_dist = match options.target_sizes.take() {
        Some(sizes) => BlockDistribution::from_sizes(sizes),
        None => dist.clone(),
    };
    options.target_sizes = Some(out_dist.sizes().to_vec());
    let mut blocks = std::mem::take(&mut scratch.blocks);
    dist.split_vec_into(data, &mut blocks);
    let outgoing = std::mem::take(&mut scratch.outgoing);
    let buckets = std::mem::take(&mut scratch.buckets);
    let (mut new_blocks, shells, stagings, report) =
        exchange_engine(exec, blocks, outgoing, buckets, &options)?;
    out_dist.concat_vec_into(&mut new_blocks, data);
    scratch.blocks = new_blocks;
    scratch.outgoing = shells;
    scratch.buckets = stagings;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::CgmConfig;

    fn is_permutation_of_identity(v: &[u64]) -> bool {
        let mut seen = vec![false; v.len()];
        for &x in v {
            if x as usize >= v.len() || seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn output_is_always_a_permutation_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let machine = CgmMachine::new(CgmConfig::new(6).with_seed(42));
            let data: Vec<u64> = (0..600).collect();
            let (out, report) = permute_vec(&machine, data, &PermuteOptions::with_backend(backend));
            assert!(
                is_permutation_of_identity(&out),
                "{backend:?} did not produce a permutation"
            );
            assert_eq!(report.backend, backend);
        }
    }

    #[test]
    fn uneven_blocks_and_different_target_sizes() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(7));
        let blocks = vec![
            (0..10u64).collect::<Vec<_>>(),
            (10..15u64).collect::<Vec<_>>(),
            (15..30u64).collect::<Vec<_>>(),
        ];
        let options = PermuteOptions::default()
            .keep_matrix()
            .target_sizes(vec![12, 12, 6]);
        let (out, report) = permute_blocks(&machine, blocks, &options);
        assert_eq!(out[0].len(), 12);
        assert_eq!(out[1].len(), 12);
        assert_eq!(out[2].len(), 6);
        let mut all: Vec<u64> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<u64>>());
        let matrix = report.matrix.expect("matrix was requested");
        matrix.check_marginals(&[10, 5, 15], &[12, 12, 6]).unwrap();
    }

    #[test]
    fn exchange_volume_is_balanced_and_linear_in_m() {
        // Theorem 1: O(m) communication volume per processor.  Each processor
        // sends its m items and receives its m' items (plus nothing else).
        let p = 8usize;
        let m = 500usize;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
        let data: Vec<u64> = (0..(p * m) as u64).collect();
        let (_, report) = permute_vec(&machine, data, &PermuteOptions::default());
        for proc in &report.exchange_metrics.per_proc {
            assert_eq!(proc.words_sent, m as u64);
            assert_eq!(proc.words_received, m as u64);
        }
        assert!((report.exchange_metrics.comm_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_machine_seed() {
        let run = |seed: u64| {
            let machine = CgmMachine::new(CgmConfig::new(4).with_seed(seed));
            let data: Vec<u64> = (0..256).collect();
            permute_vec(&machine, data, &PermuteOptions::default()).0
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn single_processor_reduces_to_a_local_shuffle() {
        let machine = CgmMachine::new(CgmConfig::new(1).with_seed(5));
        let data: Vec<u64> = (0..100).collect();
        let (out, report) = permute_vec(&machine, data, &PermuteOptions::default());
        assert!(is_permutation_of_identity(&out));
        assert_eq!(report.exchange_metrics.total_messages(), 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(1));
        let (out, _) = permute_vec(&machine, Vec::<u64>::new(), &PermuteOptions::default());
        assert!(out.is_empty());
        let (out, _) = permute_vec(&machine, vec![42u64], &PermuteOptions::default());
        assert_eq!(out, vec![42]);
        let (out, _) = permute_vec(&machine, vec![1u64, 2], &PermuteOptions::default());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn clone_heavy_payload_type() {
        // String payloads: moved through the exchange, never cloned.
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(9));
        let data: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, _) = permute_vec(&machine, data.clone(), &PermuteOptions::default());
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn non_clone_payload_type() {
        // The exchange is move-based: a type that is Send but NOT Clone (and
        // not Copy) must flow through unchanged.
        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Token(u64);
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(21));
        let data: Vec<Token> = (0..90).map(Token).collect();
        let (mut out, _) = permute_vec(&machine, data, &PermuteOptions::default());
        out.sort();
        assert_eq!(out, (0..90).map(Token).collect::<Vec<_>>());
    }

    #[test]
    fn permute_vec_into_matches_permute_vec_and_reuses_buffers() {
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(33));
        let options = PermuteOptions::default();
        let reference = permute_vec(&machine, (0..512u64).collect(), &options).0;

        let mut scratch = PermuteScratch::new();
        let mut caps = Vec::new();
        for round in 0..3 {
            let mut data: Vec<u64> = (0..512).collect();
            let report = permute_vec_into(&machine, &mut data, &options, &mut scratch);
            assert_eq!(
                data, reference,
                "round {round} diverged from the plain path"
            );
            assert_eq!(report.max_exchange_volume(), 2 * 512 / 4);
            caps.push(scratch.retained_capacity());
        }
        assert!(caps[0] >= 2 * 512, "blocks + exchange buffers are retained");
        // The exchange buffers may ratchet up once (each buffer ping-pongs
        // between the i→j and j→i directions); after that the capacities
        // must be stable — steady state allocates nothing new.
        assert_eq!(caps[1], caps[2], "capacities converge after the ratchet");
    }

    #[test]
    fn permute_vec_into_with_prescribed_target_sizes() {
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(8));
        let mut scratch = PermuteScratch::new();
        let mut data: Vec<u64> = (0..20).collect();
        let options = PermuteOptions::default().target_sizes(vec![15, 5]);
        permute_vec_into(&machine, &mut data, &options, &mut scratch);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn permute_vec_into_rejects_bad_prescriptions_without_draining() {
        let machine = CgmMachine::with_procs(2);
        let mut data: Vec<u64> = (0..10).collect();
        let mut scratch = PermuteScratch::new();
        let options = PermuteOptions::default().target_sizes(vec![1, 1, 8]);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            permute_vec_into(&machine, &mut data, &options, &mut scratch);
        }));
        assert!(outcome.is_err(), "rectangular prescription must panic");
        assert_eq!(
            data,
            (0..10).collect::<Vec<u64>>(),
            "the caller's vector survives a rejected prescription"
        );
    }

    #[test]
    fn injected_faults_surface_as_attributed_errors() {
        use crate::config::EngineFault;
        use cgp_cgm::ResidentCgm;
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4).with_seed(5));
        for (fault, phase_word) in [
            (EngineFault::matrix_phase(2), "matrix"),
            (EngineFault::exchange_phase(1), "exchange"),
        ] {
            let mut scratch = PermuteScratch::new();
            let mut data: Vec<u64> = (0..200).collect();
            let options = PermuteOptions::default().inject_fault(fault);
            let err = try_permute_vec_into_with(&mut pool, &mut data, &options, &mut scratch)
                .unwrap_err();
            match err {
                CgmError::ProcessorPanicked { proc, ref message } => {
                    assert_eq!(proc, fault.proc, "the injecting processor is blamed");
                    assert!(message.contains(phase_word), "got: {message}");
                }
                other => panic!("unexpected error: {other}"),
            }
            assert!(data.is_empty(), "the input was consumed by the failed job");
        }
        // The pool recovered both times; a clean job still matches one-shot.
        let mut scratch = PermuteScratch::new();
        let mut data: Vec<u64> = (0..200).collect();
        let options = PermuteOptions::default();
        try_permute_vec_into_with(&mut pool, &mut data, &options, &mut scratch).unwrap();
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(5));
        let reference = permute_vec(&machine, (0..200u64).collect(), &options).0;
        assert_eq!(data, reference);
        assert_eq!(pool.recoveries(), 2);
    }

    #[test]
    fn out_of_range_fault_never_fires() {
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(3));
        let options = PermuteOptions::default();
        let reference = permute_vec(&machine, (0..64u64).collect(), &options).0;
        let armed = options.inject_fault(crate::config::EngineFault::matrix_phase(99));
        let (out, _) = permute_vec(&machine, (0..64u64).collect(), &armed);
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic(expected = "one block per processor")]
    fn wrong_block_count_panics() {
        let machine = CgmMachine::with_procs(3);
        let _ = permute_blocks(
            &machine,
            vec![vec![1u64], vec![2u64]],
            &PermuteOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "must sum to the number of items")]
    fn bad_target_sizes_panic() {
        let machine = CgmMachine::with_procs(2);
        let options = PermuteOptions::default().target_sizes(vec![1, 1]);
        let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64]], &options);
    }

    #[test]
    #[should_panic(expected = "one target block per processor")]
    fn rectangular_target_sizes_fail_fast() {
        // Satellite regression: a target-size count that differs from p used
        // to trip an assert inside the worker threads; it must now fail on
        // the calling thread before the machine starts.
        let machine = CgmMachine::with_procs(2);
        let options = PermuteOptions::default().target_sizes(vec![1, 1, 1]);
        let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64]], &options);
    }
}
