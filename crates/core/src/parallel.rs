//! Algorithm 1 — the parallel random permutation, fused into **one job on
//! one executor**.
//!
//! ```text
//! foreach P_i:  permute B_i locally                     (superstep 1)
//! choose A = (a_ij) according to Problem 2              (matrix phase)
//! foreach P_i:  send a_ij items to P'_j for every j     (superstep 2)
//! foreach P'_j: receive a_ij items from every P_i
//! foreach P'_j: permute B'_j locally                    (superstep 3)
//! ```
//!
//! Correctness (Propositions 1–2): the first local shuffle makes the choice
//! of *which* items travel from `B_i` to `B'_j` uniform among all
//! `a_ij`-subsets, the final local shuffle makes the arrangement inside every
//! target block uniform, and the matrix `A` is sampled with the probability
//! a uniform permutation would induce — so every permutation is equally
//! likely.
//!
//! Balance and work-optimality (Proposition 1): every processor touches only
//! its own `m_i` (resp. `m'_j`) items plus the `O(p)` row of `A`, and the
//! exchange is a single h-relation whose per-processor volume is exactly
//! `m_i + m'_j`.
//!
//! # The fused single-program pipeline
//!
//! In the paper Algorithm 1 is *one* CGM program: the same `p` processors
//! shuffle, sample the communication matrix (Algorithms 3–6), exchange, and
//! shuffle again.  This engine runs it the same way: a **single**
//! [`CgmExecutor::run_job`] in which every worker
//!
//! 1. shuffles its own block (superstep 1) — the shuffle is independent of
//!    the matrix, so on the workers that are not (yet) involved in matrix
//!    rounds it *overlaps* the sampling instead of serializing behind it;
//! 2. participates in **in-context matrix sampling** on the machine's word
//!    plane ([`cgp_cgm::MatrixCtx`]): the two front-end backends
//!    (`Sequential`/`Recursive`) sample the full matrix on processor 0 and
//!    scatter the rows, as the paper prescribes; the parallel backends run
//!    Algorithms 5/6 across all workers — each worker ends up holding its
//!    own row of `A`;
//! 3. cuts its shuffled block along that row, runs the all-to-all exchange
//!    on the data plane, concatenates and re-shuffles (supersteps 2–3).
//!
//! No second machine is ever built: on a [`cgp_cgm::ResidentCgm`]-backed
//! [`crate::PermutationSession`] a steady-state permutation therefore makes
//! **zero thread spawns and zero channel-fabric constructions** for *every*
//! backend, including `ParallelLog`/`ParallelOptimal` (which previously
//! sampled on a freshly spawned one-shot machine per call).  The two
//! transport planes keep the phases separately metered:
//! [`PermutationReport::matrix_metrics`] carries the word-plane (matrix)
//! traffic, [`PermutationReport::exchange_metrics`] the data-plane
//! (payload) traffic.
//!
//! The engine is transport-generic by construction: it speaks only through
//! [`CgmExecutor`], and the fabric underneath is opened on whatever
//! [`cgp_cgm::TransportKind`] the machine's config selects — in-process
//! channels (the zero-overhead default) or per-processor mailbox child
//! processes over Unix domain sockets.  Both substrates produce the
//! byte-identical permutation for the same seed (every random stream is
//! derived from the machine seed per call); the process substrate
//! additionally meters the frame bytes it put on the wire
//! ([`cgp_cgm::MachineMetrics::wire_volume`]).
//!
//! ## Backend selection at a glance
//!
//! The matrix phase only ever handles `O(p·p')` words, so at small `p` the
//! default `Sequential` backend (what the paper's own experiments used) is
//! usually fastest: one worker samples a tiny matrix while the others
//! overlap their superstep-1 shuffle, and no matrix-phase envelopes beyond
//! the row scatter are exchanged.  The parallel backends pay `⌈log₂ p⌉`
//! word-plane rounds of latency to cut the *head's* work from `O(p²)`
//! (`Sequential`) to `Θ(p log p)` (`ParallelLog`, Algorithm 5) or the
//! cost-optimal `Θ(p)` (`ParallelOptimal`, Algorithm 6) — they win once
//! `p²` work on one processor rivals `m = n/p` work on all of them, i.e.
//! for large machines or small blocks.  Measure with `exp_crossover` /
//! `exp_fused` on your host when in doubt.
//!
//! # Zero-copy exchange
//!
//! The data-exchange phase is **move-based end to end**: the shuffled block
//! is cut into the `a_ij` runs by draining its tail (each item is moved
//! exactly once, never cloned), the payload vectors travel through
//! [`cgp_cgm::Communicator::all_to_all`] by value, and the receive side
//! concatenates with `Vec::append` into a buffer pre-sized from the
//! prescribed target size `m'_j` — so `O(m)` memory per processor holds with
//! a constant factor of one, matching Theorem 1's cost model.  Consequently
//! the item type only needs to be `Send`; `Clone` is *not* required.
//!
//! Callers that permute repeatedly can go further and recycle every
//! intermediate allocation across calls with [`permute_vec_into`] and a
//! [`PermuteScratch`]; callers whose payloads are not `Send` (or are too
//! heavy to ship through channels) can permute indices once with
//! [`crate::Permuter::sample_permutation`] and gather locally with
//! [`crate::apply_permutation`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::cache_aware::{BucketScratch, LocalShuffle};
use crate::config::{Algorithm, EngineFault, FaultPhase, MatrixBackend, PermuteOptions};
use cgp_cgm::{
    BatchJobOutcome, BlockDistribution, CgmError, CgmExecutor, CgmMachine, MachineMetrics, ProcCtx,
};
use cgp_matrix::{
    sample_parallel_log_ctx, sample_parallel_optimal_ctx, sample_recursive_ctx,
    sample_sequential_ctx, CommMatrix,
};

/// What happened during one parallel permutation: timings, per-phase
/// metered communication, and (optionally) the sampled communication
/// matrix.
///
/// Since the pipeline is fused into one run, the phase timings are
/// measured **in-run** (each worker clocks its own phases; the report
/// carries the maximum over workers) and the phases can overlap — the
/// superstep-1 shuffle of an idle worker proceeds while the head still
/// samples.  [`PermutationReport::total_elapsed`] is therefore the
/// *measured wall-clock of the whole run*, not the sum of the phase
/// durations (which could double-count overlap).
#[derive(Debug)]
pub struct PermutationReport {
    /// Which matrix-sampling backend was used.
    pub backend: MatrixBackend,
    /// Which permutation engine ran.  Under [`Algorithm::Darts`] the
    /// Gustedt phase fields read as empty: no matrix is sampled, no local
    /// shuffle runs, and the dart throw + compaction span is reported as
    /// the exchange phase (see [`crate::darts`]).
    pub algorithm: Algorithm,
    /// Which local-shuffle engine the options requested (possibly
    /// [`LocalShuffle::Auto`]; the engine resolves it once against the
    /// job's total payload size and type — see
    /// [`crate::cache_aware::AUTO_CROSSOVER_BYTES`]).
    pub local_shuffle: LocalShuffle,
    /// In-run wall-clock time of the matrix phase: the maximum over
    /// workers of the time spent inside the in-context sampler.
    pub matrix_elapsed: Duration,
    /// In-run wall-clock time of the data phase: the maximum over workers
    /// of the time spent in the shuffle + cut + exchange + shuffle steps.
    pub exchange_elapsed: Duration,
    /// In-run wall-clock time of the local shuffles alone: the maximum
    /// over workers of superstep-1 plus superstep-3 shuffle time.  This is
    /// a *subset* of [`PermutationReport::exchange_elapsed`] (the data
    /// phase contains both shuffle passes), split out so benches can
    /// attribute engine wins per phase.
    pub shuffle_elapsed: Duration,
    /// Metered word-plane communication of the matrix phase.  Every
    /// backend gets a meter: the parallel backends record their
    /// `⌈log₂ p⌉` rounds, the front-end backends the row scatter from
    /// processor 0 (at `p = 1` that scatter degenerates to one metered
    /// self-send; the parallel backends move nothing at all there).
    pub matrix_metrics: MachineMetrics,
    /// Metered data-plane communication of the exchange phase.
    pub exchange_metrics: MachineMetrics,
    /// The sampled communication matrix, if `keep_matrix` was requested.
    pub matrix: Option<CommMatrix>,
    /// Measured wall-clock of the whole fused run (see
    /// [`PermutationReport::total_elapsed`]).
    pub(crate) total_elapsed: Duration,
}

impl PermutationReport {
    /// Measured wall-clock time of the whole permutation, caller to
    /// caller.  Because the fused phases overlap, this is at least
    /// `max(matrix_elapsed, exchange_elapsed)` but may be **less than
    /// their sum**.
    pub fn total_elapsed(&self) -> Duration {
        self.total_elapsed
    }

    /// Maximum communication volume (words sent + received) over all
    /// processors during the data exchange — the quantity Theorem 1 bounds
    /// by `O(m)`.
    pub fn max_exchange_volume(&self) -> u64 {
        self.exchange_metrics.max_comm_volume()
    }

    /// Maximum communication volume over all processors during the matrix
    /// phase — the quantity Theorem 2 bounds by `Θ(p)` for the
    /// cost-optimal backend.
    pub fn max_matrix_volume(&self) -> u64 {
        self.matrix_metrics.max_comm_volume()
    }

    /// Number of word-plane rounds the matrix phase used (`⌈log₂ p⌉` for
    /// the parallel backends, 1 for the front-end scatter).
    pub fn matrix_rounds(&self) -> u64 {
        self.matrix_metrics.supersteps()
    }
}

/// Reusable buffers for [`permute_vec_into`]: the per-processor block
/// vectors and the per-processor outgoing payload vectors of the exchange.
///
/// A fresh scratch starts empty and warms up over the first couple of
/// calls: the block buffers are sized by the first call, and each exchange
/// buffer ratchets up once to the larger of the two run lengths it carries
/// (buffers ping-pong between the `i → j` and `j → i` directions).  From
/// then on, same-shaped calls retain every capacity and make no per-item
/// allocations — only `O(p)` bookkeeping, the sampled matrix and the
/// channel envelopes remain.
#[derive(Debug)]
pub struct PermuteScratch<T> {
    /// Per-processor block buffers (emptied, capacity retained).
    blocks: Vec<Vec<T>>,
    /// Per-processor recycled outgoing payload buffers.
    outgoing: Vec<Vec<Vec<T>>>,
    /// Per-processor staging buffers for the bucketed local-shuffle engine
    /// (empty — and never touched — while the resolved engine is
    /// Fisher–Yates).
    buckets: Vec<BucketScratch<T>>,
    /// Recycled index-permutation buffer of the dart engine (also backs
    /// [`crate::PermutationSession::sample_permutation_into`] reuse).
    /// Empty — and never touched — under [`Algorithm::Gustedt`].
    pub(crate) indices: Vec<u64>,
    /// Recycled cycle-walk marks of the dart engine's in-place payload
    /// gather.
    pub(crate) visited: Vec<bool>,
}

impl<T> PermuteScratch<T> {
    /// An empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        PermuteScratch {
            blocks: Vec::new(),
            outgoing: Vec::new(),
            buckets: Vec::new(),
            indices: Vec::new(),
            visited: Vec::new(),
        }
    }

    /// Total capacity (in items) currently retained across the block,
    /// exchange and bucket-staging buffers — a cheap observability hook for
    /// allocation-reuse tests (a converged scratch reports the same value
    /// call after call).
    pub fn retained_capacity(&self) -> usize {
        self.blocks.iter().map(|b| b.capacity()).sum::<usize>()
            + self
                .outgoing
                .iter()
                .flatten()
                .map(|b| b.capacity())
                .sum::<usize>()
            + self
                .buckets
                .iter()
                .map(|b| b.retained_capacity())
                .sum::<usize>()
            + self.indices.capacity()
            + self.visited.capacity()
    }
}

impl<T> Default for PermuteScratch<T> {
    fn default() -> Self {
        PermuteScratch::new()
    }
}

/// Fail-fast check that one block per processor was supplied, phrased for
/// the calling thread (same policy as
/// [`PermuteOptions::validate_target_sizes`]): misuse must never surface as
/// an opaque cross-thread panic out of a worker, and must fire before any
/// caller data has been moved.
fn validate_block_count(p: usize, blocks: usize) {
    assert!(
        blocks == p,
        "permute_blocks requires exactly one block per processor (p = {p}), \
         but {blocks} blocks were provided; re-split the data with \
         BlockDistribution or adjust the machine's processor count"
    );
}

/// What one virtual processor takes into the exchange: its block plus the
/// recycled outgoing payload buffers and bucketed-shuffle staging from a
/// previous call (both possibly empty).
type ProcPayload<T> = (Vec<T>, Vec<Vec<T>>, BucketScratch<T>);

/// What one virtual processor hands back from the fused run: its permuted
/// block, the emptied payload shells, its bucket staging, its row of `A`,
/// and its in-run phase timings (matrix, data, local shuffles).
type ProcResult<T> = (
    Vec<T>,
    Vec<Vec<T>>,
    BucketScratch<T>,
    Vec<u64>,
    Duration,
    Duration,
    Duration,
);

/// What the engine hands back: the permuted blocks, the emptied payload
/// shells and bucket staging (capacities retained, ready to be the next
/// call's scratch), and the run report.
type EngineOutput<T> = (
    Vec<Vec<T>>,
    Vec<Vec<Vec<T>>>,
    Vec<BucketScratch<T>>,
    PermutationReport,
);

/// One permutation job, staged and ready to run on an executor: the
/// per-processor payload slots plus the resolved run parameters.
///
/// Building a plan *moves* the caller's items into the slots.  The worker
/// closure ([`worker_closure`]) takes each slot exactly once; a plan whose
/// closure never ran (a skipped sub-job in a batch) still holds every item
/// and can be dismantled again with [`Arc::try_unwrap`] — that reversibility
/// is what lets a scheduler requeue skipped jobs intact.
struct JobPlan<T> {
    slots: Arc<Vec<Mutex<Option<ProcPayload<T>>>>>,
    source_sizes: Arc<Vec<u64>>,
    target_sizes: Arc<Vec<u64>>,
    backend: MatrixBackend,
    local_shuffle: LocalShuffle,
    fault: Option<EngineFault>,
}

/// Stages one job: validates and resolves the prescription, resolves the
/// local-shuffle engine against the job's total payload, and hands each
/// virtual processor ownership of its block (and recycled buffers) through
/// a slot vector.
///
/// All misuse is rejected here, before any job starts, so failures surface
/// as a clean panic on the calling thread instead of a cross-thread panic
/// out of a worker.
fn plan_job<T: Send>(
    p: usize,
    blocks: Vec<Vec<T>>,
    mut outgoing_scratch: Vec<Vec<Vec<T>>>,
    mut bucket_scratch: Vec<BucketScratch<T>>,
    options: &PermuteOptions,
) -> JobPlan<T> {
    let source_sizes: Vec<u64> = blocks.iter().map(|b| b.len() as u64).collect();
    let target_sizes = options.resolve_target_sizes(p, &source_sizes);
    // Auto resolves against the *job's* total payload, not each worker's
    // block: all `p` blocks are live at once, so the combined working set
    // is what decides whether the local shuffles are cache-miss-bound (see
    // `AUTO_CROSSOVER_BYTES`).  Resolving here also keeps every worker on
    // the same engine.
    let total_items: u64 = source_sizes.iter().sum();
    let local_shuffle = options.local_shuffle.resolve_for::<T>(total_items as usize);

    // The closure is shared between threads, so interior mutability with an
    // exclusive take() per processor id is the simplest safe hand-off.
    outgoing_scratch.resize_with(p, Vec::new);
    bucket_scratch.resize_with(p, BucketScratch::new);
    let slots: Arc<Vec<Mutex<Option<ProcPayload<T>>>>> = Arc::new(
        blocks
            .into_iter()
            .zip(outgoing_scratch)
            .zip(bucket_scratch)
            .map(|((block, outgoing), buckets)| Mutex::new(Some((block, outgoing, buckets))))
            .collect(),
    );
    JobPlan {
        slots,
        source_sizes: Arc::new(source_sizes),
        target_sizes: Arc::new(target_sizes),
        backend: options.backend,
        local_shuffle,
        fault: options.fault,
    }
}

/// Builds the per-processor job closure for a staged plan — the whole of
/// Algorithm 1 (superstep-1 shuffle, in-context matrix sampling, cut,
/// all-to-all exchange, superstep-3 shuffle) as one closure every virtual
/// processor runs.
///
/// Every random stream the closure draws is derived from the machine's
/// master seed *per call* (never from executor history), so the same plan
/// produces the byte-identical permutation whether it runs solo, inside a
/// coalesced batch, or on a different fleet machine with the same seed.
fn worker_closure<T: Send + 'static>(
    plan: &JobPlan<T>,
) -> impl Fn(&mut ProcCtx<T>) -> ProcResult<T> + Send + Sync + 'static {
    let slots = Arc::clone(&plan.slots);
    let source_ref = Arc::clone(&plan.source_sizes);
    let target_ref = Arc::clone(&plan.target_sizes);
    let backend = plan.backend;
    let local_shuffle = plan.local_shuffle;
    let fault = plan.fault;

    move |ctx| -> ProcResult<T> {
        let id = ctx.id();
        let p = ctx.procs();
        // The in-context matrix samplers draw from their own per-call
        // derived streams (`MatrixCtx::sampling_rng` / the named front-end
        // stream); the local shuffles must be statistically independent of
        // the sampled matrix, so this phase derives its own per-processor
        // streams from the master seed.
        let mut shuffle_rng = ctx.seeds().child_sequence(0x5AFE_B10C).proc_stream(id);

        // Superstep 1: local shuffle of the own block.  Independent of the
        // matrix, so on workers that are not (yet) involved in a sampling
        // round it overlaps the matrix phase instead of waiting for it.
        ctx.superstep();
        let (mut block, mut outgoing, mut buckets) = slots[id]
            .lock()
            .take()
            .expect("each processor takes its block exactly once");
        let shuffle_started = Instant::now();
        local_shuffle.shuffle_vec_with(&mut shuffle_rng, &mut block, &mut buckets);
        let mut shuffle_elapsed = shuffle_started.elapsed();

        // Matrix phase, in-context on the word plane: this worker ends up
        // holding its own row of `A`.
        if let Some(f) = fault {
            if f.proc == id && f.phase == FaultPhase::Matrix {
                panic!("injected engine fault (matrix phase)");
            }
        }
        let matrix_started = Instant::now();
        let row: Vec<u64> = {
            let mut mctx = ctx.matrix_ctx();
            match backend {
                MatrixBackend::Sequential => {
                    sample_sequential_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::Recursive => {
                    sample_recursive_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::ParallelLog => {
                    sample_parallel_log_ctx(&mut mctx, &source_ref, &target_ref)
                }
                MatrixBackend::ParallelOptimal => {
                    sample_parallel_optimal_ctx(&mut mctx, &source_ref, &target_ref)
                }
            }
        };
        let matrix_elapsed = matrix_started.elapsed();
        let data_started = Instant::now();

        // Superstep 2: cut the shuffled block according to row `id` of A and
        // exchange.  Because the block was just shuffled, taking consecutive
        // runs of length a_ij is a uniformly random choice of which items go
        // where.  The cut *moves* the items — no clone: the highest column
        // is carved off first, so each run is the then-current tail of the
        // block.  A cold piece is carved with `split_off` (one bulk memmove);
        // a warm recycled piece is refilled by draining the tail into it,
        // keeping its allocation alive across calls.
        ctx.superstep();
        if let Some(f) = fault {
            if f.proc == id && f.phase == FaultPhase::Exchange {
                panic!("injected engine fault (exchange phase)");
            }
        }
        debug_assert_eq!(row.len(), p, "resolve_target_sizes guarantees p' == p");
        outgoing.resize_with(p, Vec::new);
        for j in (0..p).rev() {
            let count = row[j] as usize;
            let tail = block.len() - count;
            let piece = &mut outgoing[j];
            if piece.capacity() == 0 {
                *piece = block.split_off(tail);
            } else {
                piece.clear();
                piece.reserve(count);
                piece.extend(block.drain(tail..));
            }
        }
        debug_assert!(block.is_empty());
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);

        // Superstep 3: concatenate what was received and shuffle it locally.
        // The emptied source block becomes the receive buffer (its capacity
        // is reused; `reserve` tops it up to the prescribed m'_j), and the
        // drained payload vectors are kept as shells for the next call.
        ctx.superstep();
        let mut new_block = block;
        new_block.reserve(target_ref[id] as usize);
        let mut shells: Vec<Vec<T>> = Vec::with_capacity(p);
        for mut part in incoming {
            new_block.append(&mut part);
            shells.push(part);
        }
        let reshuffle_started = Instant::now();
        local_shuffle.shuffle_vec_with(&mut shuffle_rng, &mut new_block, &mut buckets);
        let reshuffle_elapsed = reshuffle_started.elapsed();
        // The data phase ran from the end of the matrix phase and contains
        // the cut, the exchange, the concat and the reshuffle; superstep 1
        // overlapped the matrix phase and is added on top.
        let data_elapsed = shuffle_elapsed + data_started.elapsed();
        shuffle_elapsed += reshuffle_elapsed;
        (
            new_block,
            shells,
            buckets,
            row,
            matrix_elapsed,
            data_elapsed,
            shuffle_elapsed,
        )
    }
}

/// Assembles one job's per-processor results into the engine output:
/// max-over-workers phase timings, the recovered scratch parts, the
/// (optionally kept) communication matrix, and the run report.
fn collect_job<T>(
    source_sizes: &[u64],
    target_sizes: &[u64],
    results: Vec<ProcResult<T>>,
    metrics: MachineMetrics,
    options: &PermuteOptions,
    total_elapsed: Duration,
) -> EngineOutput<T> {
    let p = source_sizes.len();
    let mut new_blocks = Vec::with_capacity(p);
    let mut shells = Vec::with_capacity(p);
    let mut stagings = Vec::with_capacity(p);
    let mut rows = Vec::with_capacity(p);
    let mut matrix_elapsed = Duration::ZERO;
    let mut exchange_elapsed = Duration::ZERO;
    let mut shuffle_elapsed = Duration::ZERO;
    for (block, shell, staging, row, matrix_dur, data_dur, shuffle_dur) in results {
        new_blocks.push(block);
        shells.push(shell);
        stagings.push(staging);
        rows.push(row);
        matrix_elapsed = matrix_elapsed.max(matrix_dur);
        exchange_elapsed = exchange_elapsed.max(data_dur);
        shuffle_elapsed = shuffle_elapsed.max(shuffle_dur);
    }

    // Sanity: the produced blocks have exactly the prescribed target sizes
    // (all of them — resolve_target_sizes guarantees one per processor).
    debug_assert_eq!(
        new_blocks
            .iter()
            .map(|b| b.len() as u64)
            .collect::<Vec<_>>(),
        target_sizes
    );
    // The rows every worker brought back assemble into the sampled matrix;
    // in debug builds verify its marginals unconditionally, in release only
    // pay the assembly when the caller asked to keep it.
    let assemble = |rows: Vec<Vec<u64>>| {
        let matrix = CommMatrix::from_rows(rows);
        debug_assert!(matrix.check_marginals(source_sizes, target_sizes).is_ok());
        matrix
    };
    let matrix = if options.keep_matrix || cfg!(debug_assertions) {
        Some(assemble(rows))
    } else {
        None
    };

    let report = PermutationReport {
        backend: options.backend,
        algorithm: options.algorithm,
        local_shuffle: options.local_shuffle,
        matrix_elapsed,
        exchange_elapsed,
        shuffle_elapsed,
        matrix_metrics: MachineMetrics {
            per_proc: metrics.matrix_plane,
            matrix_plane: Vec::new(),
            elapsed: matrix_elapsed,
        },
        exchange_metrics: MachineMetrics {
            per_proc: metrics.per_proc,
            matrix_plane: Vec::new(),
            elapsed: exchange_elapsed,
        },
        matrix: if options.keep_matrix { matrix } else { None },
        total_elapsed,
    };
    (new_blocks, shells, stagings, report)
}

/// The fused, move-based engine behind [`permute_blocks`] and
/// [`permute_vec_into`]: stages a [`JobPlan`], runs its [`worker_closure`]
/// as **one job on one executor**, and assembles the output with
/// [`collect_job`].  The batched entry ([`try_permute_batch_into_with`])
/// shares all three pieces, which is what makes a coalesced run
/// byte-identical to a solo run by construction.
///
/// Generic over the execution substrate: the same engine runs one-shot on a
/// [`CgmMachine`] (threads spawned per call) or on a [`cgp_cgm::ResidentCgm`]
/// worker pool (threads spawned once, per the session API) — shared state
/// travels in `Arc`s so the job closure is `'static` either way.  No second
/// machine is built for the matrix phase; the samplers run in-context on the
/// word plane of the same workers (see the module docs).
///
/// Consumes the blocks and a set of recycled outgoing buffers (padded with
/// empty vectors when the scratch is shorter than `p`).
fn exchange_engine<T, E>(
    exec: &mut E,
    blocks: Vec<Vec<T>>,
    outgoing_scratch: Vec<Vec<Vec<T>>>,
    bucket_scratch: Vec<BucketScratch<T>>,
    options: &PermuteOptions,
) -> Result<EngineOutput<T>, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    validate_block_count(p, blocks.len());
    let plan = plan_job(p, blocks, outgoing_scratch, bucket_scratch, options);
    let run_started = Instant::now();
    let outcome = exec.try_run_job(worker_closure(&plan));
    let (results, metrics) = outcome?.into_parts();
    let total_elapsed = run_started.elapsed();
    Ok(collect_job(
        &plan.source_sizes,
        &plan.target_sizes,
        results,
        metrics,
        options,
        total_elapsed,
    ))
}

/// Permutes a block-distributed vector.
///
/// `blocks[i]` is the block `B_i` held by processor `i` (so `blocks.len()`
/// must equal the machine's processor count).  The result is the permuted
/// vector in the same block structure unless `options.target_sizes`
/// prescribes different target block sizes `m'_j` (one per processor).
///
/// Every permutation of the `n` input items into the target blocks is
/// equally likely (Theorem 1), provided the underlying generator is sound.
///
/// Items are moved, never cloned: `T` only needs to be `Send`.
///
/// # Panics
/// Panics if `blocks.len()` differs from the machine size, the target sizes
/// do not sum to `n`, or their count differs from the processor count
/// (rectangular redistributions and wrong block counts are rejected up
/// front, on the calling thread, with a clear message rather than failing
/// inside worker threads).
pub fn permute_blocks<T: Send + 'static>(
    machine: &CgmMachine,
    blocks: Vec<Vec<T>>,
    options: &PermuteOptions,
) -> (Vec<Vec<T>>, PermutationReport) {
    let mut exec = machine.clone();
    if let Algorithm::Darts { target_factor } = options.algorithm {
        // The dart engine is flat-native: concatenate the blocks, throw,
        // and re-split by the prescribed (or source) distribution.  The
        // permuted *contents* are uniform either way; only the block
        // boundaries come from the prescription.
        let p = exec.procs();
        validate_block_count(p, blocks.len());
        let source = BlockDistribution::from_sizes(blocks.iter().map(|b| b.len() as u64).collect());
        options.validate_target_sizes(p, source.total());
        let target = match &options.target_sizes {
            Some(sizes) => BlockDistribution::from_sizes(sizes.clone()),
            None => source.clone(),
        };
        let mut data = source.concat_vec(blocks);
        let mut scratch = PermuteScratch::new();
        let report = crate::darts::try_darts_vec_into_with(
            &mut exec,
            &mut data,
            options,
            &mut scratch,
            target_factor,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        return (target.split_vec(data), report);
    }
    let (new_blocks, _shells, _stagings, report) =
        exchange_engine(&mut exec, blocks, Vec::new(), Vec::new(), options)
            .unwrap_or_else(|e| panic!("{e}"));
    (new_blocks, report)
}

/// Convenience wrapper: splits `data` evenly over the machine's processors,
/// permutes, and concatenates the result back into a single vector.
pub fn permute_vec<T: Send + 'static>(
    machine: &CgmMachine,
    data: Vec<T>,
    options: &PermuteOptions,
) -> (Vec<T>, PermutationReport) {
    let p = machine.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    let blocks = dist.split_vec(data);
    let mut options = options.clone();
    // The output distribution is exactly what the options prescribe (or the
    // even split when nothing was prescribed) — no need to recompute it from
    // the returned block lengths.
    let out_dist = match options.target_sizes.take() {
        Some(sizes) => BlockDistribution::from_sizes(sizes),
        None => dist,
    };
    options.target_sizes = Some(out_dist.sizes().to_vec());
    let (blocks, report) = permute_blocks(machine, blocks, &options);
    (out_dist.concat_vec(blocks), report)
}

/// Allocation-reusing variant of [`permute_vec`]: permutes `data` in place,
/// recycling every intermediate buffer (per-processor blocks and outgoing
/// payload vectors) through `scratch` across calls.
///
/// Produces exactly the same permutation as [`permute_vec`] for the same
/// machine seed and options; only the allocation behaviour differs.  Intended
/// for steady-state callers that permute many same-shaped vectors — once the
/// scratch is warm (see [`PermuteScratch`]) no per-item allocation remains.
///
/// To also amortize the machine startup itself (thread spawns, channel
/// fabric), pair a scratch with a resident pool via
/// [`permute_vec_into_with`] — or use the bundled session API,
/// [`crate::Permuter::session`].
pub fn permute_vec_into<T: Send + 'static>(
    machine: &CgmMachine,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> PermutationReport {
    let mut exec = machine.clone();
    permute_vec_into_with(&mut exec, data, options, scratch)
}

/// Executor-generic core of [`permute_vec_into`]: permutes `data` in place
/// on any [`CgmExecutor`] — the one-shot [`CgmMachine`] or a resident
/// [`cgp_cgm::ResidentCgm`] pool.
///
/// For a fixed configuration (processor count, seed, options) every
/// substrate produces the **identical** permutation: all random streams are
/// derived from the machine seed per call, never from substrate state.
pub fn permute_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> PermutationReport
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    try_permute_vec_into_with(exec, data, options, scratch).unwrap_or_else(|e| panic!("{e}"))
}

/// Fail-fast variant of [`permute_vec_into_with`]: a job that panics inside
/// a virtual processor is reported as [`CgmError::ProcessorPanicked`]
/// (naming the processor, exactly as the panic of the infallible variant
/// would) instead of unwinding the caller.
///
/// On a [`cgp_cgm::ResidentCgm`] the pool recovers its fabric before this
/// returns, so the executor stays usable for further jobs — this is the
/// engine entry a multi-tenant [`crate::PermutationService`] dispatches
/// through, where one tenant's failure must be contained to its own ticket.
///
/// # Data loss on failure
/// By the time a worker panics the input has already been distributed into
/// the machine, so on `Err` the items are gone: `data` is left empty and
/// the scratch cold (it rebuilds on the next call).  Misuse that is
/// detected *before* any item moves (bad prescriptions, see
/// [`PermuteOptions::validate_target_sizes`]) still panics on the calling
/// thread with `data` untouched, as in the infallible variant.
pub fn try_permute_vec_into_with<T, E>(
    exec: &mut E,
    data: &mut Vec<T>,
    options: &PermuteOptions,
    scratch: &mut PermuteScratch<T>,
) -> Result<PermutationReport, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    let dist = BlockDistribution::even(data.len() as u64, p);
    // Validate the prescription BEFORE draining the caller's vector: a bad
    // prescription must panic with `data` and `scratch` untouched, not after
    // the items have been moved out (and lost to the unwind).
    options.validate_target_sizes(p, data.len() as u64);
    if let Algorithm::Darts { target_factor } = options.algorithm {
        // The dart engine works on the flat vector directly — no
        // split/exchange/concat round-trip (see `crate::darts`).
        return crate::darts::try_darts_vec_into_with(exec, data, options, scratch, target_factor);
    }
    let mut options = options.clone();
    let out_dist = match options.target_sizes.take() {
        Some(sizes) => BlockDistribution::from_sizes(sizes),
        None => dist.clone(),
    };
    options.target_sizes = Some(out_dist.sizes().to_vec());
    let mut blocks = std::mem::take(&mut scratch.blocks);
    dist.split_vec_into(data, &mut blocks);
    let outgoing = std::mem::take(&mut scratch.outgoing);
    let buckets = std::mem::take(&mut scratch.buckets);
    let (mut new_blocks, shells, stagings, report) =
        exchange_engine(exec, blocks, outgoing, buckets, &options)?;
    out_dist.concat_vec_into(&mut new_blocks, data);
    scratch.blocks = new_blocks;
    scratch.outgoing = shells;
    scratch.buckets = stagings;
    Ok(report)
}

/// What happened to one job of a coalesced batch submitted through
/// [`try_permute_batch_into_with`].
#[derive(Debug)]
pub enum BatchOutcome<T> {
    /// The job ran to completion: the permuted items and its own report.
    Done {
        /// The permuted vector (same items as submitted, new order).
        data: Vec<T>,
        /// The per-job run report; phase timings are this sub-job's own.
        /// Boxed to keep the outcome enum slim next to `Skipped`.
        report: Box<PermutationReport>,
    },
    /// A worker panicked inside this job.  As with a failed solo run the
    /// items had already been distributed into the machine, so they are
    /// lost; the executor has recovered and stays usable.
    Failed(CgmError),
    /// The job never started because an earlier job in the batch failed.
    /// Its items were still untouched in their staging slots, so they are
    /// handed back intact — resubmit to run the job.
    Skipped {
        /// The submitted vector, restored to its original order.
        data: Vec<T>,
    },
}

/// Permutes a batch of jobs as **one** submission to the executor —
/// the coalescing entry point behind the service scheduler.
///
/// On a [`cgp_cgm::ResidentCgm`] pool the whole batch costs a single
/// worker wake-up and one completion rendezvous instead of one per job,
/// which is what amortizes the fixed per-job overhead for small payloads.
/// Each job still runs as its own fenced sub-job with its own
/// [`PermuteOptions`] and its own seed-derived random streams, so **every
/// job's output is byte-identical to what a solo
/// [`try_permute_vec_into_with`] call would have produced** on the same
/// executor — coalescing is invisible in the results (a property the
/// scheduler's seed-equivalence tests pin down).
///
/// `scratches` plays the role of the solo entry's scratch, one per job
/// (extended with cold scratches when shorter than `jobs`): warm capacity
/// goes in, the recovered buffers come back out.
///
/// The outcomes are positional: `out[k]` describes `jobs[k]`.  A batch
/// stops at the first failing job — later jobs come back as
/// [`BatchOutcome::Skipped`] with their items intact (see
/// [`BatchJobOutcome`] for the executor-level contract).
///
/// # Errors and data loss
/// Misuse (a bad prescription on *any* job) panics on the calling thread
/// before any item has moved, with every job's data untouched.  An
/// executor-level error (`Err`) means the batch could not run or complete
/// as a whole; as with a failed solo run, the items of jobs that were
/// already staged into the machine are lost.
pub fn try_permute_batch_into_with<T, E>(
    exec: &mut E,
    jobs: Vec<(Vec<T>, PermuteOptions)>,
    scratches: &mut Vec<PermuteScratch<T>>,
) -> Result<Vec<BatchOutcome<T>>, CgmError>
where
    T: Send + 'static,
    E: CgmExecutor<T>,
{
    let p = exec.procs();
    // Validate every job before moving a single item: a bad prescription
    // anywhere in the batch must panic with all data untouched.
    for (data, options) in &jobs {
        options.validate_target_sizes(p, data.len() as u64);
    }
    if scratches.len() < jobs.len() {
        scratches.resize_with(jobs.len(), PermuteScratch::new);
    }

    // The dart engine has no staged-plan representation, so a batch that
    // contains a darts job degrades to solo runs under the same positional,
    // stop-at-first-failure contract.  The service queue never coalesces
    // darts jobs (see `service::queue::coalescible`), so this path only
    // serves direct batch callers; validation already ran for every job, so
    // no data moves before the whole batch is known well-formed.
    if jobs.iter().any(|(_, options)| options.algorithm.is_darts()) {
        let mut out = Vec::with_capacity(jobs.len());
        let mut failed = false;
        for (k, (mut data, options)) in jobs.into_iter().enumerate() {
            if failed {
                out.push(BatchOutcome::Skipped { data });
            } else {
                match try_permute_vec_into_with(exec, &mut data, &options, &mut scratches[k]) {
                    Ok(report) => out.push(BatchOutcome::Done {
                        data,
                        report: Box::new(report),
                    }),
                    Err(e) => {
                        failed = true;
                        out.push(BatchOutcome::Failed(e));
                    }
                }
            }
        }
        return Ok(out);
    }

    // Stage every job into its own plan (moving its items into the slot
    // vector) and build the per-job closures the executor will run as
    // fenced sub-jobs.
    let mut staged = Vec::with_capacity(jobs.len());
    let mut closures = Vec::with_capacity(jobs.len());
    for (k, (mut data, options)) in jobs.into_iter().enumerate() {
        let scratch = &mut scratches[k];
        let dist = BlockDistribution::even(data.len() as u64, p);
        let mut options = options;
        let out_dist = match options.target_sizes.take() {
            Some(sizes) => BlockDistribution::from_sizes(sizes),
            None => dist.clone(),
        };
        options.target_sizes = Some(out_dist.sizes().to_vec());
        let mut blocks = std::mem::take(&mut scratch.blocks);
        dist.split_vec_into(&mut data, &mut blocks);
        let outgoing = std::mem::take(&mut scratch.outgoing);
        let buckets = std::mem::take(&mut scratch.buckets);
        let plan = plan_job(p, blocks, outgoing, buckets, &options);
        closures.push(worker_closure(&plan));
        // `data` is now the emptied shell of the submitted vector; its
        // allocation is reused for the reassembled output (or the restore).
        staged.push((plan, dist, out_dist, options, data));
    }

    let run_started = Instant::now();
    let outcomes = exec.try_run_batch(closures)?;
    let total_elapsed = run_started.elapsed();
    debug_assert_eq!(outcomes.len(), staged.len());

    let mut out = Vec::with_capacity(staged.len());
    for (k, (outcome, parts)) in outcomes.into_iter().zip(staged).enumerate() {
        let (plan, dist, out_dist, options, mut data) = parts;
        let scratch = &mut scratches[k];
        match outcome {
            BatchJobOutcome::Done(run) => {
                // Each sub-job's report carries its own metered span (the
                // max over its workers' in-run timings), not the whole
                // batch's wall clock.
                let sub_elapsed = run.metrics().elapsed.min(total_elapsed);
                let (results, metrics) = run.into_parts();
                let (mut new_blocks, shells, stagings, report) = collect_job(
                    &plan.source_sizes,
                    &plan.target_sizes,
                    results,
                    metrics,
                    &options,
                    sub_elapsed,
                );
                out_dist.concat_vec_into(&mut new_blocks, &mut data);
                scratch.blocks = new_blocks;
                scratch.outgoing = shells;
                scratch.buckets = stagings;
                out.push(BatchOutcome::Done {
                    data,
                    report: Box::new(report),
                });
            }
            BatchJobOutcome::Failed(e) => out.push(BatchOutcome::Failed(e)),
            BatchJobOutcome::Skipped => {
                // The closure never ran, so every slot still holds its
                // payload and ours is the last Arc (workers drop their
                // clones of the job list before depositing results).
                let slots = Arc::try_unwrap(plan.slots)
                    .unwrap_or_else(|_| unreachable!("skipped sub-job slots still shared"));
                let mut blocks = Vec::with_capacity(p);
                let mut shells = Vec::with_capacity(p);
                let mut stagings = Vec::with_capacity(p);
                for slot in slots {
                    let (block, outgoing, buckets) = slot
                        .into_inner()
                        .expect("skipped sub-job left every slot untouched");
                    blocks.push(block);
                    shells.push(outgoing);
                    stagings.push(buckets);
                }
                // Undo the split with the *source* distribution: the items
                // come back in exactly the submitted order.
                dist.concat_vec_into(&mut blocks, &mut data);
                scratch.blocks = blocks;
                scratch.outgoing = shells;
                scratch.buckets = stagings;
                out.push(BatchOutcome::Skipped { data });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_cgm::CgmConfig;

    fn is_permutation_of_identity(v: &[u64]) -> bool {
        let mut seen = vec![false; v.len()];
        for &x in v {
            if x as usize >= v.len() || seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn output_is_always_a_permutation_for_every_backend() {
        for backend in MatrixBackend::ALL {
            let machine = CgmMachine::new(CgmConfig::new(6).with_seed(42));
            let data: Vec<u64> = (0..600).collect();
            let (out, report) = permute_vec(&machine, data, &PermuteOptions::with_backend(backend));
            assert!(
                is_permutation_of_identity(&out),
                "{backend:?} did not produce a permutation"
            );
            assert_eq!(report.backend, backend);
        }
    }

    #[test]
    fn uneven_blocks_and_different_target_sizes() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(7));
        let blocks = vec![
            (0..10u64).collect::<Vec<_>>(),
            (10..15u64).collect::<Vec<_>>(),
            (15..30u64).collect::<Vec<_>>(),
        ];
        let options = PermuteOptions::default()
            .keep_matrix()
            .target_sizes(vec![12, 12, 6]);
        let (out, report) = permute_blocks(&machine, blocks, &options);
        assert_eq!(out[0].len(), 12);
        assert_eq!(out[1].len(), 12);
        assert_eq!(out[2].len(), 6);
        let mut all: Vec<u64> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<u64>>());
        let matrix = report.matrix.expect("matrix was requested");
        matrix.check_marginals(&[10, 5, 15], &[12, 12, 6]).unwrap();
    }

    #[test]
    fn exchange_volume_is_balanced_and_linear_in_m() {
        // Theorem 1: O(m) communication volume per processor.  Each processor
        // sends its m items and receives its m' items (plus nothing else).
        let p = 8usize;
        let m = 500usize;
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(3));
        let data: Vec<u64> = (0..(p * m) as u64).collect();
        let (_, report) = permute_vec(&machine, data, &PermuteOptions::default());
        for proc in &report.exchange_metrics.per_proc {
            assert_eq!(proc.words_sent, m as u64);
            assert_eq!(proc.words_received, m as u64);
        }
        assert!((report.exchange_metrics.comm_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_machine_seed() {
        let run = |seed: u64| {
            let machine = CgmMachine::new(CgmConfig::new(4).with_seed(seed));
            let data: Vec<u64> = (0..256).collect();
            permute_vec(&machine, data, &PermuteOptions::default()).0
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn single_processor_reduces_to_a_local_shuffle() {
        let machine = CgmMachine::new(CgmConfig::new(1).with_seed(5));
        let data: Vec<u64> = (0..100).collect();
        let (out, report) = permute_vec(&machine, data, &PermuteOptions::default());
        assert!(is_permutation_of_identity(&out));
        assert_eq!(report.exchange_metrics.total_messages(), 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(1));
        let (out, _) = permute_vec(&machine, Vec::<u64>::new(), &PermuteOptions::default());
        assert!(out.is_empty());
        let (out, _) = permute_vec(&machine, vec![42u64], &PermuteOptions::default());
        assert_eq!(out, vec![42]);
        let (out, _) = permute_vec(&machine, vec![1u64, 2], &PermuteOptions::default());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn clone_heavy_payload_type() {
        // String payloads: moved through the exchange, never cloned.
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(9));
        let data: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, _) = permute_vec(&machine, data.clone(), &PermuteOptions::default());
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn non_clone_payload_type() {
        // The exchange is move-based: a type that is Send but NOT Clone (and
        // not Copy) must flow through unchanged.
        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Token(u64);
        let machine = CgmMachine::new(CgmConfig::new(3).with_seed(21));
        let data: Vec<Token> = (0..90).map(Token).collect();
        let (mut out, _) = permute_vec(&machine, data, &PermuteOptions::default());
        out.sort();
        assert_eq!(out, (0..90).map(Token).collect::<Vec<_>>());
    }

    #[test]
    fn permute_vec_into_matches_permute_vec_and_reuses_buffers() {
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(33));
        let options = PermuteOptions::default();
        let reference = permute_vec(&machine, (0..512u64).collect(), &options).0;

        let mut scratch = PermuteScratch::new();
        let mut caps = Vec::new();
        for round in 0..3 {
            let mut data: Vec<u64> = (0..512).collect();
            let report = permute_vec_into(&machine, &mut data, &options, &mut scratch);
            assert_eq!(
                data, reference,
                "round {round} diverged from the plain path"
            );
            assert_eq!(report.max_exchange_volume(), 2 * 512 / 4);
            caps.push(scratch.retained_capacity());
        }
        assert!(caps[0] >= 2 * 512, "blocks + exchange buffers are retained");
        // The exchange buffers may ratchet up once (each buffer ping-pongs
        // between the i→j and j→i directions); after that the capacities
        // must be stable — steady state allocates nothing new.
        assert_eq!(caps[1], caps[2], "capacities converge after the ratchet");
    }

    #[test]
    fn permute_vec_into_with_prescribed_target_sizes() {
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(8));
        let mut scratch = PermuteScratch::new();
        let mut data: Vec<u64> = (0..20).collect();
        let options = PermuteOptions::default().target_sizes(vec![15, 5]);
        permute_vec_into(&machine, &mut data, &options, &mut scratch);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn permute_vec_into_rejects_bad_prescriptions_without_draining() {
        let machine = CgmMachine::with_procs(2);
        let mut data: Vec<u64> = (0..10).collect();
        let mut scratch = PermuteScratch::new();
        let options = PermuteOptions::default().target_sizes(vec![1, 1, 8]);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            permute_vec_into(&machine, &mut data, &options, &mut scratch);
        }));
        assert!(outcome.is_err(), "rectangular prescription must panic");
        assert_eq!(
            data,
            (0..10).collect::<Vec<u64>>(),
            "the caller's vector survives a rejected prescription"
        );
    }

    #[test]
    fn injected_faults_surface_as_attributed_errors() {
        use crate::config::EngineFault;
        use cgp_cgm::ResidentCgm;
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4).with_seed(5));
        for (fault, phase_word) in [
            (EngineFault::matrix_phase(2), "matrix"),
            (EngineFault::exchange_phase(1), "exchange"),
        ] {
            let mut scratch = PermuteScratch::new();
            let mut data: Vec<u64> = (0..200).collect();
            let options = PermuteOptions::default().inject_fault(fault);
            let err = try_permute_vec_into_with(&mut pool, &mut data, &options, &mut scratch)
                .unwrap_err();
            match err {
                CgmError::ProcessorPanicked { proc, ref message } => {
                    assert_eq!(proc, fault.proc, "the injecting processor is blamed");
                    assert!(message.contains(phase_word), "got: {message}");
                }
                other => panic!("unexpected error: {other}"),
            }
            assert!(data.is_empty(), "the input was consumed by the failed job");
        }
        // The pool recovered both times; a clean job still matches one-shot.
        let mut scratch = PermuteScratch::new();
        let mut data: Vec<u64> = (0..200).collect();
        let options = PermuteOptions::default();
        try_permute_vec_into_with(&mut pool, &mut data, &options, &mut scratch).unwrap();
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(5));
        let reference = permute_vec(&machine, (0..200u64).collect(), &options).0;
        assert_eq!(data, reference);
        assert_eq!(pool.recoveries(), 2);
    }

    #[test]
    fn out_of_range_fault_never_fires() {
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(3));
        let options = PermuteOptions::default();
        let reference = permute_vec(&machine, (0..64u64).collect(), &options).0;
        let armed = options.inject_fault(crate::config::EngineFault::matrix_phase(99));
        let (out, _) = permute_vec(&machine, (0..64u64).collect(), &armed);
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic(expected = "one block per processor")]
    fn wrong_block_count_panics() {
        let machine = CgmMachine::with_procs(3);
        let _ = permute_blocks(
            &machine,
            vec![vec![1u64], vec![2u64]],
            &PermuteOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "must sum to the number of items")]
    fn bad_target_sizes_panic() {
        let machine = CgmMachine::with_procs(2);
        let options = PermuteOptions::default().target_sizes(vec![1, 1]);
        let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64]], &options);
    }

    #[test]
    #[should_panic(expected = "one target block per processor")]
    fn rectangular_target_sizes_fail_fast() {
        // Satellite regression: a target-size count that differs from p used
        // to trip an assert inside the worker threads; it must now fail on
        // the calling thread before the machine starts.
        let machine = CgmMachine::with_procs(2);
        let options = PermuteOptions::default().target_sizes(vec![1, 1, 1]);
        let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64]], &options);
    }

    #[test]
    fn batched_permutations_match_solo_runs_for_every_backend() {
        use cgp_cgm::ResidentCgm;
        // Coalescing must be invisible in the results: for every backend,
        // a heterogeneous batch (mixed sizes, mixed options) produces
        // byte-for-byte what the same jobs produce run solo, back to back,
        // on an identically configured pool.
        for backend in MatrixBackend::ALL {
            let config = CgmConfig::new(4).with_seed(77);
            let jobs: Vec<(Vec<u64>, PermuteOptions)> = vec![
                ((0..128).collect(), PermuteOptions::with_backend(backend)),
                ((0..37).collect(), PermuteOptions::with_backend(backend)),
                (
                    (0..200).collect(),
                    PermuteOptions::with_backend(backend).target_sizes(vec![80, 40, 40, 40]),
                ),
                (Vec::new(), PermuteOptions::with_backend(backend)),
            ];

            let mut solo_pool: ResidentCgm<u64> = ResidentCgm::new(config);
            let mut solo_scratch = PermuteScratch::new();
            let mut solo_outputs = Vec::new();
            for (data, options) in &jobs {
                let mut data = data.clone();
                try_permute_vec_into_with(&mut solo_pool, &mut data, options, &mut solo_scratch)
                    .unwrap();
                solo_outputs.push(data);
            }

            let mut batch_pool: ResidentCgm<u64> = ResidentCgm::new(config);
            let mut scratches = Vec::new();
            let outcomes = try_permute_batch_into_with(&mut batch_pool, jobs, &mut scratches)
                .expect("the batch runs");
            assert_eq!(outcomes.len(), solo_outputs.len());
            for (k, (outcome, solo)) in outcomes.into_iter().zip(solo_outputs).enumerate() {
                match outcome {
                    BatchOutcome::Done { data, report } => {
                        assert_eq!(data, solo, "{backend:?} job {k} diverged from solo");
                        assert_eq!(report.backend, backend);
                    }
                    other => panic!("{backend:?} job {k}: unexpected outcome {other:?}"),
                }
            }
        }
    }

    #[test]
    fn a_mid_batch_fault_fails_only_that_job_and_hands_back_the_rest() {
        use crate::config::EngineFault;
        use cgp_cgm::ResidentCgm;
        let config = CgmConfig::new(3).with_seed(13);
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(config);
        let jobs: Vec<(Vec<u64>, PermuteOptions)> = vec![
            ((0..60).collect(), PermuteOptions::default()),
            (
                (100..160).collect(),
                PermuteOptions::default().inject_fault(EngineFault::exchange_phase(1)),
            ),
            ((200..260).collect(), PermuteOptions::default()),
        ];
        let mut scratches = Vec::new();
        let outcomes = try_permute_batch_into_with(&mut pool, jobs, &mut scratches).unwrap();
        assert_eq!(outcomes.len(), 3);
        let skipped_data = match (&outcomes[0], &outcomes[1], &outcomes[2]) {
            (
                BatchOutcome::Done { data, .. },
                BatchOutcome::Failed(CgmError::ProcessorPanicked { proc: 1, .. }),
                BatchOutcome::Skipped { data: skipped },
            ) => {
                let mut sorted = data.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..60).collect::<Vec<u64>>());
                skipped.clone()
            }
            other => panic!("unexpected outcome triple: {other:?}"),
        };
        // The skipped job comes back in its exact submitted order...
        assert_eq!(skipped_data, (200..260).collect::<Vec<u64>>());
        assert_eq!(pool.recoveries(), 1, "the pool recovered once");

        // ...and resubmitting it (solo) yields what an untouched pool of the
        // same configuration produces: being staged and handed back leaves
        // no trace in the result.
        let mut data = skipped_data;
        let mut scratch = PermuteScratch::new();
        try_permute_vec_into_with(
            &mut pool,
            &mut data,
            &PermuteOptions::default(),
            &mut scratch,
        )
        .unwrap();
        let machine = CgmMachine::new(config);
        let reference = permute_vec(&machine, (200..260).collect(), &PermuteOptions::default()).0;
        assert_eq!(data, reference);
    }

    #[test]
    fn batch_misuse_panics_before_any_item_moves() {
        use cgp_cgm::ResidentCgm;
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2).with_seed(1));
        let mut scratches = Vec::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Job 1 carries a rectangular prescription: the batch must
            // reject it on the calling thread before job 0 is staged.
            let jobs: Vec<(Vec<u64>, PermuteOptions)> = vec![
                ((0..10).collect(), PermuteOptions::default()),
                (
                    (0..10).collect(),
                    PermuteOptions::default().target_sizes(vec![5, 2, 3]),
                ),
            ];
            try_permute_batch_into_with(&mut pool, jobs, &mut scratches)
        }));
        assert!(outcome.is_err(), "rectangular prescription must panic");
        // The pool saw nothing: a clean job still matches one-shot.
        let mut data: Vec<u64> = (0..10).collect();
        let mut scratch = PermuteScratch::new();
        try_permute_vec_into_with(
            &mut pool,
            &mut data,
            &PermuteOptions::default(),
            &mut scratch,
        )
        .unwrap();
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(1));
        let reference = permute_vec(&machine, (0..10).collect(), &PermuteOptions::default()).0;
        assert_eq!(data, reference);
    }

    #[test]
    fn empty_batch_returns_no_outcomes() {
        use cgp_cgm::ResidentCgm;
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2).with_seed(1));
        let mut scratches = Vec::new();
        let outcomes = try_permute_batch_into_with(&mut pool, Vec::new(), &mut scratches).unwrap();
        assert!(outcomes.is_empty());
    }
}
