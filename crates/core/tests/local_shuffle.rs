//! Integration tests of the [`LocalShuffle`] engine choice through the
//! full Algorithm 1 pipeline: exhaustive chi-square uniformity per
//! engine × matrix backend, Lehmer-rank spot checks, the
//! `Auto`-equals-Fisher–Yates determinism invariant below the crossover,
//! and engine validity over arbitrary shapes.

use cgp_core::uniformity::{recommended_samples, test_uniformity};
use cgp_core::{LocalShuffle, MatrixBackend, Permuter, AUTO_CROSSOVER_BYTES};
use cgp_stats::{factorial, permutation_rank};
use proptest::prelude::*;

/// The non-default engines under test.  `Bucketed { bucket_items: 1 }`
/// forces the scatter phase even at `n = 4` (one item per bucket), so the
/// exhaustive tests exercise the multi-bucket path rather than the
/// single-bucket Fisher–Yates fallback; `fused.rs` already covers the
/// `FisherYates` default.
const ENGINES: [LocalShuffle; 2] = [
    LocalShuffle::Bucketed { bucket_items: 1 },
    LocalShuffle::Auto,
];

/// Exhaustive chi-square uniformity at `n = 4` for the bucketed and
/// `Auto` engines across all four matrix backends: every one of the
/// `4! = 24` permutations must appear with probability `1/24` (Theorem 1
/// holds for every local-shuffle engine, since Propositions 1–2 make the
/// bucketed scatter exactly uniform too).
#[test]
fn bucketed_and_auto_pipelines_are_uniform_for_every_backend() {
    // p = 3 > n/2 forces small and empty blocks into the pipeline too.
    let p = 3;
    for engine in ENGINES {
        for backend in MatrixBackend::ALL {
            let report = test_uniformity(4, recommended_samples(4, 100), |rep| {
                Permuter::new(p)
                    .seed(0xB0C4_E700 + rep)
                    .backend(backend)
                    .local_shuffle(engine)
                    .sample_permutation(4)
            });
            assert!(
                report.is_uniform_at(0.001),
                "{engine:?} × {backend:?} failed the exhaustive uniformity test: {report:?}"
            );
            assert!(
                report.covers_all_permutations(),
                "{engine:?} × {backend:?} never produced some permutation: {report:?}"
            );
        }
    }
}

/// Lehmer spot checks at `n = 6`: every rank an engine produces is a
/// valid index into the `6!` rank space, independent seeds hit both the
/// low and the high quarter of that space, and they essentially never
/// collide.
#[test]
fn lehmer_ranks_spread_over_the_rank_space() {
    let space = factorial(6);
    for engine in ENGINES {
        let mut ranks: Vec<u64> = (0..200u64)
            .map(|rep| {
                let perm = Permuter::new(3)
                    .seed(0x1E44_E700 + rep)
                    .local_shuffle(engine)
                    .sample_permutation(6);
                let as_u32: Vec<u32> = perm.iter().map(|&x| x as u32).collect();
                let rank = permutation_rank(&as_u32);
                assert!(rank < space, "{engine:?} produced rank {rank} >= 6!");
                rank
            })
            .collect();
        assert!(
            ranks.iter().any(|&r| r < space / 4),
            "{engine:?} never hit the low quarter of the rank space"
        );
        assert!(
            ranks.iter().any(|&r| r >= 3 * space / 4),
            "{engine:?} never hit the high quarter of the rank space"
        );
        ranks.sort_unstable();
        ranks.dedup();
        assert!(
            ranks.len() > 150,
            "{engine:?}: only {} distinct ranks out of 200 seeds",
            ranks.len()
        );
    }
}

/// Below [`AUTO_CROSSOVER_BYTES`], `Auto` resolves to Fisher–Yates, so its
/// output is *byte-identical* to an explicit `FisherYates` run with the
/// same seed — the invariant that keeps every pre-existing seeded result
/// stable under the `Auto` default.
#[test]
fn auto_matches_fisher_yates_exactly_below_the_crossover() {
    let n = 10_000usize;
    assert!(n * std::mem::size_of::<u64>() <= AUTO_CROSSOVER_BYTES);
    let data: Vec<u64> = (0..n as u64).collect();
    let fy = Permuter::new(4)
        .seed(7)
        .local_shuffle(LocalShuffle::FisherYates)
        .permute(data.clone())
        .0;
    let auto = Permuter::new(4)
        .seed(7)
        .local_shuffle(LocalShuffle::Auto)
        .permute(data)
        .0;
    assert_eq!(
        fy, auto,
        "Auto diverged from FisherYates below the crossover"
    );
}

/// Sessions agree with the one-shot path for every engine — the engine
/// choice must not depend on the substrate the job runs on.
#[test]
fn sessions_agree_with_one_shot_per_engine() {
    for engine in ENGINES {
        let permuter = Permuter::new(4).seed(99).local_shuffle(engine);
        let reference = permuter.permute((0..3_000u64).collect()).0;
        let mut session = permuter.session::<u64>();
        for round in 0..2 {
            let (via_session, _) = session.permute((0..3_000u64).collect());
            assert_eq!(
                via_session, reference,
                "{engine:?} session diverged from one-shot in round {round}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For the same seed and arbitrary shapes — including `p = 1`, empty
    /// inputs, `n < p` and tiny bucket sizes — the Fisher–Yates and
    /// bucketed engines both emit valid permutations of the input over
    /// every matrix backend.  They need *not* agree byte-for-byte (they
    /// consume the random stream differently, see the [`LocalShuffle`]
    /// docs); the chi-square gates above pin both to the same uniform law.
    #[test]
    fn both_engines_permute_validly_for_arbitrary_shapes(
        procs in 1usize..=6,
        n in 0usize..200,
        seed in any::<u64>(),
        backend_index in 0usize..4,
        bucket_items in 1usize..8,
    ) {
        let backend = MatrixBackend::ALL[backend_index];
        let identity: Vec<u64> = (0..n as u64).collect();
        for engine in [LocalShuffle::FisherYates, LocalShuffle::Bucketed { bucket_items }] {
            let permuted = Permuter::new(procs)
                .seed(seed)
                .backend(backend)
                .local_shuffle(engine)
                .permute(identity.clone())
                .0;
            let mut sorted = permuted;
            sorted.sort_unstable();
            prop_assert_eq!(
                &sorted, &identity,
                "{:?} on p = {}, n = {}, backend {:?} is not a permutation",
                engine, procs, n, backend
            );
        }
    }
}
