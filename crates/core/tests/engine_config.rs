//! The `EngineConfig` consolidation contract: one engine-selection config
//! pushed through every front door of the crate — one-shot [`Permuter`],
//! resident [`PermutationSession`], the multi-tenant service fleet
//! ([`ServiceConfig`]) and per-job [`PermuteOptions`] — round-trips
//! unchanged and produces the identical permutation on each surface.

use cgp_cgm::{CgmMachine, TransportKind};
use cgp_core::service::{PermutationService, ServiceConfig};
use cgp_core::{Algorithm, EngineConfig, LocalShuffle, PermuteOptions, Permuter};

fn engine() -> EngineConfig {
    EngineConfig::new(3)
        .seed(4242)
        .algorithm(Algorithm::Gustedt)
        .local_shuffle(LocalShuffle::FisherYates)
        .transport(TransportKind::Threads)
}

#[test]
fn every_surface_round_trips_the_same_engine_config() {
    let engine = engine();

    // Surface 1: the one-shot Permuter embeds the config verbatim…
    let permuter = Permuter::from_engine(engine);
    assert_eq!(permuter.engine(), engine);
    // …and so does the equivalent hand-built setter chain.
    let by_setters = Permuter::new(3)
        .seed(4242)
        .algorithm(Algorithm::Gustedt)
        .local_shuffle(LocalShuffle::FisherYates)
        .transport(TransportKind::Threads);
    assert_eq!(by_setters.engine(), engine);

    // Surface 2: a session opened from the permuter carries it on.
    let mut session = permuter.session::<u64>();
    assert_eq!(session.engine(), engine);
    assert_eq!(session.seed(), engine.seed);
    assert_eq!(session.procs(), engine.procs);
    assert_eq!(session.algorithm(), engine.algorithm);
    assert_eq!(session.local_shuffle(), engine.local_shuffle);

    // Surface 3: the service fleet embeds it as a public field.
    let config = ServiceConfig::from_engine(engine).machines(1);
    assert_eq!(config.engine, engine);
    assert_eq!(permuter.service_config().engine, engine);

    // Surface 4: per-job options derive the per-job half — and nothing
    // machine-shaped that could disagree with the fleet they run on.
    let options = PermuteOptions::from_engine(&engine);
    assert_eq!(options.algorithm, engine.algorithm);
    assert_eq!(options.local_shuffle, engine.local_shuffle);
    assert_eq!(options, engine.options());

    // The point of the consolidation: all four surfaces produce the
    // byte-identical permutation for the one config.
    let data: Vec<u64> = (0..900).collect();
    let reference = permuter.permute(data.clone()).0;

    let (via_session, _) = session.permute(data.clone());
    assert_eq!(via_session, reference, "session diverged from one-shot");

    let service: PermutationService<u64> = PermutationService::new(config, options.clone());
    let (via_service, _) = service.handle().permute(data.clone()).unwrap();
    assert_eq!(via_service, reference, "service diverged from one-shot");
    service.shutdown();

    // The raw layer: machine half + per-job half, assembled by hand.
    let machine = CgmMachine::new(engine.cgm_config());
    let (via_raw, _) = cgp_core::permute_vec(&machine, data, &options);
    assert_eq!(via_raw, reference, "raw permute_vec diverged from one-shot");
}

#[test]
fn deprecated_service_setters_still_delegate() {
    // The renamed setters survive as thin shims so existing callers keep
    // compiling (with a deprecation nudge) through the migration.
    #[allow(deprecated)]
    let via_shims = ServiceConfig::new(2)
        .with_seed(77)
        .with_transport(TransportKind::Threads);
    let via_engine = ServiceConfig::new(2)
        .seed(77)
        .transport(TransportKind::Threads);
    assert_eq!(via_shims, via_engine);
    assert_eq!(via_shims.engine.seed, 77);
}
