//! Integration tests of the dart-throwing engine through the public API:
//! exhaustive chi-square uniformity (including the `target_factor = 1`
//! degenerate board), Lehmer-rank spread, per-engine seed determinism (and
//! the documented darts-vs-Gustedt disagreement), substrate equivalence
//! across sessions and the service, the index/payload consistency of the
//! fast path, and validity over arbitrary shapes.

use cgp_core::uniformity::{recommended_samples, test_uniformity};
use cgp_core::{apply_permutation, Algorithm, PermuteOptions, Permuter};
use cgp_stats::{factorial, permutation_rank};
use proptest::prelude::*;

/// The factors under test everywhere: the degenerate full board (`t = n`,
/// maximal contention), the default, and a roomy board.
const FACTORS: [u32; 3] = [1, 2, 4];

/// Exhaustive chi-square uniformity at `n = 4`: with `4! = 24` buckets,
/// every permutation must appear with probability `1/24` for every target
/// factor — including factor 1, where the last dart must hit the single
/// free slot and rounds degrade the hardest.
#[test]
fn darts_pipeline_is_uniform_for_every_target_factor() {
    // p = 3 > n/2 forces tiny per-worker dart sets (one or two darts).
    let p = 3;
    for factor in FACTORS {
        let report = test_uniformity(4, recommended_samples(4, 100), |rep| {
            Permuter::new(p)
                .seed(0xDA27_0000 + rep)
                .algorithm(Algorithm::Darts {
                    target_factor: factor,
                })
                .sample_permutation(4)
        });
        assert!(
            report.is_uniform_at(0.001),
            "darts × factor {factor} failed the exhaustive uniformity test: {report:?}"
        );
        assert!(
            report.covers_all_permutations(),
            "darts × factor {factor} never produced some permutation: {report:?}"
        );
    }
}

/// Serial single-thread uniformity: `p = 1` takes the atomics-free
/// fallback path, which must obey the same uniform law.
#[test]
fn serial_fallback_is_uniform() {
    let report = test_uniformity(4, recommended_samples(4, 100), |rep| {
        Permuter::new(1)
            .seed(0xDA27_1000 + rep)
            .algorithm(Algorithm::darts())
            .sample_permutation(4)
    });
    assert!(
        report.is_uniform_at(0.001),
        "serial darts failed the exhaustive uniformity test: {report:?}"
    );
}

/// Lehmer spot checks at `n = 6` over 200 independent seeds: valid ranks,
/// both tails of the `6!` rank space hit, essentially no collisions.
#[test]
fn darts_lehmer_ranks_spread_over_the_rank_space() {
    let space = factorial(6);
    let mut ranks: Vec<u64> = (0..200u64)
        .map(|rep| {
            let perm = Permuter::new(3)
                .seed(0xDA27_2000 + rep)
                .algorithm(Algorithm::darts())
                .sample_permutation(6);
            let as_u32: Vec<u32> = perm.iter().map(|&x| x as u32).collect();
            let rank = permutation_rank(&as_u32);
            assert!(rank < space, "darts produced rank {rank} >= 6!");
            rank
        })
        .collect();
    assert!(
        ranks.iter().any(|&r| r < space / 4),
        "darts never hit the low quarter of the rank space"
    );
    assert!(
        ranks.iter().any(|&r| r >= 3 * space / 4),
        "darts never hit the high quarter of the rank space"
    );
    ranks.sort_unstable();
    ranks.dedup();
    assert!(
        ranks.len() > 150,
        "only {} distinct ranks out of 200 seeds",
        ranks.len()
    );
}

/// Each engine is exactly reproducible per seed; the two engines do *not*
/// agree with each other under the same seed (they consume their derived
/// streams differently — both are uniform, per the chi-square gates here
/// and in `fused.rs`).
#[test]
fn darts_and_gustedt_are_each_deterministic_but_do_not_agree() {
    let darts = |seed: u64| {
        Permuter::new(4)
            .seed(seed)
            .algorithm(Algorithm::darts())
            .sample_permutation(500)
    };
    let gustedt = |seed: u64| Permuter::new(4).seed(seed).sample_permutation(500);
    assert_eq!(darts(7), darts(7), "darts not seed-deterministic");
    assert_eq!(gustedt(7), gustedt(7), "gustedt not seed-deterministic");
    assert_ne!(darts(7), darts(8), "darts ignored the seed");
    assert_ne!(
        darts(7),
        gustedt(7),
        "the engines should not agree byte-for-byte for the same seed"
    );
}

/// The target factor is part of the determinism contract: different
/// factors give different (equally uniform) permutations, and the same
/// factor reproduces.
#[test]
fn target_factor_is_part_of_the_seed_contract() {
    let sample = |factor: u32| {
        Permuter::new(3)
            .seed(41)
            .algorithm(Algorithm::Darts {
                target_factor: factor,
            })
            .sample_permutation(300)
    };
    for factor in FACTORS {
        assert_eq!(sample(factor), sample(factor));
        let mut sorted = sample(factor);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..300).collect::<Vec<u64>>());
    }
    assert_ne!(sample(1), sample(2));
}

/// The payload path must induce exactly the permutation the index path
/// samples: `permute(data) == apply_permutation(sample_permutation(n),
/// data)` — the contract that makes the index specialization a fast path
/// rather than a different algorithm.
#[test]
fn payload_path_matches_the_index_path() {
    let permuter = Permuter::new(3).seed(5).algorithm(Algorithm::darts());
    let perm = permuter.sample_permutation(120);
    let data: Vec<u64> = (1000..1120).collect();
    let direct = permuter.permute(data.clone()).0;
    assert_eq!(apply_permutation(&perm, data), direct);
}

/// Sessions and the service produce the one-shot darts permutation for the
/// same configuration, and the session's `sample_permutation_into` reuses
/// the caller's buffer across calls (satellite: no per-call index-vector
/// reallocation in steady state).
#[test]
fn sessions_and_service_agree_with_one_shot_darts() {
    let permuter = Permuter::new(4).seed(99).algorithm(Algorithm::darts());
    let reference = permuter.permute((0..3_000u64).collect()).0;
    let ref_indices = permuter.sample_permutation(3_000);

    let mut session = permuter.session::<u64>();
    assert_eq!(session.algorithm(), Algorithm::darts());
    let mut out = Vec::new();
    session.sample_permutation_into(3_000, &mut out);
    assert_eq!(out, ref_indices);
    let cap = out.capacity();
    for round in 0..2 {
        session.sample_permutation_into(3_000, &mut out);
        assert_eq!(out, ref_indices, "session diverged in round {round}");
        assert_eq!(out.capacity(), cap, "index buffer reallocated per call");
        let (via_session, report) = session.permute((0..3_000u64).collect());
        assert_eq!(via_session, reference);
        assert_eq!(report.algorithm, Algorithm::darts());
    }

    let service = permuter.service_sized::<u64>(1, 4);
    let handle = service.handle();
    let (via_service, _) = handle.permute((0..3_000u64).collect()).unwrap();
    assert_eq!(via_service, reference);
    service.shutdown();
}

/// The Gustedt session index path also reuses its buffer through the
/// session scratch (the satellite perf fix): steady-state
/// `sample_permutation_into` calls retain capacity on both engines.
#[test]
fn gustedt_sample_permutation_into_reuses_the_buffer() {
    let permuter = Permuter::new(3).seed(13);
    let reference = permuter.sample_permutation(2_000);
    let mut session = permuter.session::<u64>();
    let mut out = Vec::new();
    // Two warm-up calls: the exchange buffers ratchet up once over the
    // first couple of calls (see `PermuteScratch`), then converge.
    session.sample_permutation_into(2_000, &mut out);
    session.sample_permutation_into(2_000, &mut out);
    assert_eq!(out, reference);
    let cap = out.capacity();
    let retained = session.retained_capacity();
    for _ in 0..2 {
        session.sample_permutation_into(2_000, &mut out);
        assert_eq!(out, reference);
        assert_eq!(out.capacity(), cap);
        assert_eq!(session.retained_capacity(), retained);
    }
}

/// Batches that mix engines keep the positional solo-equivalence contract
/// (darts jobs run unbatched under the hood).
#[test]
fn mixed_engine_batches_match_solo_runs() {
    use cgp_core::{try_permute_batch_into_with, BatchOutcome};
    let permuter = Permuter::new(2).seed(31);
    let mut pool: cgp_cgm::ResidentCgm<u64> =
        cgp_cgm::ResidentCgm::new(cgp_cgm::CgmConfig::new(2).with_seed(31));
    let darts_opts = PermuteOptions::new().algorithm(Algorithm::darts());
    let gustedt_opts = PermuteOptions::new();
    let solo_darts = permuter
        .clone()
        .algorithm(Algorithm::darts())
        .permute((0..100u64).collect())
        .0;
    let solo_gustedt = permuter.permute((0..100u64).collect()).0;

    let jobs = vec![
        ((0..100u64).collect(), darts_opts),
        ((0..100u64).collect(), gustedt_opts),
    ];
    let mut scratches = Vec::new();
    let outcomes = try_permute_batch_into_with(&mut pool, jobs, &mut scratches).unwrap();
    let outputs: Vec<Vec<u64>> = outcomes
        .into_iter()
        .map(|o| match o {
            BatchOutcome::Done { data, .. } => data,
            other => panic!("job did not complete: {other:?}"),
        })
        .collect();
    assert_eq!(outputs[0], solo_darts);
    assert_eq!(outputs[1], solo_gustedt);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary shapes — including `p = 1` (the serial fallback),
    /// empty inputs, `n < p` and the factor-1 board — the darts payload
    /// path emits a valid permutation of the input and agrees with its own
    /// index path.
    #[test]
    fn darts_permutes_validly_for_arbitrary_shapes(
        procs in 1usize..=6,
        n in 0usize..200,
        seed in any::<u64>(),
        factor in 1u32..=4,
    ) {
        let permuter = Permuter::new(procs)
            .seed(seed)
            .algorithm(Algorithm::Darts { target_factor: factor });
        let identity: Vec<u64> = (0..n as u64).collect();
        let permuted = permuter.permute(identity.clone()).0;
        let mut sorted = permuted.clone();
        sorted.sort_unstable();
        prop_assert_eq!(
            &sorted, &identity,
            "darts on p = {}, n = {}, factor {} is not a permutation",
            procs, n, factor
        );
        prop_assert_eq!(
            permuted,
            permuter.sample_permutation(n),
            "payload path diverged from the index path"
        );
    }
}
