//! Integration tests of the fused single-job pipeline: statistical
//! uniformity, matrix-phase panic recovery on the resident pool, and the
//! zero-startup steady-state property.

use std::sync::Arc;

use cgp_cgm::{diag, CgmConfig, CgmError, CgmMachine, ProcCtx, ResidentCgm};
use cgp_core::uniformity::{recommended_samples, test_uniformity};
use cgp_core::{
    permute_vec, permute_vec_into_with, MatrixBackend, PermuteOptions, PermuteScratch, Permuter,
};
use cgp_matrix::sample_parallel_log_ctx;

/// Exhaustive chi-square uniformity of the fused path at `n = 4` for all
/// four matrix backends: every one of the `4! = 24` permutations must
/// appear with probability `1/24` (Theorem 1), now that matrix sampling
/// runs in-context on the same workers.
#[test]
fn fused_path_is_uniform_for_every_backend() {
    // p = 3 > n/2 forces small and empty blocks into the pipeline too.
    let p = 3;
    for backend in MatrixBackend::ALL {
        let report = test_uniformity(4, recommended_samples(4, 100), |rep| {
            Permuter::new(p)
                .seed(0xF05E_D000 + rep)
                .backend(backend)
                .sample_permutation(4)
        });
        assert!(
            report.is_uniform_at(0.001),
            "{backend:?} failed the exhaustive uniformity test: {report:?}"
        );
        assert!(
            report.covers_all_permutations(),
            "{backend:?} never produced some permutation: {report:?}"
        );
    }
}

/// A worker panicking **during the matrix phase** of a fused pool job must
/// poison the job (waking peers parked in word-plane receives) and leave
/// the pool recovered — exactly the contract exchange-phase panics have.
#[test]
fn matrix_phase_panic_poisons_and_recovers_the_pool() {
    let config = CgmConfig::new(4).with_seed(11);
    let mut pool: ResidentCgm<u64> = ResidentCgm::new(config);

    // Processor 0 is the head of every first-round range of Algorithm 5:
    // killing it strands its peers in blocked word-plane receives, so this
    // exercises the abort protocol on the matrix plane specifically.
    let source: Arc<Vec<u64>> = Arc::new(vec![25; 4]);
    let target = Arc::clone(&source);
    let err = pool
        .try_run(move |ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                panic!("matrix-phase boom");
            }
            sample_parallel_log_ctx(&mut ctx.matrix_ctx(), &source, &target)
        })
        .unwrap_err();
    match err {
        CgmError::ProcessorPanicked { proc, ref message } => {
            assert_eq!(proc, 0, "the root cause is blamed, not a woken peer");
            assert!(message.contains("matrix-phase boom"), "got: {message}");
        }
        other => panic!("unexpected error: {other}"),
    }

    // The pool is not poisoned: a full fused permutation (matrix phase
    // included) runs clean on it and matches the one-shot path exactly.
    let options = PermuteOptions::with_backend(MatrixBackend::ParallelLog);
    let machine = CgmMachine::new(config);
    let reference = permute_vec(&machine, (0..400u64).collect(), &options).0;
    let mut scratch = PermuteScratch::new();
    let mut data: Vec<u64> = (0..400).collect();
    let report = permute_vec_into_with(&mut pool, &mut data, &options, &mut scratch);
    assert_eq!(data, reference, "post-recovery permutation diverged");
    assert!(
        report.matrix_metrics.total_words_sent() > 0,
        "the recovered job's matrix phase was metered"
    );
}

/// Acceptance criterion of the fusion: at steady state, a fused
/// `ParallelOptimal` permutation on a session performs **zero thread
/// spawns and zero channel-fabric constructions** — the parallel matrix
/// backends no longer build a one-shot machine per call.
#[test]
fn steady_state_session_makes_zero_spawns_and_zero_fabrics() {
    let permuter = Permuter::new(4)
        .seed(99)
        .backend(MatrixBackend::ParallelOptimal);
    // The one-shot reference (which *does* spawn) and the session build
    // both happen before the baseline snapshot.
    let reference = permuter.permute((0..2_000u64).collect()).0;
    let mut session = permuter.session::<u64>();
    let (warmup, _) = session.permute((0..2_000u64).collect());
    assert_eq!(warmup, reference);

    let baseline = diag::startup_counters();
    for round in 0..5 {
        let (out, report) = session.permute((0..2_000u64).collect());
        assert_eq!(out, reference, "round {round} diverged");
        // The in-context matrix phase really ran on the pool's workers …
        assert!(report.matrix_metrics.total_words_sent() > 0);
        assert!(report.matrix_rounds() > 0);
        // … and per-job metering still isolates each call.
        assert_eq!(report.max_exchange_volume(), 2 * 2_000 / 4);
    }
    let after = diag::startup_counters();
    assert_eq!(
        after.thread_spawns, baseline.thread_spawns,
        "steady-state fused permutations must spawn no threads"
    );
    assert_eq!(
        after.fabric_builds, baseline.fabric_builds,
        "steady-state fused permutations must build no channel fabrics"
    );

    // Control: the same permutation one-shot pays one fabric and p spawns,
    // which is exactly what the counters measure.
    let _ = permuter.permute((0..2_000u64).collect());
    let control = diag::startup_counters();
    assert_eq!(control.fabric_builds, after.fabric_builds + 1);
    assert_eq!(control.thread_spawns, after.thread_spawns + 4);
}

/// The fused report's phase attribution: every backend gets a matrix-phase
/// meter (zero volume only where nothing can travel, i.e. `p = 1`), and
/// `total_elapsed` is measured wall-clock — at least each phase, but not
/// necessarily the phase sum (phases overlap).
#[test]
fn per_phase_metrics_and_total_elapsed_are_coherent() {
    for backend in MatrixBackend::ALL {
        let permuter = Permuter::new(4).seed(5).backend(backend);
        let (_, report) = permuter.permute((0..10_000u64).collect());
        assert_eq!(report.matrix_metrics.procs(), 4, "{backend:?}");
        assert!(
            report.matrix_metrics.total_words_sent() > 0,
            "{backend:?}: the fused matrix phase moves its rows over the word plane"
        );
        assert!(
            report.exchange_metrics.total_words_sent() >= 10_000,
            "{backend:?}: the data plane carries the payload"
        );
        assert!(report.total_elapsed() >= report.matrix_elapsed);
        assert!(report.total_elapsed() >= report.exchange_elapsed);

        // p = 1: a (possibly zero) meter still exists — no more `None`.
        let (_, report) = Permuter::new(1)
            .seed(5)
            .backend(backend)
            .permute((0..100u64).collect());
        assert_eq!(report.matrix_metrics.procs(), 1, "{backend:?}");
        assert_eq!(report.matrix_metrics.total_messages(), 0, "{backend:?}");
    }
}

/// Golden pin of the thread-transport engine: the permutations below were
/// captured from the engine **before** the transport layer was extracted
/// (seed 42, n = 32, p = 4, per backend).  The thread transport is the
/// zero-overhead default fast path, so the refactor must be byte-invisible:
/// the same seed reproduces these vectors exactly, one-shot and via a
/// session.
#[test]
fn thread_transport_reproduces_pre_transport_golden_permutations() {
    let golden: [(MatrixBackend, [u64; 32]); 4] = [
        (
            MatrixBackend::Sequential,
            [
                7, 1, 10, 12, 26, 30, 9, 14, 16, 31, 21, 2, 20, 8, 23, 15, 28, 18, 25, 24, 29, 0,
                22, 19, 5, 11, 4, 17, 13, 27, 3, 6,
            ],
        ),
        (
            MatrixBackend::Recursive,
            [
                7, 1, 30, 0, 31, 26, 2, 23, 29, 25, 10, 5, 21, 12, 14, 9, 28, 16, 22, 24, 19, 15,
                20, 8, 3, 13, 6, 17, 18, 27, 4, 11,
            ],
        ),
        (
            MatrixBackend::ParallelLog,
            [
                7, 1, 21, 9, 30, 20, 2, 23, 31, 29, 19, 0, 26, 14, 16, 12, 28, 8, 25, 24, 22, 5,
                15, 10, 3, 13, 6, 17, 18, 27, 4, 11,
            ],
        ),
        (
            MatrixBackend::ParallelOptimal,
            [
                7, 1, 21, 12, 26, 30, 9, 23, 22, 31, 16, 2, 19, 14, 20, 0, 24, 15, 29, 25, 18, 5,
                10, 3, 4, 13, 8, 28, 17, 27, 6, 11,
            ],
        ),
    ];
    for (backend, expected) in golden {
        let permuter = Permuter::new(4).seed(42).backend(backend);
        assert_eq!(
            permuter.sample_permutation(32),
            expected,
            "{backend:?} one-shot diverged from the pre-transport golden vector"
        );
        let mut session = permuter.session::<u64>();
        assert_eq!(
            session.sample_permutation(32),
            expected,
            "{backend:?} session diverged from the pre-transport golden vector"
        );
    }
}
