//! Session-layer integration tests: the resident-machine soak and the
//! session ↔ one-shot equivalence properties.
//!
//! The soak drives hundreds of back-to-back permutations through one
//! [`cgp_core::PermutationSession`] — the steady-state shape a service
//! runs — and asserts the two load-bearing invariants of the resident
//! design: the scratch's retained capacity *converges* (steady state
//! allocates nothing new) and the produced permutation sequence is
//! *deterministic*, byte-for-byte equal to the one-shot path under the
//! same seed (resident contexts carry state across jobs, but the engine
//! derives every stream it uses from the machine seed per call).
//!
//! CI runs this file under `--release` on every push, so the pool's
//! dispatch, recovery and shutdown paths get exercised at optimized
//! thread timings too.

use proptest::prelude::*;

use cgp_core::{MatrixBackend, PermuteScratch, Permuter};

#[test]
fn soak_hundreds_of_back_to_back_permutations() {
    const ROUNDS: usize = 300;
    const N: usize = 4_096;
    let permuter = Permuter::new(8).seed(0xC0FFEE);

    // One-shot references: the permutation is a pure function of the seed
    // and shape, so every round must reproduce this exact vector …
    let reference = permuter.permute((0..N as u64).collect()).0;
    // … and the one-shot scratch path serves as the second determinism
    // witness, advanced in lock-step with the session.
    let mut one_shot_scratch = PermuteScratch::new();

    let mut session = permuter.session::<u64>();
    let mut capacities = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let mut via_session: Vec<u64> = (0..N as u64).collect();
        session.permute_into(&mut via_session);
        assert_eq!(
            via_session, reference,
            "round {round}: session diverged from the one-shot permutation"
        );
        if round % 50 == 0 {
            let mut via_one_shot: Vec<u64> = (0..N as u64).collect();
            permuter.permute_into(&mut via_one_shot, &mut one_shot_scratch);
            assert_eq!(via_one_shot, reference, "one-shot scratch path diverged");
        }
        capacities.push(session.retained_capacity());
    }

    // Convergence: the exchange buffers may ratchet during the first couple
    // of calls (they ping-pong between the i→j and j→i directions); from
    // round 2 on, the retained capacity must be exactly stable — steady
    // state allocates nothing new.
    assert!(capacities[0] >= N, "blocks + exchange buffers are retained");
    let converged = capacities[2];
    for (round, &cap) in capacities.iter().enumerate().skip(2) {
        assert_eq!(
            cap, converged,
            "round {round}: retained capacity moved after convergence"
        );
    }

    session.shutdown();
}

#[test]
fn soak_survives_shape_changes() {
    // A session is not pinned to one shape: growing and shrinking vectors
    // through the same scratch must stay correct (capacities ratchet to the
    // largest shape seen, they never shrink mid-session).
    let permuter = Permuter::new(4).seed(99);
    let mut session = permuter.session::<u64>();
    for &n in &[100usize, 5_000, 0, 1, 5_000, 757, 100] {
        let (out, _) = session.permute((0..n as u64).collect());
        let mut sorted = out;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u64).collect::<Vec<u64>>(), "n = {n}");
        let reference = permuter.permute((0..n as u64).collect()).0;
        let (again, _) = session.permute((0..n as u64).collect());
        assert_eq!(again, reference, "n = {n} diverged from one-shot");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Session and one-shot `permute_vec` agree for arbitrary shapes —
    /// including `p = 1`, empty inputs and `n < p` (empty blocks) — over
    /// every matrix backend.
    #[test]
    fn session_agrees_with_one_shot_for_arbitrary_shapes(
        procs in 1usize..=6,
        n in 0usize..200,
        seed in any::<u64>(),
        backend_index in 0usize..4,
    ) {
        let backend = MatrixBackend::ALL[backend_index];
        let permuter = Permuter::new(procs).seed(seed).backend(backend);
        let one_shot = permuter.permute((0..n as u64).collect()).0;
        let mut session = permuter.session::<u64>();
        // Two calls through the same session: both must match the one-shot
        // result (the second exercising the warmed scratch).
        for round in 0..2 {
            let (via_session, _) = session.permute((0..n as u64).collect());
            prop_assert_eq!(
                &via_session, &one_shot,
                "p = {}, n = {}, backend {:?}, round {}", procs, n, backend, round
            );
        }
    }

    /// The index fast path agrees between substrates too.
    #[test]
    fn session_sample_permutation_agrees(procs in 1usize..=5, n in 0usize..120, seed in any::<u64>()) {
        let permuter = Permuter::new(procs).seed(seed);
        let mut session = permuter.session::<u64>();
        prop_assert_eq!(session.sample_permutation(n), permuter.sample_permutation(n));
    }
}
