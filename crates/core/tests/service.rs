//! Stress and fault-isolation suite for the multi-tenant
//! [`cgp_core::PermutationService`].
//!
//! The scenarios here are concurrency-shaped — many client threads
//! hammering the shared admission queue while machines serve, fail and
//! recover — so CI also runs this file under `--release`, where thread
//! timings are tight enough to reproduce dispatch races that debug builds
//! never hit (same policy as the pool and session suites).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cgp_core::{
    EngineFault, MatrixBackend, PermuteOptions, Permuter, Priority, ServiceError, ServiceHandle,
};

/// The mixed job sizes the stress clients cycle through: empty, single,
/// smaller-than-p, odd, and bulky blocks all at once on the same fleet.
const SIZES: [usize; 6] = [0, 1, 7, 64, 257, 2000];

fn identity(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// One-shot references for every job size: the service must reproduce
/// these exactly (same seed ⇒ same permutation, no matter which machine
/// of the fleet serves the job or what ran on it before).
fn references(permuter: &Permuter) -> HashMap<usize, Vec<u64>> {
    SIZES
        .iter()
        .map(|&n| (n, permuter.permute(identity(n)).0))
        .collect()
}

#[test]
fn concurrent_tenants_survive_a_panicking_neighbour() {
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 5;
    let permuter = Permuter::new(3)
        .seed(41)
        .backend(MatrixBackend::ParallelOptimal);
    let expected = Arc::new(references(&permuter));
    let service = permuter.service_sized::<u64>(2, 4);

    let good_jobs = Arc::new(AtomicU64::new(0));
    let handles: Vec<ServiceHandle<u64>> = (0..CLIENTS).map(|_| service.handle()).collect();
    let saboteur_tenant = handles[2].tenant();

    std::thread::scope(|scope| {
        for (client, handle) in handles.iter().enumerate() {
            let expected = Arc::clone(&expected);
            let good_jobs = Arc::clone(&good_jobs);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let n = SIZES[(client + round) % SIZES.len()];
                    if client == 2 && round == 2 {
                        // The bad tenant: this job panics mid-matrix-phase
                        // inside a worker of whichever machine picked it up.
                        let opts = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal)
                            .inject_fault(EngineFault::matrix_phase(1));
                        let ticket = handle
                            .submit_with(identity(2000), opts, Priority::Normal)
                            .unwrap();
                        match ticket.wait().unwrap_err() {
                            ServiceError::JobFailed(e) => {
                                assert!(
                                    e.to_string().contains("virtual processor 1 panicked"),
                                    "the fault is attributed: {e}"
                                );
                            }
                            other => panic!("unexpected error: {other}"),
                        }
                        continue;
                    }
                    let ticket = handle.submit(identity(n)).unwrap();
                    let (out, report) = ticket.wait().unwrap_or_else(|e| {
                        panic!("client {client} round {round} (n = {n}) failed: {e}")
                    });
                    assert_eq!(
                        out, expected[&n],
                        "client {client} round {round}: a neighbour's panic must not \
                         change this tenant's permutation"
                    );
                    assert_eq!(report.backend, MatrixBackend::ParallelOptimal);
                    good_jobs.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let metrics = service.shutdown();
    let good = good_jobs.load(Ordering::Relaxed);
    assert_eq!(good, (CLIENTS * ROUNDS) as u64 - 1);
    assert_eq!(metrics.jobs_served, good);
    assert_eq!(metrics.jobs_failed, 1, "exactly the sabotaged job failed");
    let saboteur = metrics
        .per_tenant
        .iter()
        .find(|t| t.tenant == saboteur_tenant)
        .expect("the saboteur has a metrics slot");
    assert_eq!(
        saboteur.jobs_failed, 1,
        "the failure is billed to its tenant"
    );
    assert_eq!(saboteur.jobs_served, (ROUNDS - 1) as u64);
    let recoveries: u64 = metrics.per_machine.iter().map(|m| m.recoveries).sum();
    assert_eq!(recoveries, 1, "one machine ran one recovery round");
    let machine_jobs: u64 = metrics.per_machine.iter().map(|m| m.jobs).sum();
    assert_eq!(machine_jobs, (CLIENTS * ROUNDS) as u64);
}

#[test]
fn blocking_submits_ride_out_backpressure_under_contention() {
    // A deliberately undersized service: one machine, a depth-2 queue and
    // eight pushy clients.  Blocking submits must park and complete without
    // deadlock or loss, and the queue must never exceed its depth.
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    let permuter = Permuter::new(2).seed(23);
    let expected = Arc::new(references(&permuter));
    let service = permuter.service_sized::<u64>(1, 2);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = service.handle();
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let n = SIZES[(client * 2 + round) % SIZES.len()];
                    let (out, _) = handle.permute(identity(n)).unwrap();
                    assert_eq!(out, expected[&n], "client {client} round {round}");
                }
            });
        }
        for _ in 0..50 {
            // Admission holds at most its depth (2); the single machine's
            // deque holds at most one refill's worth, which that same depth
            // bounds — so the point-in-time sum is bounded by twice the
            // depth.
            assert!(
                service.queued_jobs() <= 4,
                "the queued-job gauge is bounded by the configured depth"
            );
            std::thread::yield_now();
        }
    });

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_served, (CLIENTS * ROUNDS) as u64);
    assert_eq!(metrics.jobs_failed, 0);
    assert!(
        metrics.queue_wait > std::time::Duration::ZERO,
        "an oversubscribed queue shows up in the wait meter"
    );
}

#[test]
fn try_submit_retry_loops_make_progress_alongside_faults() {
    // Non-blocking clients spin on QueueFull (handing the payload back each
    // time) while a saboteur injects panics; everyone's jobs eventually land
    // and match the references.
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 4;
    let permuter = Permuter::new(2).seed(57);
    let expected = Arc::new(references(&permuter));
    let service = permuter.service_sized::<u64>(2, 1);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = service.handle();
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    if client == 0 {
                        let opts =
                            PermuteOptions::default().inject_fault(EngineFault::exchange_phase(0));
                        let ticket = handle
                            .submit_with(identity(500), opts, Priority::Normal)
                            .unwrap();
                        assert!(matches!(ticket.wait(), Err(ServiceError::JobFailed(_))));
                        continue;
                    }
                    let n = SIZES[(client + round) % SIZES.len()];
                    let mut payload = identity(n);
                    let ticket = loop {
                        match handle.try_submit(payload) {
                            Ok(t) => break t,
                            Err(rejected) => {
                                assert_eq!(rejected.error, ServiceError::QueueFull);
                                payload = rejected.data;
                                std::thread::yield_now();
                            }
                        }
                    };
                    let (out, _) = ticket.wait().unwrap();
                    assert_eq!(out, expected[&n], "client {client} round {round}");
                }
            });
        }
    });

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_served, ((CLIENTS - 1) * ROUNDS) as u64);
    assert_eq!(metrics.jobs_failed, ROUNDS as u64);
    assert!(
        metrics.per_machine.iter().all(|m| m.jobs > 0),
        "FIFO dispatch to idle machines keeps the whole fleet in rotation"
    );
}

#[test]
fn shutdown_under_load_drains_every_accepted_ticket() {
    let permuter = Permuter::new(2).seed(77);
    let service = permuter.service_sized::<u64>(2, 32);
    let handle = service.handle();
    let tickets: Vec<_> = (0..24)
        .map(|i| handle.submit(identity(SIZES[i % SIZES.len()])).unwrap())
        .collect();
    // Shut down with most of those jobs still queued: every accepted ticket
    // must still resolve successfully (drain, not drop).
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_served, 24);
    for (i, t) in tickets.into_iter().enumerate() {
        let n = SIZES[i % SIZES.len()];
        let (out, _) = t.wait().unwrap_or_else(|e| panic!("ticket {i} lost: {e}"));
        assert_eq!(out.len(), n);
    }
}
