//! Scheduler-policy suite for the multi-tenant
//! [`cgp_core::PermutationService`]: fair-share admission under a flooding
//! tenant, work-stealing and coalescing seed-equivalence, and mid-batch
//! fault containment.
//!
//! The companion `service.rs` suite stresses the client surface (tickets,
//! backpressure, shutdown); this file pins down the *scheduling* layer —
//! that quotas isolate tenants, that where and how a job runs (home deque,
//! stolen, coalesced) never changes its permutation, and that a panic
//! inside a coalesced batch fails exactly one ticket.  CI runs it under
//! `--release` as well (same policy as the pool and session suites).

use cgp_core::{
    EngineFault, MatrixBackend, PermutationService, PermuteOptions, Permuter, Priority,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

fn identity(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Polls until every queued job has been picked up by a machine (the
/// admission buffer and deques are empty).  Used to stage jobs onto
/// specific machines deterministically.
fn drain_queues<T: Send + 'static>(service: &PermutationService<T>) {
    while service.queued_jobs() > 0 {
        std::thread::yield_now();
    }
}

#[test]
fn a_flooding_tenant_cannot_starve_quotad_peers() {
    const FLOOD_JOBS: usize = 20;
    const VICTIM_JOBS: usize = 8;
    let permuter = Permuter::new(2).seed(61);
    let flood_reference = permuter.permute(identity(2000)).0;
    let victim_reference = permuter.permute(identity(500)).0;
    // One machine, a deep-ish buffer, and a tight per-tenant quota: the
    // flooder's blocking submits park on its own quota, leaving the rest
    // of the buffer to the quiet tenants.
    let config = permuter
        .service_config()
        .machines(1)
        .queue_depth(8)
        .tenant_quota(2);
    let service: PermutationService<u64> =
        PermutationService::new(config, PermuteOptions::default());
    let flooder = service.handle();
    let victims = [service.handle(), service.handle()];
    let flooder_tenant = flooder.tenant();

    std::thread::scope(|scope| {
        let flood_reference = &flood_reference;
        scope.spawn(move || {
            for round in 0..FLOOD_JOBS {
                let (out, _) = flooder.permute(identity(2000)).unwrap();
                assert_eq!(out, *flood_reference, "flooder round {round}");
            }
        });
        for (v, victim) in victims.iter().enumerate() {
            let victim_reference = &victim_reference;
            scope.spawn(move || {
                for round in 0..VICTIM_JOBS {
                    let (out, _) = victim.permute(identity(500)).unwrap();
                    assert_eq!(out, *victim_reference, "victim {v} round {round}");
                }
            });
        }
    });

    let metrics = service.shutdown();
    assert_eq!(
        metrics.jobs_served,
        (FLOOD_JOBS + 2 * VICTIM_JOBS) as u64,
        "every tenant's jobs completed despite the flood"
    );
    assert_eq!(metrics.jobs_failed, 0);
    // Billing: per-tenant ledgers partition the global one exactly.
    let slot = |tenant: usize| {
        metrics
            .per_tenant
            .iter()
            .find(|t| t.tenant == tenant)
            .expect("tenant has a metrics slot")
    };
    assert_eq!(slot(flooder_tenant).jobs_served, FLOOD_JOBS as u64);
    for victim in &victims {
        assert_eq!(slot(victim.tenant()).jobs_served, VICTIM_JOBS as u64);
    }
    let tenant_sum: u64 = metrics.per_tenant.iter().map(|t| t.jobs_served).sum();
    assert_eq!(tenant_sum, metrics.jobs_served);
    assert!(
        metrics.queue_wait > std::time::Duration::ZERO,
        "an oversubscribed machine shows up in the wait meter"
    );
}

#[test]
fn stolen_jobs_match_their_one_shot_permutation_for_every_backend() {
    const MEDIUM_JOBS: usize = 12;
    let mut total_steals = 0;
    for backend in MatrixBackend::ALL {
        let permuter = Permuter::new(2).seed(83).backend(backend);
        let stall_reference = permuter.permute(identity(150_000)).0;
        let medium_reference = permuter.permute(identity(4000)).0;
        // Coalescing off: every job is its own deque entry, so the backlog
        // is stealable job by job.
        let config = permuter
            .service_config()
            .machines(2)
            .queue_depth(MEDIUM_JOBS + 2)
            .coalesce_budget(0);
        let service: PermutationService<u64> =
            PermutationService::new(config, PermuteOptions::with_backend(backend));
        let handle = service.handle();

        // Stage: occupy both machines with one long job each, so the
        // medium backlog accumulates in admission...
        let stall_a = handle.submit(identity(150_000)).unwrap();
        drain_queues(&service);
        let stall_b = handle.submit(identity(150_000)).unwrap();
        drain_queues(&service);
        // ...then whichever machine frees first refills the *entire*
        // backlog into its own deque (the refill is atomic under the
        // admission lock), and the other machine — finding admission
        // empty — must steal its share back.
        let mediums: Vec<_> = (0..MEDIUM_JOBS)
            .map(|_| handle.submit(identity(4000)).unwrap())
            .collect();

        assert_eq!(stall_a.wait().unwrap().0, stall_reference);
        assert_eq!(stall_b.wait().unwrap().0, stall_reference);
        for (k, ticket) in mediums.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().unwrap().0,
                medium_reference,
                "{backend:?} job {k}: home, stolen or requeued, the \
                 permutation is pinned by the seed"
            );
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, (MEDIUM_JOBS + 2) as u64);
        let machine_jobs: u64 = metrics.per_machine.iter().map(|m| m.jobs).sum();
        assert_eq!(machine_jobs, metrics.jobs_served);
        total_steals += metrics.steals;
    }
    // Aggregated across the four backends so one lucky scheduling round
    // cannot flake the suite; the staging above makes steals overwhelmingly
    // likely in each.
    assert!(
        total_steals > 0,
        "the idle machine steals backlog instead of parking"
    );
}

#[test]
fn coalesced_service_jobs_match_one_shot_and_are_metered() {
    const TINY_JOBS: usize = 10;
    let permuter = Permuter::new(2).seed(101);
    let tiny_reference = permuter.permute(identity(64)).0;
    let service = permuter.service_sized::<u64>(1, TINY_JOBS + 2);
    let handle = service.handle();

    // Occupy the single machine with a long job whose options differ (a
    // pinned backend), so it can never coalesce with the tiny jobs...
    let stall_opts = PermuteOptions::with_backend(MatrixBackend::Sequential);
    let stall = handle
        .submit_with(identity(200_000), stall_opts, Priority::Normal)
        .unwrap();
    // ...while the tiny jobs pile up behind it and arrive on the deque as
    // one refill: consecutive, compatible, and far under the byte budget —
    // one fenced batch.
    let tickets: Vec<_> = (0..TINY_JOBS)
        .map(|_| handle.submit(identity(64)).unwrap())
        .collect();

    stall.wait().unwrap();
    for (k, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait().unwrap().0,
            tiny_reference,
            "job {k}: coalescing is invisible in the permutation"
        );
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_served, (TINY_JOBS + 1) as u64);
    assert_eq!(metrics.coalesced_jobs, TINY_JOBS as u64);
    assert_eq!(
        metrics.coalesced_batches, 1,
        "the whole tiny backlog ran as one batch"
    );
    assert_eq!(metrics.per_machine[0].coalesced_jobs, TINY_JOBS as u64);
}

#[test]
fn a_mid_batch_panic_fails_only_the_faulting_ticket() {
    let permuter = Permuter::new(2).seed(107);
    let tiny_reference = permuter.permute(identity(64)).0;
    let service = permuter.service_sized::<u64>(1, 8);
    let handle = service.handle();

    // Stage one coalesced batch of four tiny jobs behind a stall (options
    // incompatible with the tinies, as above); the second job of the batch
    // panics mid-matrix-phase.  Injected faults do not break coalescing
    // compatibility — a faulty job must be contained *inside* a batch, not
    // quarantined out of one.
    let stall_opts = PermuteOptions::with_backend(MatrixBackend::Sequential);
    let stall = handle
        .submit_with(identity(200_000), stall_opts, Priority::Normal)
        .unwrap();
    let clean_before = handle.submit(identity(64)).unwrap();
    let poisoned = handle
        .submit_with(
            identity(64),
            PermuteOptions::default().inject_fault(EngineFault::matrix_phase(1)),
            Priority::Normal,
        )
        .unwrap();
    let clean_after: Vec<_> = (0..2)
        .map(|_| handle.submit(identity(64)).unwrap())
        .collect();

    stall.wait().unwrap();
    assert_eq!(clean_before.wait().unwrap().0, tiny_reference);
    assert!(
        matches!(
            poisoned.wait().unwrap_err(),
            cgp_core::ServiceError::JobFailed(_)
        ),
        "exactly the faulting job's ticket fails"
    );
    for (k, ticket) in clean_after.into_iter().enumerate() {
        assert_eq!(
            ticket.wait().unwrap().0,
            tiny_reference,
            "job {k} behind the panic was requeued and served clean"
        );
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_served, 4, "stall + three clean tinies");
    assert_eq!(metrics.jobs_failed, 1);
    assert_eq!(metrics.per_machine[0].recoveries, 1, "one recovery round");
    assert_eq!(
        metrics.coalesced_jobs, 4,
        "two in the faulting batch (one served, one failed), two requeued"
    );
    assert_eq!(metrics.coalesced_batches, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine-level seed equivalence under arbitrary shapes: a batched
    /// [`cgp_core::try_permute_batch_into_with`] run produces byte-for-byte
    /// the outputs of the same jobs run solo, back to back, on an
    /// identically configured pool — including empty jobs, `n < p`, and
    /// single-job batches.
    #[test]
    fn batched_runs_equal_solo_runs_for_arbitrary_shapes(
        procs in 1usize..=4,
        seed in any::<u64>(),
        backend_index in 0usize..4,
        sizes in prop_vec(0usize..150, 1..6),
    ) {
        use cgp_cgm::{CgmConfig, ResidentCgm};
        use cgp_core::{try_permute_batch_into_with, try_permute_vec_into_with};
        use cgp_core::{BatchOutcome, PermuteScratch};

        let backend = MatrixBackend::ALL[backend_index];
        let config = CgmConfig::new(procs).with_seed(seed);
        let jobs: Vec<(Vec<u64>, PermuteOptions)> = sizes
            .iter()
            .map(|&n| (identity(n), PermuteOptions::with_backend(backend)))
            .collect();

        let mut solo_pool: ResidentCgm<u64> = ResidentCgm::new(config);
        let mut solo_scratch = PermuteScratch::new();
        let mut solo_outputs = Vec::new();
        for (data, options) in &jobs {
            let mut data = data.clone();
            try_permute_vec_into_with(&mut solo_pool, &mut data, options, &mut solo_scratch)
                .unwrap();
            solo_outputs.push(data);
        }

        let mut batch_pool: ResidentCgm<u64> = ResidentCgm::new(config);
        let mut scratches = Vec::new();
        let outcomes =
            try_permute_batch_into_with(&mut batch_pool, jobs, &mut scratches).unwrap();
        for (k, (outcome, solo)) in outcomes.into_iter().zip(solo_outputs).enumerate() {
            match outcome {
                BatchOutcome::Done { data, .. } => {
                    prop_assert_eq!(data, solo, "job {} diverged from solo", k);
                }
                other => panic!("job {k}: unexpected outcome {other:?}"),
            }
        }
    }
}
