//! The fused Algorithm 1 pipeline over the **process** transport: the
//! uniformity, determinism and fault-containment guarantees the thread
//! substrate is held to, re-proven with every virtual processor's mailbox
//! living in a child process.
//!
//! `harness = false`: the process transport spawns mailbox children by
//! re-executing the current binary, so `main` must install the re-exec hook
//! (`cgp_cgm::transport::process::init`) before anything else — the default
//! libtest harness owns `main` and cannot.

use cgp_core::uniformity::{recommended_samples, test_uniformity};
use cgp_core::{
    EngineFault, MatrixBackend, PermuteOptions, Permuter, Priority, ServiceError, TransportKind,
};
use cgp_stats::{factorial, permutation_rank};

fn main() {
    cgp_cgm::transport::process::init();

    run(
        "fused_pipeline_is_uniform_for_every_backend",
        fused_pipeline_is_uniform_for_every_backend,
    );
    run(
        "lehmer_ranks_spread_over_the_rank_space",
        lehmer_ranks_spread_over_the_rank_space,
    );
    run(
        "session_equals_one_shot_equals_threads",
        session_equals_one_shot_equals_threads,
    );
    run(
        "mid_matrix_panic_is_contained_for_every_backend",
        mid_matrix_panic_is_contained_for_every_backend,
    );

    println!("process_transport: all checks passed");
}

fn run(name: &str, f: impl FnOnce()) {
    print!("{name} ... ");
    f();
    println!("ok");
}

fn process_permuter(procs: usize, seed: u64) -> Permuter {
    Permuter::new(procs)
        .seed(seed)
        .transport(TransportKind::Process)
}

/// Exhaustive chi-square uniformity at `n = 4` across all four matrix
/// backends, with the pipeline running over child-process mailboxes:
/// every one of the `4! = 24` permutations must appear with probability
/// `1/24`.  `p = 3 > n/2` forces small and empty blocks through the
/// inter-process exchange too.  (Each sample is a fresh one-shot machine —
/// three spawned children — so the sample budget is smaller than the
/// in-process sweep in `local_shuffle.rs`; expected counts stay ≥ 10 per
/// bucket, comfortably above the chi-square rule of thumb.)
fn fused_pipeline_is_uniform_for_every_backend() {
    for backend in MatrixBackend::ALL {
        let report = test_uniformity(4, recommended_samples(4, 10), |rep| {
            process_permuter(3, 0xB0C4_EE00 + rep)
                .backend(backend)
                .sample_permutation(4)
        });
        assert!(
            report.is_uniform_at(0.001),
            "{backend:?} over the process transport failed the exhaustive \
             uniformity test: {report:?}"
        );
        assert!(
            report.covers_all_permutations(),
            "{backend:?} over the process transport never produced some \
             permutation: {report:?}"
        );
    }
}

/// Lehmer spot checks at `n = 6`: every rank the process-transport pipeline
/// produces is a valid index into the `6!` rank space, independent seeds hit
/// both the low and the high quarter of that space, and they essentially
/// never collide.
fn lehmer_ranks_spread_over_the_rank_space() {
    let space = factorial(6);
    let mut ranks: Vec<u64> = (0..60u64)
        .map(|rep| {
            let perm = process_permuter(3, 0x1E44_EE00 + rep).sample_permutation(6);
            let as_u32: Vec<u32> = perm.iter().map(|&x| x as u32).collect();
            let rank = permutation_rank(&as_u32);
            assert!(rank < space, "produced rank {rank} >= 6!");
            rank
        })
        .collect();
    assert!(
        ranks.iter().any(|&r| r < space / 4),
        "never hit the low quarter of the rank space"
    );
    assert!(
        ranks.iter().any(|&r| r >= 3 * space / 4),
        "never hit the high quarter of the rank space"
    );
    ranks.sort_unstable();
    ranks.dedup();
    assert!(
        ranks.len() > 45,
        "only {} distinct ranks out of 60 seeds",
        ranks.len()
    );
}

/// The substrate never touches the engine's random streams: a process
/// session, the process one-shot path and the thread one-shot path all emit
/// the identical permutation for the same seed.
fn session_equals_one_shot_equals_threads() {
    let on_threads = Permuter::new(3).seed(41).permute((0..240u64).collect()).0;
    let permuter = process_permuter(3, 41);
    let one_shot = permuter.permute((0..240u64).collect()).0;
    assert_eq!(
        one_shot, on_threads,
        "same seed, same permutation, regardless of substrate"
    );
    let mut session = permuter.session::<u64>();
    for round in 0..3 {
        let (via_session, _) = session.permute((0..240u64).collect());
        assert_eq!(
            via_session, one_shot,
            "process session diverged from one-shot in round {round}"
        );
    }
    session.shutdown();
}

/// A job that panics mid-matrix-phase inside a child-backed virtual
/// processor is contained to its own ticket for every matrix backend: the
/// pool recovers (draining the dead job's in-flight inter-process frames)
/// and the next job on the same fleet is byte-clean.
fn mid_matrix_panic_is_contained_for_every_backend() {
    for backend in MatrixBackend::ALL {
        let permuter = process_permuter(3, 7).backend(backend);
        let reference = permuter.permute((0..120u64).collect()).0;
        let service = permuter.service_sized::<u64>(1, 8);
        let handle = service.handle();
        let before = handle.submit((0..120u64).collect()).unwrap();
        let poisoned = handle
            .submit_with(
                (0..120u64).collect(),
                PermuteOptions::with_backend(backend).inject_fault(EngineFault::matrix_phase(1)),
                Priority::Normal,
            )
            .unwrap();
        let after = handle.submit((0..120u64).collect()).unwrap();
        assert_eq!(before.wait().unwrap().0, reference, "{backend:?}");
        match poisoned.wait().unwrap_err() {
            ServiceError::JobFailed(cgp_cgm::CgmError::ProcessorPanicked { proc, .. }) => {
                assert_eq!(proc, 1, "{backend:?}")
            }
            other => panic!("{backend:?}: unexpected error: {other}"),
        }
        assert_eq!(
            after.wait().unwrap().0,
            reference,
            "{backend:?}: the machine recovered and the next job is clean"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_served, 2, "{backend:?}");
        assert_eq!(metrics.jobs_failed, 1, "{backend:?}");
        assert_eq!(metrics.per_machine[0].recoveries, 1, "{backend:?}");
    }
}
