//! End-to-end tests of the wire front-end: byte-identity with in-process
//! submission, protocol robustness against malformed frames, client
//! disconnects mid-job, and shutdown draining with connected clients.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cgp_core::{PermutationService, PermuteOptions, Priority, ServiceConfig};
use cgp_server::{Client, ClientError, ErrorCode, WireServer, CONNECTION_REQUEST_ID};

/// A socket path no concurrent test (or test run) collides with.
fn fresh_socket_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cgp-wire-{}-{n}.sock", std::process::id()))
}

fn test_config(seed: u64) -> ServiceConfig {
    ServiceConfig::new(2).machines(2).queue_depth(16).seed(seed)
}

#[test]
fn wire_results_are_byte_identical_to_in_process_submission() {
    let config = test_config(41);
    let options = PermuteOptions::default();
    let data: Vec<u64> = (0..3000).collect();

    let service = PermutationService::try_new(config, options.clone()).unwrap();
    let (reference, _) = service
        .handle()
        .submit(data.clone())
        .unwrap()
        .wait()
        .unwrap();
    service.shutdown();
    assert_ne!(reference, data, "seed 41 must actually permute");

    // Over a Unix domain socket, on every lane.
    let path = fresh_socket_path();
    let server: WireServer<u64> = WireServer::bind_uds(&path, config, options.clone()).unwrap();
    let mut client: Client<u64> = Client::connect_uds(&path).unwrap();
    assert_eq!(client.hello().seed, 41);
    assert_eq!(client.hello().machines, 2);
    assert_eq!(client.permute(&data).unwrap(), reference);
    let high = client.submit_with(&data, Priority::High).unwrap();
    let roomy = client
        .submit_with(&data, Priority::Deadline(Duration::from_secs(120)))
        .unwrap();
    assert_eq!(client.wait(high).unwrap(), reference);
    assert_eq!(client.wait(roomy).unwrap(), reference);
    let metrics = server.shutdown();
    assert_eq!(metrics.jobs_served, 3);
    assert_eq!(metrics.deadline_shed, 0);
    assert!(!path.exists(), "shutdown unlinks the socket file");

    // Over TCP, with pipelined submits collected out of order.
    let server: WireServer<u64> = WireServer::bind_tcp("127.0.0.1:0", config, options).unwrap();
    let mut client: Client<u64> = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let ids: Vec<u64> = (0..4).map(|_| client.submit(&data).unwrap()).collect();
    for id in ids.into_iter().rev() {
        assert_eq!(client.wait(id).unwrap(), reference);
    }
    assert_eq!(server.shutdown().jobs_served, 4);
}

#[test]
fn connecting_with_the_wrong_payload_type_is_a_protocol_error() {
    let path = fresh_socket_path();
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, test_config(1), PermuteOptions::default()).unwrap();
    match Client::<u32>::connect_uds(&path) {
        Err(ClientError::Protocol(message)) => {
            assert!(
                message.contains("u64"),
                "mentions the server type: {message}"
            )
        }
        other => panic!("expected a payload-type mismatch, got {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Raw-socket protocol robustness
// ---------------------------------------------------------------------------

fn write_raw(stream: &mut UnixStream, body: &[u8]) {
    stream
        .write_all(&(body.len() as u64).to_le_bytes())
        .unwrap();
    stream.write_all(body).unwrap();
}

fn read_raw(stream: &mut UnixStream) -> Vec<u8> {
    let mut len = [0u8; 8];
    stream.read_exact(&mut len).unwrap();
    let mut body = vec![0u8; u64::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).unwrap();
    body
}

/// Asserts `body` is an error frame and returns `(request_id, code)`.
fn parse_error_frame(body: &[u8]) -> (u64, u8) {
    assert_eq!(body[0], 3, "kind must be ERROR, frame was {body:?}");
    let request_id = u64::from_le_bytes(body[1..9].try_into().unwrap());
    (request_id, body[9])
}

#[test]
fn malformed_frames_get_error_frames_and_the_connection_survives() {
    let path = fresh_socket_path();
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, test_config(9), PermuteOptions::default()).unwrap();
    let mut stream = UnixStream::connect(&path).unwrap();
    assert_eq!(read_raw(&mut stream)[0], 0, "hello comes first");

    // An empty body, an unknown kind, and a submit truncated before its
    // request id: all connection-level bad-frame errors.
    for garbage in [&[][..], &[99][..], &[1, 7, 7][..]] {
        write_raw(&mut stream, garbage);
        let (request_id, code) = parse_error_frame(&read_raw(&mut stream));
        assert_eq!(request_id, CONNECTION_REQUEST_ID);
        assert_eq!(code, 6, "bad-frame code");
    }

    // A submit with a parseable request id but an unknown priority lane:
    // the error is addressed to that request.
    let mut submit = vec![1u8];
    submit.extend_from_slice(&77u64.to_le_bytes());
    submit.push(9); // no such lane
    submit.extend_from_slice(&0u64.to_le_bytes());
    write_raw(&mut stream, &submit);
    let (request_id, code) = parse_error_frame(&read_raw(&mut stream));
    assert_eq!((request_id, code), (77, 6));

    // A submit whose payload is not a whole number of u64s.
    let mut submit = vec![1u8];
    submit.extend_from_slice(&78u64.to_le_bytes());
    submit.push(0);
    submit.extend_from_slice(&0u64.to_le_bytes());
    submit.extend_from_slice(&[1, 2, 3]);
    write_raw(&mut stream, &submit);
    let (request_id, code) = parse_error_frame(&read_raw(&mut stream));
    assert_eq!((request_id, code), (78, 6));

    // The same connection still serves a well-formed submit.
    let data: Vec<u64> = (0..64).collect();
    let mut submit = vec![1u8];
    submit.extend_from_slice(&79u64.to_le_bytes());
    submit.push(0);
    submit.extend_from_slice(&0u64.to_le_bytes());
    for item in &data {
        submit.extend_from_slice(&item.to_le_bytes());
    }
    write_raw(&mut stream, &submit);
    let body = read_raw(&mut stream);
    assert_eq!(body[0], 2, "kind must be RESULT");
    assert_eq!(u64::from_le_bytes(body[1..9].try_into().unwrap()), 79);
    let mut out: Vec<u64> = body[9..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(out.len(), data.len());
    out.sort_unstable();
    assert_eq!(out, data, "the result is a permutation of the submission");

    drop(stream);
    assert_eq!(server.shutdown().jobs_served, 1);
}

#[test]
fn an_oversized_length_prefix_is_refused_without_an_allocation() {
    let path = fresh_socket_path();
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, test_config(9), PermuteOptions::default()).unwrap();
    let mut stream = UnixStream::connect(&path).unwrap();
    assert_eq!(read_raw(&mut stream)[0], 0);

    // Claim a frame body bigger than the 1 GiB cap.  The server answers
    // with a bad-frame error and hangs up (the stream cannot be
    // resynchronized without reading the claimed body).
    stream.write_all(&u64::MAX.to_le_bytes()).unwrap();
    let (request_id, code) = parse_error_frame(&read_raw(&mut stream));
    assert_eq!((request_id, code), (CONNECTION_REQUEST_ID, 6));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "the server closed the connection");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Disconnects and shutdown draining
// ---------------------------------------------------------------------------

#[test]
fn client_disconnect_mid_job_is_cleaned_up_without_wedging_the_server() {
    let path = fresh_socket_path();
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, test_config(3), PermuteOptions::default()).unwrap();
    let mut client: Client<u64> = Client::connect_uds(&path).unwrap();
    let data: Vec<u64> = (0..200_000).collect();
    client.submit(&data).unwrap();
    // The metrics round-trip proves the reader thread has consumed the
    // submit frame (frames on one connection are processed in order), so
    // the job is admitted before we vanish.
    client.metrics().unwrap();
    drop(client); // hang up with the job in flight

    // The drain must complete: the orphaned job runs, its result-frame
    // write fails harmlessly, and a fresh connection still works.
    let mut survivor: Client<u64> = Client::connect_uds(&path).unwrap();
    let small: Vec<u64> = (0..500).collect();
    assert_eq!(survivor.permute(&small).unwrap().len(), 500);
    let metrics = server.shutdown();
    assert_eq!(metrics.jobs_served, 2, "the orphaned job still ran");
    assert_eq!(metrics.jobs_failed, 0);
}

#[test]
fn shutdown_with_connected_clients_drains_results_then_closes_sockets() {
    let path = fresh_socket_path();
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, test_config(17), PermuteOptions::default()).unwrap();
    let trigger: Client<u64> = Client::connect_uds(&path).unwrap();
    let mut bystander: Client<u64> = Client::connect_uds(&path).unwrap();

    let data: Vec<u64> = (0..4000).collect();
    let reference = bystander.permute(&data).unwrap();
    let ids: Vec<u64> = (0..3).map(|_| bystander.submit(&data).unwrap()).collect();
    // Synchronize: once metrics answers, every earlier frame on this
    // connection has been admitted, so the shutdown below must drain them.
    let before = bystander.metrics().unwrap();
    assert_eq!(before.tenant_served, 1);

    // A wire-initiated shutdown from one connection...
    trigger.shutdown().unwrap();

    // ...still delivers the other connection's in-flight results...
    for id in ids {
        assert_eq!(bystander.wait(id).unwrap(), reference);
    }
    // ...and then the socket is closed (EOF, reported as a protocol error
    // on the next wait) rather than left dangling.
    match bystander.wait(12345) {
        Err(ClientError::Protocol(message)) => assert!(message.contains("closed")),
        other => panic!("expected EOF after the drain, got {other:?}"),
    }

    // The server-side handle agrees on the final tally and is idempotent.
    let metrics = server.shutdown();
    assert_eq!(metrics.jobs_served, 4);

    // New connections are refused politely.
    match Client::<u64>::connect_uds(&path) {
        Ok(_) => panic!("expected the socket to be gone or refused"),
        Err(ClientError::Io(_)) | Err(ClientError::Remote { .. }) => {}
        Err(e) => panic!("unexpected failure mode: {e:?}"),
    }
}

#[test]
fn wire_metrics_report_per_connection_tenants_and_backpressure_is_an_error_frame() {
    let path = fresh_socket_path();
    // One machine, a one-slot queue, and a tenant quota of one: easy to
    // overfill from the outside.
    let config = ServiceConfig::new(2)
        .machines(1)
        .queue_depth(1)
        .tenant_quota(1)
        .seed(23);
    let server: WireServer<u64> =
        WireServer::bind_uds(&path, config, PermuteOptions::default()).unwrap();
    let mut a: Client<u64> = Client::connect_uds(&path).unwrap();
    let mut b: Client<u64> = Client::connect_uds(&path).unwrap();

    let data: Vec<u64> = (0..1000).collect();
    a.permute(&data).unwrap();
    a.permute(&data).unwrap();
    b.permute(&data).unwrap();
    let m = a.metrics().unwrap();
    assert_eq!(m.tenant_served, 2, "connection A's tenant served two jobs");
    assert_eq!(m.jobs_served, 3, "the fleet served three");
    assert_eq!(m.tenant_failed, 0);

    // Flood connection B past the one-deep queue without waiting: the
    // wire answer to backpressure is a queue-full error frame per
    // rejected submit, not a parked server thread.
    let big: Vec<u64> = (0..400_000).collect();
    let ids: Vec<u64> = (0..6).map(|_| b.submit(&big).unwrap()).collect();
    let mut rejected = 0;
    let mut accepted = 0;
    for id in ids {
        match b.wait(id) {
            Ok(out) => {
                assert_eq!(out.len(), big.len());
                accepted += 1;
            }
            Err(ClientError::Remote {
                code: ErrorCode::QueueFull,
                ..
            }) => rejected += 1,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert_eq!(accepted + rejected, 6);
    assert!(accepted >= 1, "some of the flood is served");
    assert!(
        rejected >= 1,
        "a one-deep queue cannot absorb six instant submits"
    );
    server.shutdown();
}
