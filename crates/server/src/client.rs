//! A small blocking client for the wire protocol: submit jobs, collect
//! results (in any order), poll metrics, and trigger a server drain.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use cgp_cgm::transport::wire::{wire_fns, WireFns};
use cgp_core::Priority;

use crate::protocol::*;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket itself failed (connect, read, or write).
    Io(std::io::Error),
    /// The server answered with an error frame.
    Remote {
        /// The wire error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
    /// The byte stream violated the protocol (bad hello, truncated frame,
    /// unexpected kind, payload type mismatch, or early EOF).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "wire client I/O error: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::Protocol(message) => write!(f, "wire protocol violation: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What the server announced in its hello frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The server's protocol version (the client requires an exact match).
    pub protocol_version: u32,
    /// Virtual processors per CGM round on the fleet.
    pub procs: usize,
    /// Dispatcher machines in the fleet.
    pub machines: usize,
    /// The fleet seed — two clients of the same server (or an in-process
    /// run with this seed) see byte-identical permutations.
    pub seed: u64,
    /// `std::any::type_name` of the server's payload type.
    pub payload_type: String,
}

/// The fleet-wide and per-connection counters behind a metrics frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Jobs served fleet-wide.
    pub jobs_served: u64,
    /// Jobs failed fleet-wide.
    pub jobs_failed: u64,
    /// Deadline jobs shed fleet-wide.
    pub deadline_shed: u64,
    /// Jobs stolen between machines.
    pub steals: u64,
    /// Jobs that ran inside a coalesced batch.
    pub coalesced_jobs: u64,
    /// Fleet uptime in microseconds.
    pub uptime_micros: u64,
    /// Jobs served for **this connection's** tenant.
    pub tenant_served: u64,
    /// Jobs failed for this connection's tenant.
    pub tenant_failed: u64,
    /// Deadline jobs shed for this connection's tenant.
    pub tenant_shed: u64,
}

/// A frame the server pushed at us, already parsed.
enum Incoming<T> {
    Result {
        request_id: u64,
        data: Vec<T>,
    },
    Error {
        request_id: u64,
        code: ErrorCode,
        message: String,
    },
    Metrics(WireMetrics),
}

/// A blocking connection to a [`WireServer`](crate::WireServer).
///
/// Submissions are pipelined: [`Client::submit`] returns a request id
/// without waiting, and [`Client::wait`] collects results **in any
/// order** — frames for other requests that arrive first are buffered, so
/// many jobs can be in flight on one connection.  The server resolves
/// them in completion order; the buffering re-marries frames to waits.
///
/// The payload type `T` must have the same
/// [`Wire`](cgp_cgm::transport::wire::Wire) codec registered as on the
/// server; the hello handshake cross-checks the type name.
pub struct Client<T: Send + 'static> {
    stream: Stream,
    fns: WireFns<T>,
    hello: ServerHello,
    next_request: u64,
    /// Results (or per-request errors) that arrived while waiting on a
    /// different request id.
    pending: HashMap<u64, Result<Vec<T>, (ErrorCode, String)>>,
}

impl<T: Send + 'static> Client<T> {
    /// Connects over a Unix domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Client::handshake(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Client::handshake(Stream::Tcp(stream))
    }

    fn handshake(mut stream: Stream) -> Result<Self, ClientError> {
        let fns = wire_fns::<T>().ok_or_else(|| {
            ClientError::Protocol(format!(
                "payload type {} has no Wire codec; call register_wire first",
                std::any::type_name::<T>()
            ))
        })?;
        let body = read_frame(&mut stream)?
            .ok_or_else(|| ClientError::Protocol("server closed before hello".into()))?;
        let mut frame = FrameReader::new(&body);
        match frame.u8() {
            Some(KIND_HELLO) => {}
            Some(KIND_ERROR) => {
                // A shutting-down server greets with a connection error.
                let (_, code, message) = parse_error(frame)?;
                return Err(ClientError::Remote { code, message });
            }
            _ => return Err(ClientError::Protocol("first frame was not a hello".into())),
        }
        let hello = (|| {
            Some(ServerHello {
                protocol_version: frame.u32()?,
                procs: frame.u32()? as usize,
                machines: frame.u32()? as usize,
                seed: frame.u64()?,
                payload_type: frame.string()?,
            })
        })()
        .ok_or_else(|| ClientError::Protocol("hello frame truncated".into()))?;
        if hello.protocol_version != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks protocol v{}, this client v{PROTOCOL_VERSION}",
                hello.protocol_version
            )));
        }
        let ours = std::any::type_name::<T>();
        if hello.payload_type != ours {
            return Err(ClientError::Protocol(format!(
                "server permutes {}, this client submits {ours}",
                hello.payload_type
            )));
        }
        Ok(Client {
            stream,
            fns,
            hello,
            next_request: 0,
            pending: HashMap::new(),
        })
    }

    /// What the server announced at connect time.
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Submits a job on the Normal lane; returns its request id without
    /// waiting for the result.
    pub fn submit(&mut self, data: &[T]) -> Result<u64, ClientError> {
        self.submit_with(data, Priority::Normal)
    }

    /// Submits a job on an explicit admission lane ([`Priority::Deadline`]
    /// budgets travel as microseconds).
    pub fn submit_with(&mut self, data: &[T], priority: Priority) -> Result<u64, ClientError> {
        let request_id = self.next_request;
        self.next_request += 1;
        let (lane, deadline_micros) = encode_priority(priority);
        let mut body = Vec::with_capacity(18 + data.len() * 8);
        body.push(KIND_SUBMIT);
        body.extend_from_slice(&request_id.to_le_bytes());
        body.push(lane);
        body.extend_from_slice(&deadline_micros.to_le_bytes());
        (self.fns.encode)(data, &mut body);
        write_frame(&mut self.stream, &body)?;
        Ok(request_id)
    }

    /// Blocks until the result for `request_id` arrives (frames for other
    /// requests are buffered for their own waits).  A server-side failure
    /// comes back as [`ClientError::Remote`].
    pub fn wait(&mut self, request_id: u64) -> Result<Vec<T>, ClientError> {
        loop {
            if let Some(done) = self.pending.remove(&request_id) {
                return done.map_err(|(code, message)| ClientError::Remote { code, message });
            }
            match self.read_incoming()? {
                Incoming::Result {
                    request_id: id,
                    data,
                } => {
                    self.pending.insert(id, Ok(data));
                }
                Incoming::Error {
                    request_id: id,
                    code,
                    message,
                } => {
                    if id == CONNECTION_REQUEST_ID {
                        return Err(ClientError::Remote { code, message });
                    }
                    self.pending.insert(id, Err((code, message)));
                }
                Incoming::Metrics(_) => {
                    return Err(ClientError::Protocol(
                        "metrics frame with no metrics request outstanding".into(),
                    ))
                }
            }
        }
    }

    /// Submit-and-wait in one call.
    pub fn permute(&mut self, data: &[T]) -> Result<Vec<T>, ClientError> {
        let id = self.submit(data)?;
        self.wait(id)
    }

    /// Fetches a live metrics snapshot (fleet-wide counters plus this
    /// connection's tenant).  Results arriving in the meantime are
    /// buffered for their own [`Client::wait`] calls.
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        write_frame(&mut self.stream, &[KIND_METRICS_REQUEST])?;
        loop {
            match self.read_incoming()? {
                Incoming::Metrics(m) => return Ok(m),
                Incoming::Result { request_id, data } => {
                    self.pending.insert(request_id, Ok(data));
                }
                Incoming::Error {
                    request_id,
                    code,
                    message,
                } => {
                    if request_id == CONNECTION_REQUEST_ID {
                        return Err(ClientError::Remote { code, message });
                    }
                    self.pending.insert(request_id, Err((code, message)));
                }
            }
        }
    }

    /// Asks the server to drain and stop, then reads until it hangs up.
    /// Results for this connection's in-flight jobs are flushed by the
    /// drain; any still unclaimed here are discarded.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &[KIND_SHUTDOWN])?;
        loop {
            match read_frame(&mut self.stream) {
                Ok(Some(_)) => continue,
                Ok(None) => return Ok(()),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn read_incoming(&mut self) -> Result<Incoming<T>, ClientError> {
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection mid-wait".into()))?;
        let mut frame = FrameReader::new(&body);
        match frame.u8() {
            Some(KIND_RESULT) => {
                let request_id = frame
                    .u64()
                    .ok_or_else(|| ClientError::Protocol("result frame truncated".into()))?;
                let data = (self.fns.decode)(frame.tail())
                    .map_err(|e| ClientError::Protocol(e.message))?;
                Ok(Incoming::Result { request_id, data })
            }
            Some(KIND_ERROR) => {
                let (request_id, code, message) = parse_error(frame)?;
                Ok(Incoming::Error {
                    request_id,
                    code,
                    message,
                })
            }
            Some(KIND_METRICS) => {
                let mut fields = [0u64; 9];
                for field in fields.iter_mut() {
                    *field = frame
                        .u64()
                        .ok_or_else(|| ClientError::Protocol("metrics frame truncated".into()))?;
                }
                let [jobs_served, jobs_failed, deadline_shed, steals, coalesced_jobs, uptime_micros, tenant_served, tenant_failed, tenant_shed] =
                    fields;
                Ok(Incoming::Metrics(WireMetrics {
                    jobs_served,
                    jobs_failed,
                    deadline_shed,
                    steals,
                    coalesced_jobs,
                    uptime_micros,
                    tenant_served,
                    tenant_failed,
                    tenant_shed,
                }))
            }
            kind => Err(ClientError::Protocol(format!(
                "unexpected frame kind {kind:?} from the server"
            ))),
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for Client<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("hello", &self.hello)
            .field("next_request", &self.next_request)
            .field("buffered", &self.pending.len())
            .finish()
    }
}

/// Parses the remainder of an error frame: request id, code, then the
/// message as the raw UTF-8 tail.
fn parse_error(mut frame: FrameReader<'_>) -> Result<(u64, ErrorCode, String), ClientError> {
    let truncated = || ClientError::Protocol("error frame truncated".into());
    let request_id = frame.u64().ok_or_else(truncated)?;
    let code_byte = frame.u8().ok_or_else(truncated)?;
    let code = ErrorCode::from_byte(code_byte)
        .ok_or_else(|| ClientError::Protocol(format!("unknown error code {code_byte}")))?;
    let message = String::from_utf8_lossy(frame.tail()).into_owned();
    Ok((request_id, code, message))
}
