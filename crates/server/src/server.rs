//! The server side: one acceptor thread, and per connection one reader
//! thread plus one writer thread.  Results are streamed back through
//! `JobTicket::on_complete`, which only **enqueues** the frame — socket
//! I/O happens on the connection's writer thread, so a slow (or vanished)
//! client can never wedge a dispatcher or stall another tenant.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use cgp_cgm::transport::wire::{wire_fns, WireFns};
use cgp_cgm::CgmError;
use cgp_core::{
    PermutationService, PermuteOptions, ServiceConfig, ServiceError, ServiceHandle, ServiceMetrics,
};

use crate::protocol::*;

/// Why a [`WireServer`] could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listener (or cloning a socket) failed.
    Io(std::io::Error),
    /// The permutation fleet behind the server could not be built.
    Service(CgmError),
    /// The payload type has no [`Wire`](cgp_cgm::transport::wire::Wire)
    /// codec registered — register one with
    /// [`register_wire`](cgp_cgm::transport::wire::register_wire) before
    /// binding (primitives are pre-registered).
    UnregisteredPayload(&'static str),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "wire server I/O error: {e}"),
            ServerError::Service(e) => write!(f, "the permutation fleet could not start: {e}"),
            ServerError::UnregisteredPayload(ty) => write!(
                f,
                "payload type {ty} has no Wire codec; call register_wire::<{ty}>() first"
            ),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Service(e) => Some(e),
            ServerError::UnregisteredPayload(_) => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Where the acceptor listens, and how a shutdown wakes it.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }
}

/// The self-connect target a shutdown uses to unblock `accept()`.
enum WakeTarget {
    Uds(PathBuf),
    Tcp(SocketAddr),
}

/// What a connection's writer thread is fed.  The queue is the only path
/// to the socket's write half: the reader enqueues error/metrics frames,
/// completion callbacks enqueue result frames, and `Close` — sent by
/// shutdown after the fleet drains — flushes everything queued before it
/// (the channel is FIFO) and then closes the socket, so the peer sees its
/// final results and *then* EOF.
enum WriterMsg {
    Frame(Vec<u8>),
    Close,
}

struct ServerInner<T: Send + 'static> {
    /// `Some` until the first shutdown takes it (frame- or API-initiated —
    /// whichever comes first drains the fleet exactly once).
    service: Mutex<Option<PermutationService<T>>>,
    /// Final metrics from that drain, for late [`WireServer::shutdown`]
    /// callers.
    final_metrics: Mutex<Option<ServiceMetrics>>,
    /// Per-job options for wire submissions (the service-wide defaults).
    options: PermuteOptions,
    fns: WireFns<T>,
    hello: Vec<u8>,
    shutting_down: AtomicBool,
    /// One writer-queue handle per connection, kept so shutdown can flush
    /// and close them all.
    conns: Mutex<Vec<mpsc::Sender<WriterMsg>>>,
    wake: WakeTarget,
    next_conn: AtomicU64,
}

impl<T: Send + 'static> ServerInner<T> {
    /// Drains and tears the whole server down; idempotent.  Every job
    /// accepted before this call still resolves — its result frame is
    /// queued by the completion callback during the drain, and only behind
    /// those frames does each connection's `Close` land — so clients read
    /// their final results, then EOF.
    fn shutdown_service(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let service = self
            .service
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(service) = service {
            let metrics = service.shutdown();
            *self.final_metrics.lock().unwrap_or_else(|e| e.into_inner()) = Some(metrics);
        }
        let conns: Vec<mpsc::Sender<WriterMsg>> = self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for conn in conns {
            let _ = conn.send(WriterMsg::Close);
        }
        // Unblock the acceptor with a throwaway self-connection; it
        // observes `shutting_down` and exits.
        match &self.wake {
            WakeTarget::Uds(path) => drop(std::os::unix::net::UnixStream::connect(path)),
            WakeTarget::Tcp(addr) => drop(std::net::TcpStream::connect(addr)),
        }
    }
}

/// A socket front-end over one [`PermutationService`] fleet: non-Rust (or
/// out-of-process Rust) clients submit permutation jobs over UDS or TCP
/// with the frame protocol in [`crate::protocol`], and results stream back
/// **in completion order** the moment each ticket resolves — the server
/// never blocks a thread per in-flight job, it arms
/// [`cgp_core::JobTicket::on_complete`] and lets the completing dispatcher
/// hand the frame to the connection's writer queue.
///
/// Every connection is its own tenant (fresh [`ServiceHandle`]), so the
/// scheduler's fair-share admission, quotas, and per-tenant metrics apply
/// per connection.  Submissions use the non-blocking admission path:
/// backpressure comes back as a `queue-full` error frame instead of a
/// parked server thread, making flow control explicit on the wire.  (The
/// per-connection result queue is unbounded in frames but bounded in
/// practice by the same admission quotas — a tenant can only have as many
/// undelivered results as it had admitted jobs.)
///
/// Determinism carries over the socket: a wire-submitted job returns the
/// byte-identical permutation of the same in-process `submit` (same fleet
/// seed), because the payload codec and the scheduler are both
/// deterministic — the transport is just bytes.
pub struct WireServer<T: Send + 'static> {
    inner: Arc<ServerInner<T>>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    /// Unlinked on drop for UDS servers.
    socket_path: Option<PathBuf>,
}

impl<T: Send + 'static> WireServer<T> {
    /// Binds a Unix-domain-socket server at `path` (the file must not
    /// exist) and starts the fleet behind it.
    pub fn bind_uds(
        path: impl AsRef<Path>,
        config: ServiceConfig,
        options: PermuteOptions,
    ) -> Result<Self, ServerError> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        WireServer::start(
            Listener::Unix(listener),
            WakeTarget::Uds(path.clone()),
            None,
            Some(path),
            config,
            options,
        )
    }

    /// Binds a TCP server (e.g. `"127.0.0.1:0"` for an ephemeral port —
    /// read it back with [`WireServer::local_addr`]) and starts the fleet
    /// behind it.
    pub fn bind_tcp(
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        options: PermuteOptions,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        WireServer::start(
            Listener::Tcp(listener),
            WakeTarget::Tcp(local),
            Some(local),
            None,
            config,
            options,
        )
    }

    fn start(
        listener: Listener,
        wake: WakeTarget,
        local_addr: Option<SocketAddr>,
        socket_path: Option<PathBuf>,
        config: ServiceConfig,
        options: PermuteOptions,
    ) -> Result<Self, ServerError> {
        let fns = wire_fns::<T>()
            .ok_or_else(|| ServerError::UnregisteredPayload(std::any::type_name::<T>()))?;
        let service =
            PermutationService::try_new(config, options.clone()).map_err(ServerError::Service)?;
        let mut hello = Vec::new();
        hello.push(KIND_HELLO);
        hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        hello.extend_from_slice(&(service.procs() as u32).to_le_bytes());
        hello.extend_from_slice(&(service.machines() as u32).to_le_bytes());
        hello.extend_from_slice(&config.engine.seed.to_le_bytes());
        let ty = std::any::type_name::<T>();
        hello.extend_from_slice(&(ty.len() as u64).to_le_bytes());
        hello.extend_from_slice(ty.as_bytes());

        let inner = Arc::new(ServerInner {
            service: Mutex::new(Some(service)),
            final_metrics: Mutex::new(None),
            options,
            fns,
            hello,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            wake,
            next_conn: AtomicU64::new(0),
        });
        let acceptor_inner = Arc::clone(&inner);
        let acceptor = std::thread::Builder::new()
            .name("cgp-wire-accept".into())
            .spawn(move || acceptor_loop(listener, acceptor_inner))
            .map_err(|e| ServerError::Io(std::io::Error::other(e.to_string())))?;
        Ok(WireServer {
            inner,
            acceptor: Some(acceptor),
            local_addr,
            socket_path,
        })
    }

    /// The bound TCP address (`None` for UDS servers) — how a test run on
    /// `127.0.0.1:0` learns its ephemeral port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A live snapshot of the fleet's metrics (`None` once shut down).
    pub fn metrics(&self) -> Option<ServiceMetrics> {
        self.inner
            .service
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|s| s.metrics())
    }

    /// Stops accepting, **drains every already-accepted job** (clients
    /// receive their final result frames), closes all connections, and
    /// returns the fleet's final metrics.  Safe to call after a client
    /// already triggered shutdown over the wire — the drain happens once.
    pub fn shutdown(mut self) -> ServiceMetrics {
        self.inner.shutdown_service();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
        self.inner
            .final_metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .expect("shutdown_service stored the final metrics")
    }
}

impl<T: Send + 'static> Drop for WireServer<T> {
    fn drop(&mut self) {
        self.inner.shutdown_service();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn acceptor_loop<T: Send + 'static>(listener: Listener, inner: Arc<ServerInner<T>>) {
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            // The shutdown wake-up (or a client racing it): just hang up.
            return;
        }
        let conn_id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn_inner = Arc::clone(&inner);
        // Serve on named threads; a spawn failure drops the connection
        // (the client sees EOF) without taking the acceptor down.
        let _ = std::thread::Builder::new()
            .name(format!("cgp-wire-read-{conn_id}"))
            .spawn(move || serve_connection(stream, conn_id, conn_inner));
    }
}

/// Runs a connection's writer half: the sole owner of socket writes.
/// Exits on `Close` (flushing everything queued before it, then shutting
/// the socket down so the peer and the reader thread see EOF) or once
/// every sender is gone (reader exited and all in-flight jobs resolved).
/// Write errors are swallowed — a vanished peer just means its remaining
/// frames have nowhere to go.
fn writer_loop(mut stream: Stream, rx: mpsc::Receiver<WriterMsg>) {
    for msg in rx.iter() {
        match msg {
            WriterMsg::Frame(body) => {
                let _ = write_frame(&mut stream, &body);
            }
            WriterMsg::Close => break,
        }
    }
    let _ = stream.shutdown();
}

/// One connection's reader half: handshake, then a frame-dispatch loop
/// until the client hangs up or the server shuts down.
fn serve_connection<T: Send + 'static>(
    mut stream: Stream,
    conn_id: u64,
    inner: Arc<ServerInner<T>>,
) {
    // Mint this connection's tenant.  A server already shutting down
    // greets with a connection-level error instead of a hello.
    let handle: Option<ServiceHandle<T>> = inner
        .service
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|s| s.handle());
    let Some(handle) = handle else {
        let _ = write_frame(
            &mut stream,
            &error_body(
                CONNECTION_REQUEST_ID,
                ErrorCode::ShutDown,
                "the server is shut down",
            ),
        );
        let _ = stream.shutdown();
        return;
    };

    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    if std::thread::Builder::new()
        .name(format!("cgp-wire-write-{conn_id}"))
        .spawn(move || writer_loop(write_half, rx))
        .is_err()
    {
        return;
    }
    inner
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(tx.clone());
    let _ = tx.send(WriterMsg::Frame(inner.hello.clone()));

    let send_error = |request_id: u64, code: ErrorCode, message: &str| {
        let _ = tx.send(WriterMsg::Frame(error_body(request_id, code, message)));
    };

    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean EOF: the client hung up.  In-flight tickets still
            // resolve; their frames land in the writer queue, whose writes
            // fail harmlessly against the closed socket (Rust ignores
            // SIGPIPE, so a dead peer is an error value, not a signal).
            Ok(None) => return,
            Err(e) => {
                // An oversized length prefix (or a mid-frame I/O failure)
                // cannot be resynchronized: report and hang up.
                send_error(CONNECTION_REQUEST_ID, ErrorCode::BadFrame, &e.to_string());
                let _ = tx.send(WriterMsg::Close);
                return;
            }
        };
        let mut frame = FrameReader::new(&body);
        match frame.u8() {
            Some(KIND_SUBMIT) => {
                let Some(request_id) = frame.u64() else {
                    send_error(
                        CONNECTION_REQUEST_ID,
                        ErrorCode::BadFrame,
                        "submit frame truncated before request id",
                    );
                    continue;
                };
                let (Some(lane), Some(deadline_micros)) = (frame.u8(), frame.u64()) else {
                    send_error(request_id, ErrorCode::BadFrame, "submit header truncated");
                    continue;
                };
                let Some(priority) = decode_priority(lane, deadline_micros) else {
                    send_error(
                        request_id,
                        ErrorCode::BadFrame,
                        &format!("unknown priority lane {lane}"),
                    );
                    continue;
                };
                let data = match (inner.fns.decode)(frame.tail()) {
                    Ok(data) => data,
                    Err(e) => {
                        send_error(request_id, ErrorCode::BadFrame, &e.message);
                        continue;
                    }
                };
                // Non-blocking admission: wire backpressure is an error
                // frame the client can retry on, never a parked reader
                // (which would stop this connection's other traffic).
                match handle.try_submit_with(data, inner.options.clone(), priority) {
                    Ok(ticket) => {
                        let tx = tx.clone();
                        let encode = inner.fns.encode;
                        ticket.on_complete(move |outcome| {
                            let body = match outcome {
                                Ok((data, _report)) => {
                                    let mut body = Vec::with_capacity(9 + data.len() * 8);
                                    body.push(KIND_RESULT);
                                    body.extend_from_slice(&request_id.to_le_bytes());
                                    (encode)(&data, &mut body);
                                    body
                                }
                                Err(e) => error_body(
                                    request_id,
                                    ErrorCode::of_service_error(&e),
                                    &e.to_string(),
                                ),
                            };
                            // Enqueue only: the dispatcher thread running
                            // this callback must never block on a socket.
                            let _ = tx.send(WriterMsg::Frame(body));
                        });
                    }
                    Err(rejected) => {
                        send_error(
                            request_id,
                            ErrorCode::of_service_error(&rejected.error),
                            &rejected.error.to_string(),
                        );
                    }
                }
            }
            Some(KIND_METRICS_REQUEST) => {
                let snapshot = inner
                    .service
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .map(|s| s.metrics());
                match snapshot {
                    Some(m) => {
                        let tenant = m.per_tenant.iter().find(|t| t.tenant == handle.tenant());
                        let mut body = Vec::with_capacity(1 + 9 * 8);
                        body.push(KIND_METRICS);
                        for field in [
                            m.jobs_served,
                            m.jobs_failed,
                            m.deadline_shed,
                            m.steals,
                            m.coalesced_jobs,
                            m.uptime.as_micros() as u64,
                            tenant.map_or(0, |t| t.jobs_served),
                            tenant.map_or(0, |t| t.jobs_failed),
                            tenant.map_or(0, |t| t.deadline_shed),
                        ] {
                            body.extend_from_slice(&field.to_le_bytes());
                        }
                        let _ = tx.send(WriterMsg::Frame(body));
                    }
                    None => {
                        send_error(
                            CONNECTION_REQUEST_ID,
                            ErrorCode::ShutDown,
                            &ServiceError::ShutDown.to_string(),
                        );
                    }
                }
            }
            Some(KIND_SHUTDOWN) => {
                // Drains accepted jobs (result frames flush through each
                // connection's writer queue ahead of its Close), then
                // closes every connection — including this one, whose next
                // read sees EOF.
                inner.shutdown_service();
                return;
            }
            kind => {
                send_error(
                    CONNECTION_REQUEST_ID,
                    ErrorCode::BadFrame,
                    &match kind {
                        Some(k) => format!("unknown frame kind {k}"),
                        None => "empty frame".to_string(),
                    },
                );
            }
        }
    }
}
