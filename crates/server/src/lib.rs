//! # cgp-server — the wire front-end for the permutation fleet
//!
//! A [`PermutationService`](cgp_core::PermutationService) is an in-process
//! fleet: callers hold a [`ServiceHandle`](cgp_core::ServiceHandle) and
//! submit `Vec<T>` jobs directly.  This crate puts a **socket** in front
//! of it, so non-Rust tooling, sibling processes, and remote hosts can
//! drive the same fleet:
//!
//! - [`WireServer`] binds a Unix domain socket ([`WireServer::bind_uds`])
//!   or TCP listener ([`WireServer::bind_tcp`]) and maps each connection
//!   to its own tenant — fair-share admission, quotas, and per-tenant
//!   metrics all apply per connection.
//! - [`Client`] is a small blocking client speaking the same frames, with
//!   pipelined submits ([`Client::submit`] / [`Client::wait`]) and a
//!   one-call [`Client::permute`].
//! - [`protocol`] documents the length-prefixed little-endian frame
//!   layout (hello / submit / result / error / metrics / shutdown); the
//!   normative spec lives in `docs/wire-protocol.md`.
//!
//! Payload bytes ride the [`Wire`](cgp_cgm::transport::wire::Wire) codec
//! registry from `cgp_cgm::transport` — the exact codecs the process
//! transport uses — so any registered type crosses the socket unchanged,
//! and a wire-submitted job returns the **byte-identical** permutation of
//! an in-process `submit` with the same fleet seed.
//!
//! Results stream back in completion order, pushed by the fleet's
//! completion core ([`cgp_core::JobTicket::on_complete`]): the server
//! parks no threads per in-flight job and never polls.
//!
//! ```no_run
//! use cgp_core::{PermuteOptions, ServiceConfig};
//! use cgp_server::{Client, WireServer};
//!
//! let config = ServiceConfig::new(2).machines(2).seed(7);
//! let server: WireServer<u64> =
//!     WireServer::bind_tcp("127.0.0.1:0", config, PermuteOptions::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//!
//! let mut client: Client<u64> = Client::connect_tcp(addr).unwrap();
//! let shuffled = client.permute(&(0..1000).collect::<Vec<u64>>()).unwrap();
//! assert_eq!(shuffled.len(), 1000);
//! server.shutdown();
//! ```

pub mod protocol;

mod client;
mod server;

pub use client::{Client, ClientError, ServerHello, WireMetrics};
pub use protocol::{ErrorCode, Stream, CONNECTION_REQUEST_ID, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{ServerError, WireServer};
