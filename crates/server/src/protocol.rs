//! The frame protocol shared by [`crate::WireServer`] and
//! [`crate::Client`], plus the [`Stream`] abstraction spanning UDS and TCP.
//!
//! Little-endian throughout, mirroring the process-transport framing in
//! `cgp_cgm::transport`: each frame is `len: u64` (byte length of the
//! body) followed by the body, whose first byte is the kind.  Payload
//! bytes inside submit/result frames are produced and consumed by the
//! [`Wire`](cgp_cgm::transport::wire::Wire) codecs — the same registry the
//! process transport uses, so anything that can cross the fabric's process
//! boundary can cross the front-end socket unchanged.
//!
//! | kind | dir | body layout after the kind byte |
//! |------|-----|----------------------------------|
//! | 0 `HELLO` | s→c | `version: u32, procs: u32, machines: u32, seed: u64`, payload type name (`len: u64` + UTF-8) |
//! | 1 `SUBMIT` | c→s | `request_id: u64, priority: u8, deadline_micros: u64`, payload bytes |
//! | 2 `RESULT` | s→c | `request_id: u64`, payload bytes |
//! | 3 `ERROR` | s→c | `request_id: u64` (`u64::MAX` = connection-level), `code: u8`, UTF-8 message |
//! | 4 `METRICS_REQUEST` | c→s | empty |
//! | 5 `METRICS` | s→c | 9 × `u64` (see [`WireMetrics`](crate::WireMetrics)) |
//! | 6 `SHUTDOWN` | c→s | empty |
//!
//! `priority` is 0 = Normal, 1 = High, 2 = Deadline (`deadline_micros` is
//! the budget; it is ignored — and conventionally zero — for the other
//! lanes).  See `docs/wire-protocol.md` for the normative spec.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use cgp_core::{Priority, ServiceError};

/// Protocol version announced in the hello frame.  A client must treat a
/// version it does not know as a connection error.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's body.  A length prefix beyond this is
/// treated as a malformed frame rather than an allocation request — a
/// corrupt or hostile peer must not be able to OOM the server with eight
/// bytes.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// `request_id` of connection-level error frames (not tied to a submit).
pub const CONNECTION_REQUEST_ID: u64 = u64::MAX;

pub(crate) const KIND_HELLO: u8 = 0;
pub(crate) const KIND_SUBMIT: u8 = 1;
pub(crate) const KIND_RESULT: u8 = 2;
pub(crate) const KIND_ERROR: u8 = 3;
pub(crate) const KIND_METRICS_REQUEST: u8 = 4;
pub(crate) const KIND_METRICS: u8 = 5;
pub(crate) const KIND_SHUTDOWN: u8 = 6;

pub(crate) const PRIORITY_NORMAL: u8 = 0;
pub(crate) const PRIORITY_HIGH: u8 = 1;
pub(crate) const PRIORITY_DEADLINE: u8 = 2;

/// Why the server refused (or failed) a wire request, as carried in an
/// error frame's `code` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission backpressure: the queue (or this connection's tenant
    /// quota) is full.  Wire submissions never park server threads — the
    /// client retries or sheds.
    QueueFull,
    /// The service behind the server is shut down.
    ShutDown,
    /// The submission was malformed at the service level (bad per-job
    /// options) — distinct from [`ErrorCode::BadFrame`], which is a
    /// protocol-level parse failure.
    InvalidJob,
    /// The job ran and failed (contained panic inside a machine).
    JobFailed,
    /// A deadline-lane job was shed unrun because its budget expired.
    DeadlineExceeded,
    /// The frame could not be parsed (unknown kind, truncated body,
    /// undecodable payload).  The connection survives: framing is length-
    /// delimited, so one bad body never desynchronizes the stream.
    BadFrame,
}

impl ErrorCode {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::ShutDown => 2,
            ErrorCode::InvalidJob => 3,
            ErrorCode::JobFailed => 4,
            ErrorCode::DeadlineExceeded => 5,
            ErrorCode::BadFrame => 6,
        }
    }

    pub(crate) fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::ShutDown,
            3 => ErrorCode::InvalidJob,
            4 => ErrorCode::JobFailed,
            5 => ErrorCode::DeadlineExceeded,
            6 => ErrorCode::BadFrame,
            _ => return None,
        })
    }

    pub(crate) fn of_service_error(error: &ServiceError) -> Self {
        match error {
            ServiceError::QueueFull => ErrorCode::QueueFull,
            ServiceError::ShutDown => ErrorCode::ShutDown,
            ServiceError::InvalidJob(_) => ErrorCode::InvalidJob,
            ServiceError::JobFailed(_) => ErrorCode::JobFailed,
            ServiceError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::ShutDown => "shut-down",
            ErrorCode::InvalidJob => "invalid-job",
            ErrorCode::JobFailed => "job-failed",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::BadFrame => "bad-frame",
        };
        f.write_str(name)
    }
}

/// Encodes the submit-lane byte pair for a [`Priority`].
pub(crate) fn encode_priority(priority: Priority) -> (u8, u64) {
    match priority {
        Priority::Normal => (PRIORITY_NORMAL, 0),
        Priority::High => (PRIORITY_HIGH, 0),
        Priority::Deadline(budget) => (PRIORITY_DEADLINE, budget.as_micros() as u64),
    }
}

/// Decodes a submit frame's lane byte pair back into a [`Priority`].
pub(crate) fn decode_priority(lane: u8, deadline_micros: u64) -> Option<Priority> {
    Some(match lane {
        PRIORITY_NORMAL => Priority::Normal,
        PRIORITY_HIGH => Priority::High,
        PRIORITY_DEADLINE => Priority::Deadline(Duration::from_micros(deadline_micros)),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

/// One connection's byte stream: a Unix domain socket or a TCP socket,
/// behind one type so the protocol code is written once.
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain-socket connection.
    Unix(UnixStream),
    /// A TCP connection (`TCP_NODELAY` is set on connect/accept: frames
    /// are small and latency-bound, Nagle buys nothing here).
    Tcp(TcpStream),
}

impl Stream {
    /// An independently owned handle to the same socket (shared file
    /// description, like `File::try_clone`).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Shuts the socket down in both directions: the peer sees EOF, and
    /// every clone of this stream starts failing its reads/writes.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(stream: &mut Stream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u64).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.  A length prefix beyond [`MAX_FRAME_BYTES`] is an error (the
/// stream cannot be resynchronized after refusing to read a body, so the
/// caller must drop the connection).
pub(crate) fn read_frame(stream: &mut Stream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 8];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        // A reset mid-frame-boundary is the same "peer hung up" signal as
        // a clean EOF — UDS peers that close abruptly surface it this way.
        Err(e) if e.kind() == ErrorKind::ConnectionReset => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Little-endian field reader over one frame body.
pub(crate) struct FrameReader<'a> {
    rest: &'a [u8],
}

impl<'a> FrameReader<'a> {
    pub(crate) fn new(body: &'a [u8]) -> Self {
        FrameReader { rest: body }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let (&byte, rest) = self.rest.split_first()?;
        self.rest = rest;
        Some(byte)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        if self.rest.len() < 4 {
            return None;
        }
        let (head, rest) = self.rest.split_at(4);
        self.rest = rest;
        Some(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        if self.rest.len() < 8 {
            return None;
        }
        let (head, rest) = self.rest.split_at(8);
        self.rest = rest;
        Some(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    /// A `len: u64`-prefixed UTF-8 string.
    pub(crate) fn string(&mut self) -> Option<String> {
        let len = self.u64()? as usize;
        if self.rest.len() < len {
            return None;
        }
        let (head, rest) = self.rest.split_at(len);
        self.rest = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    /// Everything not yet consumed (the payload tail of submit/result
    /// frames).
    pub(crate) fn tail(self) -> &'a [u8] {
        self.rest
    }
}

/// Builds an error-frame body.
pub(crate) fn error_body(request_id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(10 + message.len());
    body.push(KIND_ERROR);
    body.extend_from_slice(&request_id.to_le_bytes());
    body.push(code.to_byte());
    body.extend_from_slice(message.as_bytes());
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::QueueFull,
            ErrorCode::ShutDown,
            ErrorCode::InvalidJob,
            ErrorCode::JobFailed,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadFrame,
        ] {
            assert_eq!(ErrorCode::from_byte(code.to_byte()), Some(code));
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::from_byte(7), None);
    }

    #[test]
    fn priorities_round_trip() {
        for priority in [
            Priority::Normal,
            Priority::High,
            Priority::Deadline(Duration::from_micros(1500)),
        ] {
            let (lane, micros) = encode_priority(priority);
            assert_eq!(decode_priority(lane, micros), Some(priority));
        }
        assert_eq!(decode_priority(3, 0), None);
    }

    #[test]
    fn frame_reader_rejects_truncated_fields() {
        let mut r = FrameReader::new(&[1, 2, 3]);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.u32(), None);
        let mut r = FrameReader::new(&[5, 0, 0, 0, 0, 0, 0, 0, b'h']);
        assert_eq!(r.string(), None, "length prefix larger than the body");
    }
}
