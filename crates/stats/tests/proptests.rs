//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use cgp_stats::chi_square::chi_square_uniform;
use cgp_stats::summary::quantile;
use cgp_stats::{
    chi_square_test, factorial, ks_two_sample, permutation_rank, permutation_unrank,
    regularized_gamma_p, regularized_gamma_q, Histogram, Summary,
};

proptest! {
    /// Rank/unrank are mutual inverses for every n ≤ 7 and every rank.
    #[test]
    fn lehmer_roundtrip(n in 1usize..=7, rank_fraction in 0.0f64..1.0) {
        let rank = ((factorial(n) - 1) as f64 * rank_fraction).floor() as u64;
        let perm = permutation_unrank(n, rank);
        prop_assert_eq!(permutation_rank(&perm), rank);
    }

    /// Ranks of distinct permutations are distinct (injectivity probe via
    /// adjacent transposition).
    #[test]
    fn adjacent_transposition_changes_the_rank(n in 2usize..=7, pos in 0usize..6, rank_fraction in 0.0f64..1.0) {
        let pos = pos % (n - 1);
        let rank = ((factorial(n) - 1) as f64 * rank_fraction).floor() as u64;
        let mut perm = permutation_unrank(n, rank);
        perm.swap(pos, pos + 1);
        prop_assert_ne!(permutation_rank(&perm), rank);
    }

    /// The regularised incomplete gamma functions are complementary and lie
    /// in [0, 1] across a broad parameter range.
    #[test]
    fn gamma_pq_complementary(a in 0.05f64..200.0, x in 0.0f64..400.0) {
        let p = regularized_gamma_p(a, x);
        let q = regularized_gamma_q(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-8);
    }

    /// The chi-square statistic is zero iff observed equals expected, and the
    /// p-value is then 1.
    #[test]
    fn chi_square_of_exact_match(counts in prop::collection::vec(1u64..500, 2..12)) {
        let expected: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let out = chi_square_test(&counts, &expected, 0);
        prop_assert!(out.statistic.abs() < 1e-9);
        prop_assert!((out.p_value - 1.0).abs() < 1e-9);
    }

    /// Splitting total mass evenly over k cells is always consistent with the
    /// uniform hypothesis; piling everything on one cell never is (k ≥ 2,
    /// enough mass).
    #[test]
    fn chi_square_uniform_extremes(k in 2usize..20, per_cell in 50u64..500) {
        let even = vec![per_cell; k];
        prop_assert!(chi_square_uniform(&even).is_consistent_at(0.01));
        let mut spiked = vec![0u64; k];
        spiked[0] = per_cell * k as u64;
        prop_assert!(!chi_square_uniform(&spiked).is_consistent_at(0.01));
    }

    /// A sample is never rejected against itself by the two-sample KS test.
    #[test]
    fn ks_self_comparison(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let out = ks_two_sample(&data, &data);
        prop_assert!(out.statistic.abs() < 1e-12);
        prop_assert!(out.p_value > 0.99);
    }

    /// Welford summaries merge associatively (within floating-point slack).
    #[test]
    fn summary_merge_matches_whole(data in prop::collection::vec(-1e3f64..1e3, 2..300), cut_fraction in 0.1f64..0.9) {
        let cut = ((data.len() as f64) * cut_fraction) as usize;
        let cut = cut.clamp(1, data.len() - 1);
        let whole = Summary::from_slice(&data);
        let mut left = Summary::from_slice(&data[..cut]);
        left.merge(&Summary::from_slice(&data[cut..]));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
    }

    /// Histogram mean equals the true mean of the recorded values, and the
    /// quantiles are monotone.
    #[test]
    fn histogram_consistency(values in prop::collection::vec(0u64..200, 1..300)) {
        let mut h = Histogram::new(256);
        for &v in &values {
            h.record(v);
        }
        let true_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - true_mean).abs() < 1e-9);
        prop_assert!(h.quantile(0.25) <= h.quantile(0.5));
        prop_assert!(h.quantile(0.5) <= h.quantile(0.99));
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// The nearest-rank quantile always returns an element of the sample.
    #[test]
    fn quantile_returns_a_member(data in prop::collection::vec(-1e5f64..1e5, 1..100), q in 0.0f64..=1.0) {
        let v = quantile(&data, q);
        prop_assert!(data.contains(&v));
    }
}

#[test]
fn ranks_enumerate_lexicographic_order_for_n5() {
    let mut previous: Option<Vec<u32>> = None;
    for rank in 0..factorial(5) {
        let perm = permutation_unrank(5, rank);
        if let Some(prev) = &previous {
            assert!(perm > *prev);
        }
        previous = Some(perm);
    }
}
