//! # cgp-stats — statistical testing substrate
//!
//! The headline property of the paper (Theorem 1, Propositions 1–3) is a
//! *distributional* one: provided a perfect source of randomness, every
//! permutation appears with equal probability and the communication matrix
//! follows the generalised multivariate hypergeometric law.  Verifying such
//! claims experimentally needs classical statistical machinery, which this
//! crate provides from scratch (no external stats dependency):
//!
//! * [`gamma`] — log-gamma and the regularised incomplete gamma function,
//!   the numeric backbone for chi-square p-values;
//! * [`chi_square`] — Pearson goodness-of-fit test (used by experiments E5
//!   and E7 to test uniformity over all `n!` permutations and entry-wise
//!   hypergeometric marginals);
//! * [`ks`] — one- and two-sample Kolmogorov–Smirnov tests;
//! * [`lehmer`] — ranking/unranking of permutations (the bijection between
//!   permutations of `n` items and `0..n!` used to bucket observed
//!   permutations);
//! * [`histogram`] — fixed-width integer histograms;
//! * [`summary`] — streaming mean/variance and quantile summaries used by
//!   the benchmark harness.

pub mod chi_square;
pub mod gamma;
pub mod histogram;
pub mod ks;
pub mod lehmer;
pub mod summary;

pub use chi_square::{chi_square_statistic, chi_square_test, ChiSquareOutcome};
pub use gamma::{ln_gamma, regularized_gamma_p, regularized_gamma_q};
pub use histogram::Histogram;
pub use ks::{ks_one_sample, ks_two_sample, KsOutcome};
pub use lehmer::{factorial, permutation_rank, permutation_unrank};
pub use summary::Summary;
