//! Pearson chi-square goodness-of-fit test.
//!
//! Used by the uniformity experiments: bucket every observed permutation by
//! its Lehmer rank (or every observed matrix entry by its value), compare the
//! observed counts against the expected counts under the null distribution,
//! and convert the statistic into a p-value with the regularised incomplete
//! gamma function.

use crate::gamma::regularized_gamma_q;

/// The result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareOutcome {
    /// The Pearson statistic `Σ (O_i − E_i)² / E_i`.
    pub statistic: f64,
    /// Degrees of freedom used for the p-value.
    pub degrees_of_freedom: usize,
    /// Survival probability `P(X²_df ≥ statistic)` under the null.
    pub p_value: f64,
}

impl ChiSquareOutcome {
    /// Whether the null hypothesis survives at significance level `alpha`
    /// (i.e. the data is *consistent* with the hypothesised distribution).
    pub fn is_consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Computes the Pearson statistic for observed counts against expected
/// counts.  Cells with expected count zero must have observed count zero and
/// contribute nothing.
///
/// # Panics
/// Panics if the slices have different lengths, or if a cell has zero
/// expectation but a non-zero observation (the hypothesised distribution
/// assigns probability zero to an observed outcome — the test is then
/// meaningless and the null is trivially rejected).
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected must have the same number of cells"
    );
    let mut stat = 0.0;
    for (i, (&o, &e)) in observed.iter().zip(expected).enumerate() {
        if e <= 0.0 {
            assert_eq!(
                o, 0,
                "cell {i} observed {o} events but the null assigns it probability zero"
            );
            continue;
        }
        let diff = o as f64 - e;
        stat += diff * diff / e;
    }
    stat
}

/// Runs the full test: statistic, degrees of freedom (`cells_with_mass − 1 −
/// extra_constraints`) and p-value.
///
/// `extra_constraints` counts parameters estimated from the data (0 for the
/// fully specified hypotheses used in this workspace).
pub fn chi_square_test(
    observed: &[u64],
    expected: &[f64],
    extra_constraints: usize,
) -> ChiSquareOutcome {
    let statistic = chi_square_statistic(observed, expected);
    let cells_with_mass = expected.iter().filter(|&&e| e > 0.0).count();
    let degrees_of_freedom = cells_with_mass
        .saturating_sub(1)
        .saturating_sub(extra_constraints)
        .max(1);
    let p_value = regularized_gamma_q(degrees_of_freedom as f64 / 2.0, statistic / 2.0);
    ChiSquareOutcome {
        statistic,
        degrees_of_freedom,
        p_value,
    }
}

/// Convenience for the common "uniform over k cells" null hypothesis.
pub fn chi_square_uniform(observed: &[u64]) -> ChiSquareOutcome {
    let total: u64 = observed.iter().sum();
    let k = observed.len();
    let expected = vec![total as f64 / k as f64; k];
    chi_square_test(observed, &expected, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_matching_counts_give_zero_statistic() {
        let observed = [25u64, 25, 25, 25];
        let expected = [25.0, 25.0, 25.0, 25.0];
        let out = chi_square_test(&observed, &expected, 0);
        assert_eq!(out.statistic, 0.0);
        assert_eq!(out.degrees_of_freedom, 3);
        assert!((out.p_value - 1.0).abs() < 1e-12);
        assert!(out.is_consistent_at(0.05));
    }

    #[test]
    fn textbook_example() {
        // Classic die example: 60 rolls, observed [5,8,9,8,10,20].
        let observed = [5u64, 8, 9, 8, 10, 20];
        let out = chi_square_uniform(&observed);
        // Statistic = sum (o-10)^2/10 = (25+4+1+4+0+100)/10 = 13.4.
        assert!((out.statistic - 13.4).abs() < 1e-12);
        assert_eq!(out.degrees_of_freedom, 5);
        // p ≈ 0.0199 — reject at 5%.
        assert!((out.p_value - 0.0199).abs() < 5e-3);
        assert!(!out.is_consistent_at(0.05));
    }

    #[test]
    fn zero_expectation_cells_are_skipped() {
        let observed = [10u64, 0, 10];
        let expected = [10.0, 0.0, 10.0];
        let out = chi_square_test(&observed, &expected, 0);
        assert_eq!(out.statistic, 0.0);
        assert_eq!(out.degrees_of_freedom, 1);
    }

    #[test]
    #[should_panic(expected = "probability zero")]
    fn observation_in_impossible_cell_panics() {
        let observed = [10u64, 1];
        let expected = [11.0, 0.0];
        chi_square_statistic(&observed, &expected);
    }

    #[test]
    #[should_panic(expected = "same number of cells")]
    fn mismatched_lengths_panic() {
        chi_square_statistic(&[1, 2], &[1.0]);
    }

    #[test]
    fn uniform_sampler_passes_uniform_test() {
        // A deterministic LCG-ish fill that is actually uniform enough for
        // this coarse test (each residue appears equally often by design).
        let k = 16usize;
        let n = 1600u64;
        let observed = vec![n / k as u64; k];
        let out = chi_square_uniform(&observed);
        assert!(out.is_consistent_at(0.001));
    }

    #[test]
    fn grossly_skewed_counts_fail() {
        let observed = [1000u64, 10, 10, 10];
        let out = chi_square_uniform(&observed);
        assert!(out.p_value < 1e-10);
    }

    #[test]
    fn extra_constraints_reduce_dof() {
        let observed = [10u64, 12, 9, 11, 8];
        let expected = [10.0, 10.0, 10.0, 10.0, 10.0];
        let a = chi_square_test(&observed, &expected, 0);
        let b = chi_square_test(&observed, &expected, 2);
        assert_eq!(a.degrees_of_freedom, 4);
        assert_eq!(b.degrees_of_freedom, 2);
        assert!(b.p_value < a.p_value);
    }
}
