//! Log-gamma and the regularised incomplete gamma function.
//!
//! `ln Γ(x)` uses the Lanczos approximation (g = 7, 9 coefficients), accurate
//! to about 14 significant digits over the positive reals.  The regularised
//! incomplete gamma functions `P(a, x)` and `Q(a, x) = 1 − P(a, x)` use the
//! standard series / continued-fraction split at `x = a + 1` (Numerical
//! Recipes style), which is all a chi-square p-value needs.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
// The literature's digits verbatim; the trailing ones round away in f64.
#[allow(clippy::excessive_precision)]
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// ```
/// use cgp_stats::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`.  Requires `a > 0`, `x ≥ 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, effective for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Continued fraction for `Q(a, x)`, effective for `x ≥ a + 1` (modified
/// Lentz algorithm).
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_integers_is_factorial() {
        let mut fact = 1.0f64;
        for n in 1..=15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "Γ({n}) mismatch"
            );
        }
    }

    #[test]
    fn gamma_half_integer() {
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2.
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn p_and_q_are_complementary() {
        for &a in &[0.5f64, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.0f64, 0.1, 1.0, 5.0, 30.0, 100.0] {
                let p = regularized_gamma_p(a, x);
                let q = regularized_gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            assert!((regularized_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_reference_values() {
        // Known chi-square survival values: Q(df/2, x/2).
        // df=1, x=3.841: p ≈ 0.05.
        let p = regularized_gamma_q(0.5, 3.841 / 2.0);
        assert!((p - 0.05).abs() < 2e-4, "got {p}");
        // df=10, x=18.307: p ≈ 0.05.
        let p = regularized_gamma_q(5.0, 18.307 / 2.0);
        assert!((p - 0.05).abs() < 2e-4, "got {p}");
        // df=2, x=2: p = exp(-1) ≈ 0.3679.
        let p = regularized_gamma_q(1.0, 1.0);
        assert!((p - (-1.0f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn monotone_in_x() {
        let a = 3.0;
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let p = regularized_gamma_p(a, x);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!(prev > 0.999);
    }
}
